//! The flip-flop connectivity graph (s-graph).

use std::collections::{BTreeSet, HashMap, VecDeque};
use tpi_netlist::{GateId, GateKind, Netlist};

/// The s-graph of a sequential circuit: one node per flip-flop, one edge
/// `i -> j` when a combinational path runs from `F_i`'s output to `F_j`'s
/// D input. Partial-scan cycle breaking (refs. \[4, 6, 7\] of the paper)
/// operates on this graph.
///
/// # Example
///
/// ```
/// use tpi_netlist::{Netlist, GateKind};
/// use tpi_scan::SGraph;
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut n = Netlist::new("loop2");
/// let f1 = n.add_gate(GateKind::Dff, "f1");
/// let f2 = n.add_gate(GateKind::Dff, "f2");
/// let i1 = n.add_gate(GateKind::Inv, "i1");
/// let i2 = n.add_gate(GateKind::Inv, "i2");
/// n.connect(f1, i1)?;
/// n.connect(i1, f2)?;
/// n.connect(f2, i2)?;
/// n.connect(i2, f1)?;
/// let g = SGraph::build(&n);
/// assert!(g.has_edge(f1, f2) && g.has_edge(f2, f1));
/// assert!(g.has_cycle(&[]));
/// assert!(!g.has_cycle(&[f1]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SGraph {
    ffs: Vec<GateId>,
    index: HashMap<GateId, usize>,
    succs: Vec<BTreeSet<usize>>,
    preds: Vec<BTreeSet<usize>>,
}

impl SGraph {
    /// Builds the s-graph of `n` by forward reachability through the
    /// combinational network from each flip-flop output.
    pub fn build(n: &Netlist) -> Self {
        let ffs = n.dffs();
        let index: HashMap<GateId, usize> = ffs.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let mut succs = vec![BTreeSet::new(); ffs.len()];
        let mut preds = vec![BTreeSet::new(); ffs.len()];
        let mut seen = vec![u32::MAX; n.gate_count()];
        for (i, &ff) in ffs.iter().enumerate() {
            let mut queue = VecDeque::new();
            queue.push_back(ff);
            seen[ff.index()] = i as u32;
            while let Some(g) = queue.pop_front() {
                for &(sink, _) in n.fanout(g) {
                    match n.kind(sink) {
                        GateKind::Dff => {
                            let j = index[&sink];
                            succs[i].insert(j);
                            preds[j].insert(i);
                        }
                        k if k.is_combinational() && seen[sink.index()] != i as u32 => {
                            seen[sink.index()] = i as u32;
                            queue.push_back(sink);
                        }
                        _ => {}
                    }
                }
            }
        }
        SGraph { ffs, index, succs, preds }
    }

    /// The flip-flops (nodes), in netlist order.
    #[inline]
    pub fn ffs(&self) -> &[GateId] {
        &self.ffs
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.ffs.len()
    }

    /// Number of directed edges (self-loops included).
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// The dense node index of a flip-flop.
    pub fn node(&self, ff: GateId) -> Option<usize> {
        self.index.get(&ff).copied()
    }

    /// Successor node indices of node `i`.
    #[inline]
    pub fn succ(&self, i: usize) -> &BTreeSet<usize> {
        &self.succs[i]
    }

    /// Predecessor node indices of node `i`.
    #[inline]
    pub fn pred(&self, i: usize) -> &BTreeSet<usize> {
        &self.preds[i]
    }

    /// Whether the edge `from -> to` exists.
    pub fn has_edge(&self, from: GateId, to: GateId) -> bool {
        match (self.node(from), self.node(to)) {
            (Some(i), Some(j)) => self.succs[i].contains(&j),
            _ => false,
        }
    }

    /// Returns the subgraph with `removed` flip-flops deleted (used when
    /// already-scanned flip-flops no longer participate in cycles).
    pub fn without(&self, removed: &[GateId]) -> SGraph {
        let gone: BTreeSet<usize> = removed.iter().filter_map(|f| self.node(*f)).collect();
        let mut g = self.clone();
        for &v in &gone {
            let outs: Vec<usize> = g.succs[v].iter().copied().collect();
            for s in outs {
                g.preds[s].remove(&v);
            }
            let ins: Vec<usize> = g.preds[v].iter().copied().collect();
            for p in ins {
                g.succs[p].remove(&v);
            }
            g.succs[v].clear();
            g.preds[v].clear();
        }
        g
    }

    /// Flip-flops that lie on at least one directed cycle: members of a
    /// strongly connected component of size >= 2, plus self-loop nodes.
    /// Computed by an iterative Kosaraju pass.
    pub fn cyclic_nodes(&self) -> Vec<GateId> {
        let nn = self.ffs.len();
        // Pass 1: finish order on the forward graph.
        let mut visited = vec![false; nn];
        let mut order: Vec<usize> = Vec::with_capacity(nn);
        for start in 0..nn {
            if visited[start] {
                continue;
            }
            // (node, child iterator position)
            let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            visited[start] = true;
            stack.push((start, self.succs[start].iter().copied().collect(), 0));
            while let Some((v, children, pos)) = stack.last_mut() {
                if *pos < children.len() {
                    let c = children[*pos];
                    *pos += 1;
                    if !visited[c] {
                        visited[c] = true;
                        stack.push((c, self.succs[c].iter().copied().collect(), 0));
                    }
                } else {
                    order.push(*v);
                    stack.pop();
                }
            }
        }
        // Pass 2: components on the reverse graph, in reverse finish order.
        let mut comp = vec![usize::MAX; nn];
        let mut comp_size = Vec::new();
        for &start in order.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = comp_size.len();
            comp_size.push(0usize);
            let mut stack = vec![start];
            comp[start] = c;
            while let Some(v) = stack.pop() {
                comp_size[c] += 1;
                for &p in &self.preds[v] {
                    if comp[p] == usize::MAX {
                        comp[p] = c;
                        stack.push(p);
                    }
                }
            }
        }
        (0..nn)
            .filter(|&v| comp_size[comp[v]] >= 2 || self.succs[v].contains(&v))
            .map(|v| self.ffs[v])
            .collect()
    }

    /// Whether a directed cycle survives after deleting `removed` nodes.
    /// (An empty `removed` asks whether the circuit has feedback at all;
    /// a feedback vertex set makes this return false.)
    pub fn has_cycle(&self, removed: &[GateId]) -> bool {
        let gone: BTreeSet<usize> = removed.iter().filter_map(|f| self.node(*f)).collect();
        let nn = self.ffs.len();
        let mut indeg = vec![0usize; nn];
        let mut alive = 0usize;
        for (v, slot) in indeg.iter_mut().enumerate() {
            if gone.contains(&v) {
                continue;
            }
            alive += 1;
            *slot = self.preds[v].iter().filter(|p| !gone.contains(p)).count();
        }
        let mut queue: VecDeque<usize> =
            (0..nn).filter(|v| !gone.contains(v) && indeg[*v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop_front() {
            seen += 1;
            for &s in &self.succs[v] {
                if gone.contains(&s) {
                    continue;
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        seen != alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, Netlist};

    /// f1 -> f2 -> f3 -> f1 ring plus a self-loop on f4.
    fn ring_and_self_loop() -> (Netlist, Vec<GateId>) {
        let mut n = Netlist::new("t");
        let f: Vec<GateId> = (0..4).map(|i| n.add_gate(GateKind::Dff, format!("f{i}"))).collect();
        let via = |n: &mut Netlist, a: GateId, b: GateId| {
            let inv = n.add_gate(GateKind::Inv, "");
            n.connect(a, inv).unwrap();
            n.connect(inv, b).unwrap();
        };
        via(&mut n, f[0], f[1]);
        via(&mut n, f[1], f[2]);
        via(&mut n, f[2], f[0]);
        via(&mut n, f[3], f[3]);
        (n, f)
    }

    #[test]
    fn edges_follow_combinational_reachability() {
        let (n, f) = ring_and_self_loop();
        let g = SGraph::build(&n);
        assert!(g.has_edge(f[0], f[1]));
        assert!(g.has_edge(f[1], f[2]));
        assert!(g.has_edge(f[2], f[0]));
        assert!(g.has_edge(f[3], f[3]));
        assert!(!g.has_edge(f[0], f[2]));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn multi_gate_paths_create_single_edge() {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let f2 = n.add_gate(GateKind::Dff, "f2");
        let a = n.add_input("a");
        let g1 = n.add_gate(GateKind::And, "g1");
        let g2 = n.add_gate(GateKind::Or, "g2");
        n.connect(f1, g1).unwrap();
        n.connect(a, g1).unwrap();
        n.connect(g1, g2).unwrap();
        n.connect(a, g2).unwrap();
        n.connect(g2, f2).unwrap();
        let g = SGraph::build(&n);
        assert!(g.has_edge(f1, f2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn cycle_detection_and_fvs_check() {
        let (n, f) = ring_and_self_loop();
        let g = SGraph::build(&n);
        assert!(g.has_cycle(&[]));
        assert!(g.has_cycle(&[f[0]]), "self-loop on f3 remains");
        assert!(!g.has_cycle(&[f[0], f[3]]));
        assert!(!g.has_cycle(&[f[1], f[3]]));
    }

    #[test]
    fn cyclic_nodes_are_exactly_the_cycle_members() {
        // ring f0->f1->f2->f0, self-loop f3, plus a dangling feeder f4
        // and a vertex f5 between nothing (acyclic).
        let (n, f) = ring_self_loop_and_tail();
        let g = SGraph::build(&n);
        let mut cyc = g.cyclic_nodes();
        cyc.sort();
        let mut expect = vec![f[0], f[1], f[2], f[3]];
        expect.sort();
        assert_eq!(cyc, expect);
    }

    /// ring f0..f2, self-loop f3, f4 -> f0 feeder, f2 -> f5 sink.
    fn ring_self_loop_and_tail() -> (Netlist, Vec<GateId>) {
        let mut n = Netlist::new("t");
        let mut ffs = Vec::new();
        let mut merges = Vec::new();
        for i in 0..6 {
            let or = n.add_gate(GateKind::Or, format!("m{i}"));
            let f = n.add_gate(GateKind::Dff, format!("f{i}"));
            n.connect(or, f).unwrap();
            ffs.push(f);
            merges.push(or);
        }
        let edge = |n: &mut Netlist, a: usize, b: usize| {
            n.connect(ffs[a], merges[b]).unwrap();
        };
        edge(&mut n, 0, 1);
        edge(&mut n, 1, 2);
        edge(&mut n, 2, 0);
        edge(&mut n, 3, 3);
        edge(&mut n, 4, 0);
        edge(&mut n, 2, 5);
        (n, ffs)
    }

    #[test]
    fn pipeline_has_no_cycle() {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(f1, f2).unwrap();
        let d = n.add_input("d");
        n.connect(d, f1).unwrap();
        let g = SGraph::build(&n);
        assert!(!g.has_cycle(&[]));
        assert!(g.has_edge(f1, f2));
    }
}
