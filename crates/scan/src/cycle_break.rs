//! Cycle-breaking flip-flop selection for partial scan.
//!
//! Implements the Lee–Reddy algorithm (paper ref. \[6\]) as modified by
//! Jou–Cheng for timing-driven selection (ref. \[7\]), exactly as §IV.B of
//! the paper describes: a graph-reduction phase with five operations
//! (source, sink, self-loop, unit-in, unit-out) interleaved with a
//! heuristic phase that selects the vertex with the maximal sum of fanins
//! and fanouts.
//!
//! The timing-driven flavor is expressed through the `selectable`
//! predicate of [`CycleBreakOptions`]: a flip-flop whose slack cannot
//! absorb a scan mux is never selected, and the unit-in/unit-out
//! contractions are only applied to unselectable vertices so that
//! selectable ones stay available for the heuristic (the ref. \[7\]
//! modification).

use crate::sgraph::SGraph;
use std::collections::BTreeSet;
use tpi_netlist::GateId;

/// Options controlling [`break_cycles`].
pub struct CycleBreakOptions<'a> {
    /// Whether a flip-flop may be selected for scan. The classic
    /// area-driven CB passes `|_| true`; TD-CB passes a slack check.
    pub selectable: Box<dyn Fn(GateId) -> bool + 'a>,
    /// Apply unit-in/unit-out contractions to *selectable* vertices too
    /// (classic Lee–Reddy behavior). TD-CB sets this to `false`.
    pub contract_selectable: bool,
}

impl<'a> CycleBreakOptions<'a> {
    /// Classic area-driven configuration (the paper's "CB" column).
    pub fn classic() -> Self {
        CycleBreakOptions { selectable: Box::new(|_| true), contract_selectable: true }
    }

    /// Timing-driven configuration (the paper's "TD-CB" column): only
    /// flip-flops passing `selectable` may be chosen.
    pub fn timing_driven(selectable: impl Fn(GateId) -> bool + 'a) -> Self {
        CycleBreakOptions { selectable: Box::new(selectable), contract_selectable: false }
    }
}

impl std::fmt::Debug for CycleBreakOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleBreakOptions")
            .field("contract_selectable", &self.contract_selectable)
            .finish_non_exhaustive()
    }
}

/// Result of [`break_cycles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleBreakResult {
    /// Flip-flops selected for scan, in selection order.
    pub selected: Vec<GateId>,
    /// Flip-flops whose cycles could not be broken under the
    /// selectability constraint (empty when a full solution was found).
    /// These are exactly the vertices the paper hands to the
    /// minimal-degradation fallback of §IV.B.
    pub unresolved: Vec<GateId>,
}

impl CycleBreakResult {
    /// True when every cycle was broken.
    pub fn complete(&self) -> bool {
        self.unresolved.is_empty()
    }
}

/// Mutable working copy of the s-graph during reduction.
struct Work {
    succ: Vec<BTreeSet<usize>>,
    pred: Vec<BTreeSet<usize>>,
    alive: Vec<bool>,
}

impl Work {
    fn remove_vertex(&mut self, v: usize) {
        self.alive[v] = false;
        let outs: Vec<usize> = self.succ[v].iter().copied().collect();
        for s in outs {
            self.pred[s].remove(&v);
        }
        let ins: Vec<usize> = self.pred[v].iter().copied().collect();
        for p in ins {
            self.succ[p].remove(&v);
        }
        self.succ[v].clear();
        self.pred[v].clear();
    }

    /// Contracts `v` into the graph: `v`'s predecessors gain edges to all
    /// of `v`'s successors, then `v` disappears. Preserves cycles that run
    /// through `v` (used by the unit-in / unit-out operations, where one
    /// side is a single vertex).
    fn contract(&mut self, v: usize) {
        let preds: Vec<usize> = self.pred[v].iter().copied().collect();
        let succs: Vec<usize> = self.succ[v].iter().copied().collect();
        for &p in &preds {
            for &s in &succs {
                if p == v || s == v {
                    continue;
                }
                self.succ[p].insert(s);
                self.pred[s].insert(p);
            }
        }
        self.remove_vertex(v);
    }

    fn degree(&self, v: usize) -> usize {
        self.succ[v].len() + self.pred[v].len()
    }
}

/// Runs the cycle-breaking selection on `g` under `options`.
///
/// Returns the selected feedback set and any unresolved vertices (see
/// [`CycleBreakResult`]). When `options.selectable` always returns true
/// the result is a complete feedback vertex set: removing `selected` from
/// `g` leaves an acyclic graph (property-tested).
pub fn break_cycles(g: &SGraph, options: &CycleBreakOptions<'_>) -> CycleBreakResult {
    let nn = g.node_count();
    let mut w = Work {
        succ: (0..nn).map(|v| g.succ(v).clone()).collect(),
        pred: (0..nn).map(|v| g.pred(v).clone()).collect(),
        alive: vec![true; nn],
    };
    let mut selected = Vec::new();
    let mut unresolved = Vec::new();
    let selectable = |v: usize| (options.selectable)(g.ffs()[v]);

    loop {
        // --- Reduction phase: run to a fixed point.
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..nn {
                if !w.alive[v] {
                    continue;
                }
                let has_self = w.succ[v].contains(&v);
                // Self-loop operation: the vertex must be scanned.
                if has_self {
                    if selectable(v) {
                        selected.push(g.ffs()[v]);
                    } else {
                        unresolved.push(g.ffs()[v]);
                    }
                    w.remove_vertex(v);
                    changed = true;
                    continue;
                }
                // Source / sink operations: acyclic fringe.
                if w.pred[v].is_empty() || w.succ[v].is_empty() {
                    w.remove_vertex(v);
                    changed = true;
                    continue;
                }
                // Unit-in / unit-out operations (contractions). The
                // timing-driven variant only contracts unselectable
                // vertices, keeping selectable ones for the heuristic.
                if (w.pred[v].len() == 1 || w.succ[v].len() == 1)
                    && (options.contract_selectable || !selectable(v))
                {
                    w.contract(v);
                    changed = true;
                }
            }
        }

        // --- Heuristic phase: pick the best selectable vertex.
        let Some(best) =
            (0..nn).filter(|&v| w.alive[v] && selectable(v)).max_by_key(|&v| w.degree(v))
        else {
            // No selectable vertex left; whatever remains is stuck in
            // cycles that need the minimal-degradation fallback.
            for v in 0..nn {
                if w.alive[v] && !w.succ[v].is_empty() {
                    unresolved.push(g.ffs()[v]);
                }
            }
            break;
        };
        selected.push(g.ffs()[best]);
        w.remove_vertex(best);
        if !w.alive.iter().any(|&a| a) {
            break;
        }
    }

    CycleBreakResult { selected, unresolved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, Netlist};

    /// Builds `k` flip-flops, each fed by a variadic OR "merge" gate so
    /// tests can add any number of FF->FF edges.
    fn ff_bank(k: usize) -> (Netlist, Vec<GateId>, Vec<GateId>) {
        let mut n = Netlist::new("bank");
        let mut ffs = Vec::new();
        let mut merges = Vec::new();
        for i in 0..k {
            let or = n.add_gate(GateKind::Or, format!("m{i}"));
            let f = n.add_gate(GateKind::Dff, format!("f{i}"));
            n.connect(or, f).unwrap();
            ffs.push(f);
            merges.push(or);
        }
        (n, ffs, merges)
    }

    fn edge(n: &mut Netlist, ffs: &[GateId], merges: &[GateId], a: usize, b: usize) {
        n.connect(ffs[a], merges[b]).unwrap();
    }

    fn ring(k: usize) -> (Netlist, Vec<GateId>) {
        let (mut n, ffs, merges) = ff_bank(k);
        for i in 0..k {
            edge(&mut n, &ffs, &merges, i, (i + 1) % k);
        }
        (n, ffs)
    }

    #[test]
    fn single_ring_needs_one_ff() {
        let (n, _f) = ring(5);
        let g = SGraph::build(&n);
        let r = break_cycles(&g, &CycleBreakOptions::classic());
        assert!(r.complete());
        assert_eq!(r.selected.len(), 1);
        assert!(!g.has_cycle(&r.selected));
    }

    #[test]
    fn self_loop_forces_selection() {
        let (mut n, ffs, merges) = ff_bank(1);
        edge(&mut n, &ffs, &merges, 0, 0);
        let g = SGraph::build(&n);
        let r = break_cycles(&g, &CycleBreakOptions::classic());
        assert_eq!(r.selected, vec![ffs[0]]);
    }

    #[test]
    fn acyclic_graph_selects_nothing() {
        let (mut n, ffs, merges) = ff_bank(2);
        edge(&mut n, &ffs, &merges, 0, 1);
        let d = n.add_input("d");
        n.connect(d, merges[0]).unwrap();
        let g = SGraph::build(&n);
        let r = break_cycles(&g, &CycleBreakOptions::classic());
        assert!(r.complete());
        assert!(r.selected.is_empty());
    }

    #[test]
    fn two_rings_sharing_a_vertex_need_one_selection() {
        // f0->f1->f0 and f0->f2->f0 : selecting f0 breaks both.
        let (mut n, f, merges) = ff_bank(3);
        edge(&mut n, &f, &merges, 0, 1);
        edge(&mut n, &f, &merges, 1, 0);
        edge(&mut n, &f, &merges, 0, 2);
        edge(&mut n, &f, &merges, 2, 0);
        let g = SGraph::build(&n);
        let r = break_cycles(&g, &CycleBreakOptions::classic());
        assert!(r.complete());
        assert_eq!(r.selected, vec![f[0]], "max-degree heuristic picks the hub");
        assert!(!g.has_cycle(&r.selected));
    }

    #[test]
    fn timing_constraint_shifts_selection() {
        // Ring of 3 where f0 is not selectable: TD-CB must pick another.
        let (n, f) = ring(3);
        let g = SGraph::build(&n);
        let banned = f[0];
        let opts = CycleBreakOptions::timing_driven(move |ff| ff != banned);
        let r = break_cycles(&g, &opts);
        assert!(r.complete());
        assert_eq!(r.selected.len(), 1);
        assert_ne!(r.selected[0], f[0]);
        assert!(!g.has_cycle(&r.selected));
    }

    #[test]
    fn unselectable_self_loop_is_unresolved() {
        let (mut n, ffs, merges) = ff_bank(1);
        edge(&mut n, &ffs, &merges, 0, 0);
        let g = SGraph::build(&n);
        let opts = CycleBreakOptions::timing_driven(|_| false);
        let r = break_cycles(&g, &opts);
        assert!(!r.complete());
        assert_eq!(r.unresolved, vec![ffs[0]]);
        assert!(r.selected.is_empty());
    }

    #[test]
    fn nothing_selectable_reports_all_cyclic_vertices() {
        let (n, _f) = ring(4);
        let g = SGraph::build(&n);
        let opts = CycleBreakOptions::timing_driven(|_| false);
        let r = break_cycles(&g, &opts);
        assert!(!r.complete());
        assert!(!r.unresolved.is_empty());
    }

    #[test]
    fn classic_always_produces_a_feedback_vertex_set() {
        // Deterministic pseudo-random digraphs; FVS property must hold.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..20 {
            let k = 4 + (trial % 8);
            let (mut n, f, merges) = ff_bank(k);
            for i in 0..k {
                for j in 0..k {
                    if next() % 4 == 0 {
                        edge(&mut n, &f, &merges, i, j);
                    }
                }
            }
            let g = SGraph::build(&n);
            let r = break_cycles(&g, &CycleBreakOptions::classic());
            assert!(r.complete(), "classic CB must always complete");
            assert!(!g.has_cycle(&r.selected), "selected set must be an FVS (trial {trial})");
        }
    }
}
