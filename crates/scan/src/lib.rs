//! Scan infrastructure for the DAC'96 test-point-insertion reproduction.
//!
//! This crate supplies the substrates the paper's §IV flows stand on:
//!
//! * [`SGraph`] — the flip-flop connectivity graph (s-graph) excluding
//!   combinational internals;
//! * [`cycle_break`] — the Lee–Reddy cycle-breaking partial-scan selector
//!   (paper ref. \[6\]) and its timing-driven variant (ref. \[7\], "TD-CB"):
//!   graph reduction (source / sink / self-loop / unit-in / unit-out
//!   operations) plus max-(fanin+fanout) heuristic selection;
//! * [`ScanChain`] — the representation of a stitched scan chain whose
//!   links are either conventional scan muxes or sensitized combinational
//!   paths established by test points;
//! * [`flush`] — the §V *flush test*: shifting a pattern of alternating
//!   0's and 1's through the chain in test mode and checking the scan-out
//!   stream (accounting for inversion parity along paths through logic).

pub mod chain;
pub mod cycle_break;
pub mod flush;
pub mod sgraph;

pub use chain::{ChainLink, ScanChain, StitchError};
pub use cycle_break::{break_cycles, CycleBreakOptions, CycleBreakResult};
pub use flush::{flush_test, flush_test_inductive, FlushError, FlushMismatch, FlushReport};
pub use sgraph::SGraph;
