//! The scan-chain flush test (§V of the paper).
//!
//! Because the paper's scan paths run *through functional logic*, the
//! chain itself must be verified before it can be trusted to deliver scan
//! patterns: "this can be accomplished by scanning in a sequence of
//! alternating 0's and 1's and scanning them out. If there is some
//! discrepancy between the scan-in and scan-out data, we know that the
//! circuit is faulty."

use crate::chain::ScanChain;
use std::fmt;
use tpi_netlist::{GateId, Netlist};
use tpi_sim::{Simulator, Trit};

/// Outcome of a flush test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushReport {
    /// Chain length (number of flip-flops).
    pub chain_len: usize,
    /// The flip-flop the scan-out stream is observed at (the chain's
    /// last stage).
    pub scan_out: GateId,
    /// Bits driven into `scan_in`, cycle by cycle.
    pub driven: Vec<bool>,
    /// Bits observed at `scan_out` once the pipe is full.
    pub observed: Vec<Trit>,
    /// Bits expected at `scan_out` (driven bits, delayed by the chain
    /// length and complemented by the chain's inversion parity).
    pub expected: Vec<bool>,
}

/// The first scan-out position where a flush test miscompared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushMismatch {
    /// 0-based position in the scan-out stream.
    pub position: usize,
    /// The flip-flop the miscompare was observed at.
    pub gate: GateId,
    /// The bit the chain should have delivered.
    pub expected: Trit,
    /// The value actually observed (possibly `X`).
    pub observed: Trit,
}

impl FlushReport {
    /// True when every observed bit matched its expectation.
    pub fn passed(&self) -> bool {
        self.observed.len() == self.expected.len()
            && self.observed.iter().zip(&self.expected).all(|(o, &e)| *o == Trit::from(e))
    }

    /// The first miscomparing scan-out bit, if any — the structured
    /// evidence consumers report instead of re-diffing the raw streams.
    pub fn first_mismatch(&self) -> Option<FlushMismatch> {
        self.observed
            .iter()
            .zip(&self.expected)
            .enumerate()
            .find(|(_, (o, &e))| **o != Trit::from(e))
            .map(|(position, (&observed, &expected))| FlushMismatch {
                position,
                gate: self.scan_out,
                expected: Trit::from(expected),
                observed,
            })
            .or_else(|| {
                // A truncated observation stream (length mismatch) is a
                // miscompare at the first missing position.
                (self.observed.len() < self.expected.len()).then(|| FlushMismatch {
                    position: self.observed.len(),
                    gate: self.scan_out,
                    expected: Trit::from(self.expected[self.observed.len()]),
                    observed: Trit::X,
                })
            })
    }
}

impl fmt::Display for FlushReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flush of {}-FF chain: {}",
            self.chain_len,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Errors from [`flush_test`] (conditions that prevent the test from even
/// running; a miscomparing chain is reported in [`FlushReport`], not here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushError {
    /// The netlist has no test input, so test mode cannot be entered.
    NoTestInput,
}

impl fmt::Display for FlushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushError::NoTestInput => write!(f, "netlist has no test input"),
        }
    }
}

impl std::error::Error for FlushError {}

/// Shifts an alternating 0/1 pattern through `chain` in test mode and
/// compares the scan-out stream.
///
/// `pi_constants` are the primary-input values the test mode requires
/// (the paper's §III.B input assignment); they are held for the whole
/// test. The flush drives `2 * chain_len + extra` cycles so every stage
/// is exercised with both polarities.
///
/// # Errors
/// Returns [`FlushError::NoTestInput`] when the netlist was never put
/// through a scan transformation.
///
/// # Example
///
/// See `tests/flush.rs` in the repository root and the
/// `scan_chain_flush` example.
pub fn flush_test(
    n: &Netlist,
    chain: &ScanChain,
    pi_constants: &[(GateId, Trit)],
) -> Result<FlushReport, FlushError> {
    let t = n.test_input().ok_or(FlushError::NoTestInput)?;
    let mut sim = Simulator::new(n);
    sim.set_inputs(
        std::iter::once((t, Trit::Zero)) // enter test mode
            .chain(pi_constants.iter().copied()),
    );
    let len = chain.len();
    let total = 2 * len + 4;
    let driven: Vec<bool> = (0..total).map(|i| i % 2 == 0).collect();
    let parity = chain.parity();
    let last_ff = chain.links().last().expect("stitch rejects empty chains").ff();

    let mut observed = Vec::new();
    let mut expected = Vec::new();
    for (cycle, &bit) in driven.iter().enumerate() {
        sim.set_input(chain.scan_in(), Trit::from(bit));
        sim.step();
        // After `len` cycles the first driven bit occupies the last FF.
        if cycle + 1 >= len {
            let src = driven[cycle + 1 - len];
            observed.push(sim.value(last_ff));
            expected.push(src ^ parity);
        }
    }
    Ok(FlushReport { chain_len: len, scan_out: last_ff, driven, observed, expected })
}

/// The flush test in inductive form: O(gates) instead of
/// O(chain_len × gates).
///
/// [`flush_test`] streams `2·len + 4` cycles through the chain, fully
/// re-evaluating the netlist each cycle — quadratic overall, and the
/// dominant flow phase beyond ~100k gates (19 of 19.5 s at 25k gates on
/// the industrial workloads). This variant checks the same property
/// stage-locally: the chain is pre-loaded with the *steady-state*
/// content the streamed test converges to (the alternating stream,
/// complemented by each stage's accumulated inversion parity), one
/// cycle is simulated, and every stage must have received its
/// predecessor's bit (xor the link's inversion). Two phases flip the
/// pattern so every stage is exercised with both polarities, exactly
/// like the streamed test's even/odd cycles.
///
/// Because primary inputs are held constant for the whole flush, chain
/// behaviour is time-invariant and the stage-local check composed over
/// `len` cycles is precisely the streamed check; it is marginally
/// *stricter* on broken chains (a mid-chain corruption that a second
/// inversion error cancels downstream is caught here and masked there).
/// The flows use this form; the streamed form remains the
/// paper-faithful reference.
///
/// # Errors
/// Returns [`FlushError::NoTestInput`] when the netlist was never put
/// through a scan transformation.
pub fn flush_test_inductive(
    n: &Netlist,
    chain: &ScanChain,
    pi_constants: &[(GateId, Trit)],
) -> Result<FlushReport, FlushError> {
    let t = n.test_input().ok_or(FlushError::NoTestInput)?;
    let links = chain.links();
    let len = links.len();
    let last_ff = links.last().expect("stitch rejects empty chains").ff();
    let mut driven = Vec::with_capacity(2);
    let mut observed = Vec::with_capacity(2 * len);
    let mut expected = Vec::with_capacity(2 * len);
    for phase in 0..2usize {
        let mut sim = Simulator::new(n);
        // The next injected bit continues the alternation: it must be
        // the opposite raw polarity of the bit currently at stage 0.
        let scan_bit = phase == 1;
        sim.set_inputs(
            std::iter::once((t, Trit::Zero)) // enter test mode
                .chain(pi_constants.iter().copied())
                .chain(std::iter::once((chain.scan_in(), Trit::from(scan_bit)))),
        );
        // Steady-state chain content: stage `i` holds the alternating
        // raw bit injected `i` cycles ago, complemented by the
        // inversion parity accumulated through stage `i`.
        let mut parity = false;
        let mut cur = Vec::with_capacity(len);
        let mut loads = Vec::with_capacity(len);
        for (i, l) in links.iter().enumerate() {
            parity ^= l.inverting();
            let raw = (i % 2 == 0) ^ (phase == 1);
            let v = raw ^ parity;
            loads.push((l.ff(), Trit::from(v)));
            cur.push(v);
        }
        sim.set_states(loads);
        driven.push(scan_bit);
        sim.step();
        for (i, l) in links.iter().enumerate() {
            let exp = if i == 0 { scan_bit ^ l.inverting() } else { cur[i - 1] ^ l.inverting() };
            observed.push(sim.value(l.ff()));
            expected.push(exp);
        }
    }
    Ok(FlushReport { chain_len: len, scan_out: last_ff, driven, observed, expected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainLink;
    use tpi_netlist::GateKind;

    /// Conventional 3-FF scan chain: functional D inputs, muxed.
    fn conventional_chain() -> (Netlist, ScanChain) {
        let mut n = Netlist::new("t");
        let mut links = Vec::new();
        for i in 0..3 {
            let d = n.add_input(format!("d{i}"));
            let ff = n.add_gate(GateKind::Dff, format!("f{i}"));
            n.connect(d, ff).unwrap();
            let mux = n.insert_scan_mux_at_pin(ff, 0, d).unwrap();
            links.push(ChainLink::Mux { mux, ff, inverting: false });
        }
        let chain = ScanChain::stitch(&mut n, links).unwrap();
        n.validate().unwrap();
        (n, chain)
    }

    #[test]
    fn conventional_chain_flushes_clean() {
        let (n, chain) = conventional_chain();
        let report = flush_test(&n, &chain, &[]).unwrap();
        assert!(report.passed(), "{report}: {:?} vs {:?}", report.observed, report.expected);
        assert_eq!(report.chain_len, 3);
    }

    #[test]
    fn chain_through_sensitized_logic_flushes_clean() {
        // f0 --NAND(side=1)--> f1 : a real "scan path through logic".
        let mut n = Netlist::new("t");
        let d0 = n.add_input("d0");
        let f0 = n.add_gate(GateKind::Dff, "f0");
        n.connect(d0, f0).unwrap();
        let side = n.add_input("side");
        let g = n.add_gate(GateKind::Nand, "g");
        n.connect(f0, g).unwrap();
        n.connect(side, g).unwrap();
        let f1 = n.add_gate(GateKind::Dff, "f1");
        n.connect(g, f1).unwrap();
        let mux0 = n.insert_scan_mux_at_pin(f0, 0, d0).unwrap();
        let links = vec![
            ChainLink::Mux { mux: mux0, ff: f0, inverting: false },
            // NAND inverts the shifted bit.
            ChainLink::Path { from: f0, ff: f1, inverting: true },
        ];
        let chain = ScanChain::stitch(&mut n, links).unwrap();
        n.validate().unwrap();
        // side input must be held at the NAND's sensitizing value 1.
        let report = flush_test(&n, &chain, &[(side, Trit::One)]).unwrap();
        assert!(report.passed(), "{:?} vs {:?}", report.observed, report.expected);
        assert!(chain.parity());
    }

    #[test]
    fn desensitized_side_input_fails_the_flush() {
        // Same circuit, but the side input holds the controlling value 0:
        // the NAND output is stuck at 1 and the flush must fail.
        let mut n = Netlist::new("t");
        let d0 = n.add_input("d0");
        let f0 = n.add_gate(GateKind::Dff, "f0");
        n.connect(d0, f0).unwrap();
        let side = n.add_input("side");
        let g = n.add_gate(GateKind::Nand, "g");
        n.connect(f0, g).unwrap();
        n.connect(side, g).unwrap();
        let f1 = n.add_gate(GateKind::Dff, "f1");
        n.connect(g, f1).unwrap();
        let mux0 = n.insert_scan_mux_at_pin(f0, 0, d0).unwrap();
        let links = vec![
            ChainLink::Mux { mux: mux0, ff: f0, inverting: false },
            ChainLink::Path { from: f0, ff: f1, inverting: true },
        ];
        let chain = ScanChain::stitch(&mut n, links).unwrap();
        let report = flush_test(&n, &chain, &[(side, Trit::Zero)]).unwrap();
        assert!(!report.passed());
        let m = report.first_mismatch().expect("a failing flush has a first mismatch");
        assert_eq!(m.gate, f1, "mismatch observed at the chain's last stage");
        assert_eq!(m.observed, Trit::One, "the controlled NAND is stuck at 1");
        assert_ne!(m.observed, m.expected);
    }

    #[test]
    fn passing_flush_has_no_mismatch() {
        let (n, chain) = conventional_chain();
        let report = flush_test(&n, &chain, &[]).unwrap();
        assert!(report.passed());
        assert_eq!(report.first_mismatch(), None);
    }

    #[test]
    fn missing_test_input_is_an_error() {
        let (n, chain) = conventional_chain();
        // Build a fresh netlist without any scan structure but reuse the
        // chain object: simulate the error path by stripping T.
        let mut bare = Netlist::new("bare");
        bare.add_input("x");
        assert_eq!(flush_test(&bare, &chain, &[]), Err(FlushError::NoTestInput));
        let _ = n;
    }
}
