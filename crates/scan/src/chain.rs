//! Scan-chain representation and stitching.

use std::fmt;
use tpi_netlist::{GateId, GateKind, Netlist, NetlistError};

/// How scan data enters one flip-flop of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainLink {
    /// Conventional entry through a scan multiplexer (possibly placed
    /// upstream of the flip-flop, per §IV Fig. 4). `inverting` is the
    /// polarity of the logic between the mux output and the FF's D pin.
    Mux {
        /// The scan multiplexer whose `d0` pin receives the upstream
        /// chain element.
        mux: GateId,
        /// The flip-flop this link loads.
        ff: GateId,
        /// Whether the path from the mux to the FF inverts the bit.
        inverting: bool,
    },
    /// Test-point entry: scan data rides a fully sensitized combinational
    /// path from the *previous chain element's* flip-flop into `ff` —
    /// the paper's core transformation (§III). Costs no mux at all.
    Path {
        /// The upstream flip-flop the sensitized path starts from.
        from: GateId,
        /// The flip-flop this link loads.
        ff: GateId,
        /// Whether the sensitized path inverts the bit.
        inverting: bool,
    },
}

impl ChainLink {
    /// The flip-flop loaded by this link.
    pub fn ff(&self) -> GateId {
        match *self {
            ChainLink::Mux { ff, .. } | ChainLink::Path { ff, .. } => ff,
        }
    }

    /// The polarity of this link.
    pub fn inverting(&self) -> bool {
        match *self {
            ChainLink::Mux { inverting, .. } | ChainLink::Path { inverting, .. } => inverting,
        }
    }
}

/// Errors from [`ScanChain::stitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// A `Path` link's `from` flip-flop is not the previous chain element.
    BrokenPath {
        /// Position in the link list.
        position: usize,
        /// The expected upstream flip-flop.
        expected: GateId,
        /// The `from` recorded in the link.
        actual: GateId,
    },
    /// The first link is a `Path` (nothing upstream to ride from).
    PathAtHead,
    /// The chain is empty.
    Empty,
    /// Netlist editing failed.
    Netlist(NetlistError),
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::BrokenPath { position, expected, actual } => write!(
                f,
                "path link at position {position} rides from {actual} but the previous element is {expected}"
            ),
            StitchError::PathAtHead => write!(f, "chain cannot start with a test-point path link"),
            StitchError::Empty => write!(f, "chain has no links"),
            StitchError::Netlist(e) => write!(f, "netlist edit failed: {e}"),
        }
    }
}

impl std::error::Error for StitchError {}

impl From<NetlistError> for StitchError {
    fn from(e: NetlistError) -> Self {
        StitchError::Netlist(e)
    }
}

/// A stitched scan chain: an ordered sequence of [`ChainLink`]s fed by a
/// dedicated `scan_in` primary input and observed at a `scan_out` port.
///
/// The area advantage of the paper's method is visible directly on this
/// type: `Path` links are free (their cost was paid in AND/OR test
/// points), while `Mux` links each carry a multiplexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanChain {
    scan_in: GateId,
    scan_out: GateId,
    links: Vec<ChainLink>,
}

impl ScanChain {
    /// Stitches `links` into a physical chain inside `n`:
    ///
    /// * creates the `scan_in` input and wires it to the first link's mux;
    /// * wires each `Mux` link's scan pin to the previous element's FF;
    /// * verifies each `Path` link follows its upstream FF;
    /// * creates a `scan_out` port observing the last FF.
    ///
    /// # Errors
    /// See [`StitchError`].
    pub fn stitch(n: &mut Netlist, links: Vec<ChainLink>) -> Result<Self, StitchError> {
        if links.is_empty() {
            return Err(StitchError::Empty);
        }
        let scan_in = n.add_input("scan_in");
        let mut prev = scan_in;
        for (i, link) in links.iter().enumerate() {
            match *link {
                ChainLink::Mux { mux, ff, .. } => {
                    debug_assert_eq!(n.kind(mux), GateKind::Mux);
                    n.set_scan_source(mux, prev)?;
                    prev = ff;
                }
                ChainLink::Path { from, ff, .. } => {
                    if i == 0 {
                        return Err(StitchError::PathAtHead);
                    }
                    if from != prev {
                        return Err(StitchError::BrokenPath {
                            position: i,
                            expected: prev,
                            actual: from,
                        });
                    }
                    prev = ff;
                }
            }
        }
        let scan_out = n.add_output("scan_out", prev)?;
        Ok(ScanChain { scan_in, scan_out, links })
    }

    /// The chain's dedicated scan-in primary input.
    #[inline]
    pub fn scan_in(&self) -> GateId {
        self.scan_in
    }

    /// The chain's scan-out port.
    #[inline]
    pub fn scan_out(&self) -> GateId {
        self.scan_out
    }

    /// The links in shift order.
    #[inline]
    pub fn links(&self) -> &[ChainLink] {
        &self.links
    }

    /// Number of flip-flops on the chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the chain has no links (never produced by `stitch`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// How many links are mux entries vs free test-point paths.
    pub fn mux_and_path_counts(&self) -> (usize, usize) {
        let muxes = self.links.iter().filter(|l| matches!(l, ChainLink::Mux { .. })).count();
        (muxes, self.links.len() - muxes)
    }

    /// Total inversion parity from scan-in to scan-out: true when a bit
    /// shifted through the whole chain emerges complemented.
    pub fn parity(&self) -> bool {
        self.links.iter().fold(false, |p, l| p ^ l.inverting())
    }

    /// Inversion parity accumulated from scan-in up to and including link
    /// `k`.
    pub fn parity_through(&self, k: usize) -> bool {
        self.links[..=k].iter().fold(false, |p, l| p ^ l.inverting())
    }

    /// Stitches `links` into up to `count` balanced chains (production
    /// designs bound shift time by splitting the register set across
    /// several chains, each with its own `scan_in_<i>`/`scan_out_<i>`).
    ///
    /// Fragments connected by [`ChainLink::Path`] links are kept intact —
    /// a test-point path can only ride from its own upstream flip-flop —
    /// and whole fragments are distributed over the chains longest-first
    /// (greedy balancing).
    ///
    /// # Errors
    /// Same conditions as [`ScanChain::stitch`]; `count` of 0 is treated
    /// as 1.
    pub fn stitch_multi(
        n: &mut Netlist,
        links: Vec<ChainLink>,
        count: usize,
    ) -> Result<Vec<ScanChain>, StitchError> {
        if links.is_empty() {
            return Err(StitchError::Empty);
        }
        // Split into fragments: every Mux link starts one; Path links
        // extend the current fragment.
        let mut fragments: Vec<Vec<ChainLink>> = Vec::new();
        for (i, link) in links.into_iter().enumerate() {
            match link {
                ChainLink::Mux { .. } => fragments.push(vec![link]),
                ChainLink::Path { .. } => {
                    let Some(frag) = fragments.last_mut() else {
                        return Err(StitchError::PathAtHead);
                    };
                    let _ = i;
                    frag.push(link);
                }
            }
        }
        // Longest-fragment-first greedy bin packing.
        fragments.sort_by_key(|f| std::cmp::Reverse(f.len()));
        let count = count.max(1).min(fragments.len());
        let mut bins: Vec<Vec<ChainLink>> = vec![Vec::new(); count];
        for frag in fragments {
            let target = bins.iter_mut().min_by_key(|b| b.len()).expect("count >= 1 bins exist");
            target.extend(frag);
        }
        bins.into_iter().map(|links| ScanChain::stitch(n, links)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three FFs with muxes on each D pin (conventional full scan).
    fn three_muxed() -> (Netlist, Vec<GateId>, Vec<GateId>) {
        let mut n = Netlist::new("t");
        let mut ffs = Vec::new();
        let mut muxes = Vec::new();
        for i in 0..3 {
            let d = n.add_input(format!("d{i}"));
            let ff = n.add_gate(GateKind::Dff, format!("f{i}"));
            n.connect(d, ff).unwrap();
            ffs.push(ff);
        }
        for &ff in &ffs {
            let placeholder = n.fanin(ff)[0];
            let mux = n.insert_scan_mux_at_pin(ff, 0, placeholder).unwrap();
            muxes.push(mux);
        }
        (n, ffs, muxes)
    }

    #[test]
    fn stitch_wires_muxes_in_order() {
        let (mut n, ffs, muxes) = three_muxed();
        let links: Vec<ChainLink> = ffs
            .iter()
            .zip(&muxes)
            .map(|(&ff, &mux)| ChainLink::Mux { mux, ff, inverting: false })
            .collect();
        let chain = ScanChain::stitch(&mut n, links).unwrap();
        assert_eq!(n.fanin(muxes[0])[1], chain.scan_in());
        assert_eq!(n.fanin(muxes[1])[1], ffs[0]);
        assert_eq!(n.fanin(muxes[2])[1], ffs[1]);
        assert_eq!(n.fanin(chain.scan_out())[0], ffs[2]);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.mux_and_path_counts(), (3, 0));
        n.validate().unwrap();
    }

    #[test]
    fn path_link_must_follow_its_source() {
        let (mut n, ffs, muxes) = three_muxed();
        let links = vec![
            ChainLink::Mux { mux: muxes[0], ff: ffs[0], inverting: false },
            ChainLink::Path { from: ffs[1], ff: ffs[2], inverting: false }, // wrong: prev is ffs[0]
        ];
        let err = ScanChain::stitch(&mut n, links).unwrap_err();
        assert!(matches!(err, StitchError::BrokenPath { position: 1, .. }));
    }

    #[test]
    fn path_at_head_is_rejected() {
        let (mut n, ffs, _muxes) = three_muxed();
        let links = vec![ChainLink::Path { from: ffs[0], ff: ffs[1], inverting: false }];
        assert_eq!(ScanChain::stitch(&mut n, links).unwrap_err(), StitchError::PathAtHead);
    }

    #[test]
    fn empty_chain_is_rejected() {
        let (mut n, _ffs, _muxes) = three_muxed();
        assert_eq!(ScanChain::stitch(&mut n, vec![]).unwrap_err(), StitchError::Empty);
    }

    #[test]
    fn stitch_multi_balances_mux_only_links() {
        let mut n = Netlist::new("t");
        let mut links = Vec::new();
        for i in 0..7 {
            let d = n.add_input(format!("d{i}"));
            let ff = n.add_gate(GateKind::Dff, format!("f{i}"));
            n.connect(d, ff).unwrap();
            let mux = n.insert_scan_mux_at_pin(ff, 0, d).unwrap();
            links.push(ChainLink::Mux { mux, ff, inverting: false });
        }
        let chains = ScanChain::stitch_multi(&mut n, links, 3).unwrap();
        assert_eq!(chains.len(), 3);
        let total: usize = chains.iter().map(ScanChain::len).sum();
        assert_eq!(total, 7);
        let max = chains.iter().map(ScanChain::len).max().unwrap();
        let min = chains.iter().map(ScanChain::len).min().unwrap();
        assert!(max - min <= 1, "balanced within one: {max} vs {min}");
        n.validate().unwrap();
    }

    #[test]
    fn stitch_multi_keeps_path_fragments_together() {
        let (mut n, ffs, muxes) = three_muxed();
        let links = vec![
            ChainLink::Mux { mux: muxes[0], ff: ffs[0], inverting: false },
            ChainLink::Path { from: ffs[0], ff: ffs[1], inverting: false },
            ChainLink::Mux { mux: muxes[2], ff: ffs[2], inverting: false },
        ];
        let chains = ScanChain::stitch_multi(&mut n, links, 2).unwrap();
        assert_eq!(chains.len(), 2);
        // The 2-link fragment must live in one chain unbroken.
        let with_pair = chains.iter().find(|c| c.len() == 2).expect("fragment intact");
        assert!(matches!(with_pair.links()[1], ChainLink::Path { .. }));
        n.validate().unwrap();
    }

    #[test]
    fn stitch_multi_caps_count_at_fragments() {
        let (mut n, ffs, muxes) = three_muxed();
        let links = vec![ChainLink::Mux { mux: muxes[0], ff: ffs[0], inverting: false }];
        let chains = ScanChain::stitch_multi(&mut n, links, 5).unwrap();
        assert_eq!(chains.len(), 1, "cannot have more chains than fragments");
    }

    #[test]
    fn parity_accumulates_xor() {
        let (mut n, ffs, muxes) = three_muxed();
        let links = vec![
            ChainLink::Mux { mux: muxes[0], ff: ffs[0], inverting: true },
            ChainLink::Path { from: ffs[0], ff: ffs[1], inverting: true },
            ChainLink::Mux { mux: muxes[2], ff: ffs[2], inverting: false },
        ];
        let chain = ScanChain::stitch(&mut n, links).unwrap();
        assert!(!chain.parity());
        assert!(chain.parity_through(0));
        assert!(!chain.parity_through(1));
        assert_eq!(chain.mux_and_path_counts(), (2, 1));
    }
}
