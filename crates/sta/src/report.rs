//! Timing reports: worst paths and slack distribution.
//!
//! TPTIME's effectiveness depends on *where* slack lives: the paper's
//! Fig. 3 works precisely because the critical path and the scan route
//! share only a suffix. These reports make that structure visible and
//! are used by the examples and the workload-calibration tests.

use crate::analysis::Sta;
use tpi_netlist::{GateId, GateKind, Netlist};

/// One traced register-to-register (or port-to-port) path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// Nets from a timing source to the endpoint driver, in order.
    pub nets: Vec<GateId>,
    /// Arrival time at the endpoint driver.
    pub arrival: f64,
    /// Slack at the endpoint.
    pub slack: f64,
}

/// Traces the `k` worst paths (by endpoint arrival), one per endpoint.
///
/// Endpoints are flip-flop D pins and primary-output ports; each
/// contributes at most one path (its own worst), so the report shows `k`
/// *distinct* trouble spots rather than `k` permutations of one path.
pub fn worst_paths(n: &Netlist, sta: &Sta, k: usize) -> Vec<PathReport> {
    // Collect endpoint drivers with their arrivals.
    let mut endpoints: Vec<(GateId, f64)> = Vec::new();
    for g in n.gate_ids() {
        match n.kind(g) {
            GateKind::Dff | GateKind::Output => {
                let d = n.fanin(g)[0];
                if !sta.is_disabled(d) {
                    endpoints.push((d, sta.arrival(d)));
                }
            }
            _ => {}
        }
    }
    endpoints.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite arrivals"));
    endpoints.dedup_by_key(|e| e.0);
    endpoints.truncate(k);
    endpoints
        .into_iter()
        .map(|(driver, arrival)| PathReport {
            nets: trace_back(n, sta, driver),
            arrival,
            slack: sta.slack(driver),
        })
        .collect()
}

/// Walks backwards from `driver` along max-arrival fanins to a source.
fn trace_back(n: &Netlist, sta: &Sta, driver: GateId) -> Vec<GateId> {
    let mut path = vec![driver];
    let mut cur = driver;
    while !n.kind(cur).is_source() {
        let Some(&prev) =
            n.fanin(cur).iter().filter(|f| !sta.is_disabled(**f)).max_by(|&&x, &&y| {
                sta.arrival(x).partial_cmp(&sta.arrival(y)).expect("finite arrivals")
            })
        else {
            break;
        };
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    path
}

/// A slack histogram over all enabled nets: `buckets` equal-width bins
/// from 0 to the clock period, plus an underflow bin for negative slack
/// and an overflow bin for slack beyond the period (dangling nets with
/// infinite slack are excluded).
///
/// Returns `(negative, bins, beyond)`.
pub fn slack_histogram(n: &Netlist, sta: &Sta, buckets: usize) -> (usize, Vec<usize>, usize) {
    let period = sta.clock_period().max(f64::MIN_POSITIVE);
    let mut bins = vec![0usize; buckets.max(1)];
    let mut negative = 0usize;
    let mut beyond = 0usize;
    for g in n.gate_ids() {
        if sta.is_disabled(g) || !n.kind(g).is_combinational() && !n.kind(g).is_source() {
            continue;
        }
        let s = sta.slack(g);
        if s.is_infinite() {
            continue;
        }
        if s < -1e-9 {
            negative += 1;
        } else if s >= period {
            beyond += 1;
        } else {
            let last = bins.len() - 1;
            let idx = ((s.max(0.0) / period) * bins.len() as f64) as usize;
            bins[idx.min(last)] += 1;
        }
    }
    (negative, bins, beyond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ClockConstraint;
    use tpi_netlist::{NetlistBuilder, TechLibrary};

    fn two_path_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("c");
        // long path into f1
        b.gate(GateKind::Inv, "i1", &["a"]);
        b.gate(GateKind::Inv, "i2", &["i1"]);
        b.gate(GateKind::Inv, "i3", &["i2"]);
        b.gate(GateKind::Inv, "i4", &["i3"]);
        b.dff("f1", "i4");
        // short path into f2
        b.gate(GateKind::Inv, "j1", &["c"]);
        b.dff("f2", "j1");
        b.output("o1", "f1");
        b.output("o2", "f2");
        b.finish().unwrap()
    }

    #[test]
    fn worst_paths_are_ordered_and_traced() {
        let n = two_path_circuit();
        let sta = Sta::analyze(&n, &TechLibrary::paper(), ClockConstraint::LongestPath);
        let report = worst_paths(&n, &sta, 10);
        assert!(report.len() >= 2);
        assert!(report[0].arrival >= report[1].arrival);
        // The worst path ends at i4 and starts at the PI a.
        let worst = &report[0];
        assert_eq!(*worst.nets.last().unwrap(), n.find("i4").unwrap());
        assert_eq!(worst.nets[0], n.find("a").unwrap());
        assert!(worst.slack.abs() < 1e-9, "the longest path has zero slack");
    }

    #[test]
    fn k_truncates() {
        let n = two_path_circuit();
        let sta = Sta::analyze(&n, &TechLibrary::paper(), ClockConstraint::LongestPath);
        assert_eq!(worst_paths(&n, &sta, 1).len(), 1);
    }

    #[test]
    fn histogram_partitions_nets() {
        let n = two_path_circuit();
        let sta = Sta::analyze(&n, &TechLibrary::paper(), ClockConstraint::LongestPath);
        let (neg, bins, beyond) = slack_histogram(&n, &sta, 4);
        assert_eq!(neg, 0, "longest-path constraint leaves no negative slack");
        assert!(bins.iter().sum::<usize>() > 0);
        let _ = beyond;
        // The critical chain contributes zero-slack entries to bin 0.
        assert!(bins[0] >= 4);
    }

    #[test]
    fn histogram_reports_negatives_under_tight_clock() {
        let n = two_path_circuit();
        let sta = Sta::analyze(&n, &TechLibrary::paper(), ClockConstraint::Period(1.0));
        let (neg, _bins, _beyond) = slack_histogram(&n, &sta, 4);
        assert!(neg > 0, "a 1.0 clock must violate somewhere");
    }
}
