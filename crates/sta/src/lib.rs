//! Static timing analysis for the scanpath DFT toolkit.
//!
//! Implements the timing model of §II of the DAC'96 paper (inherited from
//! SIS): the delay across a gate `g` is linear in its capacitive load,
//! `delay(g) = block(g) + drive(g) * load`, with the per-cell parameters
//! taken from a [`tpi_netlist::TechLibrary`]. *Slack* is the difference
//! between required and arrival times; every connection must keep a
//! positive slack for the circuit to meet its cycle time.
//!
//! Two paper-specific features:
//!
//! * **False paths from the test input.** §IV.C: in mission mode `T` is
//!   constant 1, so every path originating at `T` (and at `T'`) is a false
//!   path and must be excluded from the analysis. [`Sta`] automatically
//!   disables the test input, its inverter, and any gate all of whose
//!   fanins are disabled.
//! * **Incremental update.** §IV.B inserts gates one at a time and runs
//!   "an incremental static timing analysis for the next run";
//!   [`Sta::update_after_edit`] propagates arrival/required changes from
//!   the edit site only.

mod analysis;
pub mod report;

pub use analysis::{ClockConstraint, Sta};
pub use report::{slack_histogram, worst_paths, PathReport};
