//! Arrival/required/slack computation.

use std::collections::VecDeque;
use tpi_netlist::{GateId, GateKind, Netlist, TechLibrary};

/// How the required times at timing endpoints are set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockConstraint {
    /// A fixed cycle time.
    Period(f64),
    /// Use the longest-path delay of the analyzed circuit itself as the
    /// constraint (the paper's setup: "the longest delay of the optimized
    /// circuit is used as the circuit timing constraint").
    LongestPath,
}

const INF: f64 = f64::INFINITY;

/// A static timing analysis over one netlist snapshot.
///
/// Timing quantities are attached to *nets* (gate outputs). Endpoints are
/// primary-output ports and flip-flop D pins; sources are primary inputs
/// (arrival 0) and flip-flop outputs (arrival = clock-to-Q delay of the
/// DFF cell).
///
/// The slack of a net bounds the extra delay that may be spliced into it
/// without violating the clock constraint — the quantity the paper's
/// Equations 2–4 compare against `t_mux`, `t_and`, `t_or`.
///
/// # Example
///
/// ```
/// use tpi_netlist::{Netlist, GateKind, TechLibrary};
/// use tpi_sta::{Sta, ClockConstraint};
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a");
/// let g = n.add_gate(GateKind::Inv, "g");
/// n.connect(a, g)?;
/// n.add_output("o", g)?;
/// let lib = TechLibrary::paper();
/// let sta = Sta::analyze(&n, &lib, ClockConstraint::LongestPath);
/// assert!(sta.slack(a) >= 0.0);
/// assert!(sta.circuit_delay() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sta {
    lib: TechLibrary,
    constraint: ClockConstraint,
    clock: f64,
    arrival: Vec<f64>,
    required: Vec<f64>,
    load: Vec<f64>,
    disabled: Vec<bool>,
    max_endpoint_arrival: f64,
}

impl Sta {
    /// Runs a full analysis of `n` under library `lib`.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn analyze(n: &Netlist, lib: &TechLibrary, constraint: ClockConstraint) -> Self {
        let mut sta = Sta {
            lib: lib.clone(),
            constraint,
            clock: 0.0,
            arrival: Vec::new(),
            required: Vec::new(),
            load: Vec::new(),
            disabled: Vec::new(),
            max_endpoint_arrival: 0.0,
        };
        sta.recompute(n);
        sta
    }

    /// The clock constraint value currently in force.
    #[inline]
    pub fn clock_period(&self) -> f64 {
        self.clock
    }

    /// Pins the clock constraint to a fixed period for all subsequent
    /// recomputations (used after capturing the baseline longest path).
    pub fn freeze_clock(&mut self) {
        self.constraint = ClockConstraint::Period(self.clock);
    }

    /// Arrival time at the output net of `g`.
    #[inline]
    pub fn arrival(&self, g: GateId) -> f64 {
        self.arrival[g.index()]
    }

    /// Required time at the output net of `g`.
    #[inline]
    pub fn required(&self, g: GateId) -> f64 {
        self.required[g.index()]
    }

    /// Slack of the net driven by `g`: `required - arrival`.
    #[inline]
    pub fn slack(&self, g: GateId) -> f64 {
        self.required[g.index()] - self.arrival[g.index()]
    }

    /// Capacitive load currently driven by `g`.
    #[inline]
    pub fn load(&self, g: GateId) -> f64 {
        self.load[g.index()]
    }

    /// Whether `g` lies on a disabled (false) path rooted at the test
    /// input.
    #[inline]
    pub fn is_disabled(&self, g: GateId) -> bool {
        self.disabled[g.index()]
    }

    /// The longest enabled path delay: max arrival over all endpoints.
    pub fn circuit_delay(&self) -> f64 {
        self.max_endpoint_arrival
    }

    /// Slack margin check for splicing a new gate of `kind` into net `g`:
    /// true when the net can absorb the inserted gate's delay without
    /// violating the constraint. The inserted gate drives `g`'s current
    /// load, so its delay is `block(kind) + drive(kind) * load(g)` —
    /// e.g. exactly 2.2 for a MUX on a single-fanout net (§IV.C).
    pub fn can_insert(&self, g: GateId, kind: GateKind) -> bool {
        self.slack(g) > self.insertion_cost(g, kind)
    }

    /// The slack cost of splicing `kind` into net `g` (see
    /// [`Sta::can_insert`]).
    pub fn insertion_cost(&self, g: GateId, kind: GateKind) -> f64 {
        let load = if self.load[g.index()] > 0.0 { self.load[g.index()] } else { 1.0 };
        self.lib.cell(kind).delay(load)
    }

    /// Extracts one critical path (as a list of nets from a source to an
    /// endpoint driver) realizing the longest enabled delay.
    pub fn critical_path(&self, n: &Netlist) -> Vec<GateId> {
        // Find the endpoint driver with the max arrival.
        let mut best: Option<GateId> = None;
        for g in n.gate_ids() {
            if self.disabled[g.index()] {
                continue;
            }
            let is_endpoint_driver = n
                .fanout(g)
                .iter()
                .any(|&(s, _)| matches!(n.kind(s), GateKind::Output | GateKind::Dff));
            if !is_endpoint_driver {
                continue;
            }
            if best.is_none_or(|b| self.arrival[g.index()] > self.arrival[b.index()]) {
                best = Some(g);
            }
        }
        let Some(mut cur) = best else { return Vec::new() };
        let mut path = vec![cur];
        // Walk backwards along the max-arrival fanin.
        loop {
            let kind = n.kind(cur);
            if kind.is_source() {
                break;
            }
            let gate_delay = self.lib.cell(kind).delay(self.load[cur.index()]);
            let target = self.arrival[cur.index()] - gate_delay;
            let Some(&prev) =
                n.fanin(cur).iter().filter(|f| !self.disabled[f.index()]).min_by(|&&x, &&y| {
                    let dx = (self.arrival[x.index()] - target).abs();
                    let dy = (self.arrival[y.index()] - target).abs();
                    dx.partial_cmp(&dy).expect("finite arrivals")
                })
            else {
                break;
            };
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        path
    }

    // ------------------------------------------------------------------
    // Full recomputation
    // ------------------------------------------------------------------

    /// Recomputes everything from scratch (loads, disabledness, arrival,
    /// required). Also the way to pick up structural edits when the
    /// incremental path is not applicable.
    pub fn recompute(&mut self, n: &Netlist) {
        let count = n.gate_count();
        self.arrival = vec![0.0; count];
        self.required = vec![INF; count];
        self.load = vec![0.0; count];
        self.disabled = vec![false; count];
        let order = n.topo_order().expect("netlist must be acyclic");

        // Loads.
        for g in n.gate_ids() {
            self.load[g.index()] = self.compute_load(n, g);
        }
        // Disabled cone: test input, its inverter, and closure.
        if let Some(t) = n.test_input() {
            self.disabled[t.index()] = true;
        }
        for &g in &order {
            if self.disabled[g.index()] || n.kind(g).is_source() {
                continue;
            }
            let fi = n.fanin(g);
            if !fi.is_empty() && fi.iter().all(|f| self.disabled[f.index()]) {
                self.disabled[g.index()] = true;
            }
        }
        // Arrival, forward.
        for &g in &order {
            self.arrival[g.index()] = self.compute_arrival(n, g);
        }
        // Clock.
        self.max_endpoint_arrival = self.find_max_endpoint_arrival(n);
        self.clock = match self.constraint {
            ClockConstraint::Period(p) => p,
            ClockConstraint::LongestPath => self.max_endpoint_arrival,
        };
        // Required, backward.
        for &g in order.iter().rev() {
            self.required[g.index()] = self.compute_required(n, g);
        }
    }

    fn compute_load(&self, n: &Netlist, g: GateId) -> f64 {
        let mut load = 0.0;
        for &(sink, pin) in n.fanout(g) {
            // Modeling decision: the scan-data pin (d0, pin 1) of a MUX is
            // exercised only in test mode, so it presents no mission-mode
            // load. This keeps scan-chain stitching timing-neutral, as the
            // paper assumes when it ignores scan routing overhead.
            if n.kind(sink) == GateKind::Mux && pin == 1 {
                continue;
            }
            load += if n.kind(sink) == GateKind::Output {
                self.lib.output_load
            } else {
                self.lib.cell(n.kind(sink)).input_load
            };
        }
        load
    }

    /// Slack available on a flip-flop's D *connection*: the clock period
    /// minus the arrival at its D driver. This is the quantity ref. \[7\]'s
    /// TD-CB compares against `t_mux` when deciding whether a flip-flop
    /// may be conventionally scanned without timing degradation.
    pub fn endpoint_slack(&self, n: &Netlist, ff: GateId) -> f64 {
        debug_assert_eq!(n.kind(ff), GateKind::Dff);
        let d = n.fanin(ff)[0];
        self.clock - self.arrival[d.index()]
    }

    fn compute_arrival(&self, n: &Netlist, g: GateId) -> f64 {
        let kind = n.kind(g);
        if self.disabled[g.index()] {
            return 0.0;
        }
        match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Dff => self.lib.cell(GateKind::Dff).delay(self.load[g.index()]),
            GateKind::Output => self.arrival.get(n.fanin(g)[0].index()).copied().unwrap_or(0.0),
            _ => {
                let gate_delay = self.lib.cell(kind).delay(self.load[g.index()]);
                let max_in = n
                    .fanin(g)
                    .iter()
                    .filter(|f| !self.disabled[f.index()])
                    .map(|&f| self.arrival[f.index()])
                    .fold(0.0, f64::max);
                max_in + gate_delay
            }
        }
    }

    fn compute_required(&self, n: &Netlist, g: GateId) -> f64 {
        if self.disabled[g.index()] {
            return INF;
        }
        let mut req = INF;
        for &(sink, _) in n.fanout(g) {
            let r = match n.kind(sink) {
                GateKind::Output | GateKind::Dff => self.clock,
                k if k.is_combinational() => {
                    if self.disabled[sink.index()] {
                        continue;
                    }
                    let d = self.lib.cell(k).delay(self.load[sink.index()]);
                    self.required[sink.index()] - d
                }
                _ => continue,
            };
            req = req.min(r);
        }
        req
    }

    fn find_max_endpoint_arrival(&self, n: &Netlist) -> f64 {
        let mut max = 0.0;
        for g in n.gate_ids() {
            match n.kind(g) {
                GateKind::Output => max = f64::max(max, self.arrival[g.index()]),
                GateKind::Dff => {
                    let d = n.fanin(g)[0];
                    if !self.disabled[d.index()] {
                        max = f64::max(max, self.arrival[d.index()]);
                    }
                }
                _ => {}
            }
        }
        max
    }

    // ------------------------------------------------------------------
    // Incremental update
    // ------------------------------------------------------------------

    /// Incrementally repairs the analysis after a structural edit.
    ///
    /// `seeds` are the gates whose connectivity changed: newly inserted
    /// gates plus every pre-existing gate whose fanin or fanout list was
    /// touched. Arrival changes are flushed forward and required changes
    /// backward from those seeds only; the rest of the circuit is not
    /// revisited. The clock constraint is *not* re-derived (a frozen
    /// period keeps measuring degradation against the original target).
    ///
    /// Equivalent to [`Sta::recompute`] for any edit (verified by tests
    /// and the property suite), but touches only the affected cones.
    pub fn update_after_edit(&mut self, n: &Netlist, seeds: &[GateId]) {
        let count = n.gate_count();
        self.arrival.resize(count, 0.0);
        self.required.resize(count, INF);
        self.load.resize(count, 0.0);
        self.disabled.resize(count, false);
        if let Some(t) = n.test_input() {
            self.disabled[t.index()] = true;
        }

        // Phase 0: loads and disabledness around the seeds. A seed's load
        // may have changed (fanouts moved); its fanins' loads too.
        let mut arrival_work: VecDeque<GateId> = VecDeque::new();
        let mut queued = vec![false; count];
        let push = |q: &mut VecDeque<GateId>, queued: &mut Vec<bool>, g: GateId| {
            if !queued[g.index()] {
                queued[g.index()] = true;
                q.push_back(g);
            }
        };
        for &s in seeds {
            self.load[s.index()] = self.compute_load(n, s);
            push(&mut arrival_work, &mut queued, s);
            for &f in n.fanin(s) {
                self.load[f.index()] = self.compute_load(n, f);
                push(&mut arrival_work, &mut queued, f);
            }
            for &(sink, _) in n.fanout(s) {
                push(&mut arrival_work, &mut queued, sink);
            }
        }

        // Phase 1: forward arrival repair. FIFO worklist; a gate may be
        // visited more than once on reconvergence, which is bounded and
        // terminates because the graph is acyclic.
        let mut required_seeds: Vec<GateId> = Vec::new();
        while let Some(g) = arrival_work.pop_front() {
            queued[g.index()] = false;
            // Disabledness can spread to new gates fed only by T.
            if !self.disabled[g.index()] && !n.kind(g).is_source() {
                let fi = n.fanin(g);
                if !fi.is_empty() && fi.iter().all(|f| self.disabled[f.index()]) {
                    self.disabled[g.index()] = true;
                }
            }
            let a = self.compute_arrival(n, g);
            let changed = (a - self.arrival[g.index()]).abs() > 1e-12;
            self.arrival[g.index()] = a;
            required_seeds.push(g);
            if changed || n.kind(g).is_combinational() && self.required[g.index()] == INF {
                for &(sink, _) in n.fanout(g) {
                    if n.kind(sink) == GateKind::Dff {
                        continue;
                    }
                    push(&mut arrival_work, &mut queued, sink);
                }
            }
        }

        // The circuit delay may have moved.
        self.max_endpoint_arrival = self.find_max_endpoint_arrival(n);
        if matches!(self.constraint, ClockConstraint::LongestPath) {
            self.clock = self.max_endpoint_arrival;
            // A moved clock invalidates all required times.
            self.recompute_required_full(n);
            return;
        }

        // Phase 2: backward required repair.
        let mut req_work: VecDeque<GateId> = VecDeque::new();
        let mut rqueued = vec![false; count];
        for g in required_seeds {
            if !rqueued[g.index()] {
                rqueued[g.index()] = true;
                req_work.push_back(g);
            }
        }
        while let Some(g) = req_work.pop_front() {
            rqueued[g.index()] = false;
            let r = self.compute_required(n, g);
            if (r - self.required[g.index()]).abs() > 1e-12
                || self.required[g.index()].is_infinite() != r.is_infinite()
            {
                self.required[g.index()] = r;
                for &f in n.fanin(g) {
                    if n.kind(g) == GateKind::Dff {
                        continue;
                    }
                    if !rqueued[f.index()] {
                        rqueued[f.index()] = true;
                        req_work.push_back(f);
                    }
                }
            } else {
                self.required[g.index()] = r;
            }
        }
    }

    fn recompute_required_full(&mut self, n: &Netlist) {
        let order = n.topo_order().expect("netlist must be acyclic");
        for &g in order.iter().rev() {
            self.required[g.index()] = self.compute_required(n, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, Netlist, TechLibrary};

    fn lib() -> TechLibrary {
        TechLibrary::paper()
    }

    /// PI -> NAND -> NAND -> FF, with a short side branch.
    fn pipeline() -> (Netlist, GateId, GateId, GateId, GateId) {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::Nand, "g1");
        n.connect(a, g1).unwrap();
        n.connect(b, g1).unwrap();
        let g2 = n.add_gate(GateKind::Nand, "g2");
        n.connect(g1, g2).unwrap();
        n.connect(b, g2).unwrap();
        let ff = n.add_gate(GateKind::Dff, "ff");
        n.connect(g2, ff).unwrap();
        n.add_output("o", ff).unwrap();
        (n, a, b, g1, g2)
    }

    #[test]
    fn arrival_accumulates_linear_delays() {
        let (n, a, _b, g1, g2) = pipeline();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        // g1 drives 1 pin (g2): delay = 1.0 + 0.2 = 1.2
        assert!((sta.arrival(g1) - 1.2).abs() < 1e-9, "{}", sta.arrival(g1));
        // g2 drives FF D pin: delay = 1.2; arrival = 1.2 + 1.2 = 2.4
        assert!((sta.arrival(g2) - 2.4).abs() < 1e-9);
        assert!((sta.arrival(a) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn slack_zero_on_critical_path_under_longest_path_constraint() {
        let (n, _a, _b, g1, g2) = pipeline();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        assert!(sta.slack(g2).abs() < 1e-9);
        assert!(sta.slack(g1).abs() < 1e-9);
        assert!(sta.circuit_delay() > 0.0);
    }

    #[test]
    fn ff_output_arrival_is_clock_to_q() {
        let mut n = Netlist::new("t");
        let ff = n.add_gate(GateKind::Dff, "ff");
        let i = n.add_gate(GateKind::Inv, "i");
        n.connect(ff, i).unwrap();
        n.connect(i, ff).unwrap();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        // DFF drives 1 pin: clk->q = 2.0 + 0.2 = 2.2
        assert!((sta.arrival(ff) - 2.2).abs() < 1e-9);
    }

    #[test]
    fn test_input_paths_are_false_paths() {
        let (mut n, a, _b, _g1, g2) = pipeline();
        let before = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath).circuit_delay();
        // Insert a test point; the new AND adds its own delay, but the
        // T fanin must not contribute an arrival.
        n.insert_and_test_point(a).unwrap();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        let t = n.test_input().unwrap();
        assert!(sta.is_disabled(t));
        let after = sta.circuit_delay();
        // Only the AND's delay is added (1.0 + 0.2*1), not anything from T.
        assert!((after - before - 1.2).abs() < 1e-9, "before={before} after={after}");
        let _ = g2;
    }

    #[test]
    fn t_bar_inverter_is_disabled_too() {
        let (mut n, a, _b, _g1, _g2) = pipeline();
        n.insert_or_test_point(a).unwrap();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        assert!(sta.is_disabled(n.test_input().unwrap()));
        assert!(sta.is_disabled(n.test_input_bar().unwrap()));
    }

    #[test]
    fn mux_insertion_cost_matches_paper() {
        let (n, _a, _b, g1, _g2) = pipeline();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        // g1 drives one pin: inserting a MUX costs 2.0 + 0.2 = 2.2 (§IV.C)
        assert!((sta.insertion_cost(g1, GateKind::Mux) - 2.2).abs() < 1e-9);
    }

    #[test]
    fn can_insert_respects_slack() {
        let (mut n, a, b, _g1, _g2) = pipeline();
        // Give `a` a fast side path so it has slack: a long chain from b
        // dominates the critical path.
        let mut prev = b;
        for i in 0..5 {
            let inv = n.add_gate(GateKind::Inv, format!("pad{i}"));
            n.connect(prev, inv).unwrap();
            prev = inv;
        }
        let ff2 = n.add_gate(GateKind::Dff, "ff2");
        n.connect(prev, ff2).unwrap();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        assert!(sta.slack(a) > 0.0);
        assert!(
            sta.can_insert(a, GateKind::And)
                == (sta.slack(a) > sta.insertion_cost(a, GateKind::And))
        );
    }

    #[test]
    fn incremental_matches_full_after_test_point() {
        let (mut n, a, _b, g1, _g2) = pipeline();
        let mut sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        sta.freeze_clock();
        let tp = n.insert_and_test_point(g1).unwrap();
        let mut seeds = vec![tp, a, g1];
        seeds.push(n.test_input().unwrap());
        sta.update_after_edit(&n, &seeds);
        let mut full = Sta::analyze(&n, &lib(), ClockConstraint::Period(sta.clock_period()));
        full.freeze_clock();
        for g in n.gate_ids() {
            assert!(
                (sta.arrival(g) - full.arrival(g)).abs() < 1e-9,
                "arrival mismatch at {} ({}): {} vs {}",
                g,
                n.gate_name(g),
                sta.arrival(g),
                full.arrival(g)
            );
            let (ri, rf) = (sta.required(g), full.required(g));
            assert!(
                (ri - rf).abs() < 1e-9 || (ri.is_infinite() && rf.is_infinite()),
                "required mismatch at {} ({}): {} vs {}",
                g,
                n.gate_name(g),
                ri,
                rf
            );
        }
    }

    #[test]
    fn incremental_matches_full_after_scan_mux() {
        let (mut n, _a, _b, _g1, g2) = pipeline();
        let mut sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        sta.freeze_clock();
        let si = n.add_input("si");
        let mux = n.insert_scan_mux(g2, si).unwrap();
        let seeds = vec![mux, si, g2, n.test_input().unwrap()];
        sta.update_after_edit(&n, &seeds);
        let full = Sta::analyze(&n, &lib(), ClockConstraint::Period(sta.clock_period()));
        for g in n.gate_ids() {
            assert!((sta.arrival(g) - full.arrival(g)).abs() < 1e-9, "at {}", n.gate_name(g));
            let (ri, rf) = (sta.required(g), full.required(g));
            assert!(
                (ri - rf).abs() < 1e-9 || (ri.is_infinite() && rf.is_infinite()),
                "required at {}",
                n.gate_name(g)
            );
        }
    }

    #[test]
    fn critical_path_ends_at_max_arrival_driver() {
        let (n, _a, _b, _g1, g2) = pipeline();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::LongestPath);
        let path = sta.critical_path(&n);
        assert_eq!(*path.last().unwrap(), g2);
        assert!(path.len() >= 2);
        // Path arrivals strictly increase.
        for w in path.windows(2) {
            assert!(sta.arrival(w[0]) < sta.arrival(w[1]) + 1e-9);
        }
    }

    #[test]
    fn dangling_net_has_infinite_required() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let i = n.add_gate(GateKind::Inv, "dangle");
        n.connect(a, i).unwrap();
        let sta = Sta::analyze(&n, &lib(), ClockConstraint::Period(10.0));
        assert!(sta.required(i).is_infinite());
        assert!(sta.slack(i).is_infinite());
    }
}
