//! PODEM test generation on the scan-exposed combinational view.
//!
//! Classic Goel-style PODEM: decisions are made only at the view's
//! controllable inputs; each decision is followed by forward implication
//! of (good, faulty) value pairs; the *objective* is fault activation
//! first, then D-frontier propagation; objectives are *backtraced* to an
//! unassigned input through the easiest path; a dead D-frontier or an
//! unactivatable fault triggers chronological backtracking.

use crate::fault::Fault;
use crate::view::{CombView, TestCube};
use std::collections::HashSet;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_sim::{eval_gate, Trit};

/// Configuration for [`Podem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Chronological backtrack budget per fault.
    pub max_backtracks: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig { max_backtracks: 2000 }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A test cube detecting the fault.
    Test(TestCube),
    /// Proven untestable within the view (exhausted decision space).
    Untestable,
    /// Backtrack budget exhausted — undecided.
    Aborted,
}

/// (good, faulty) value pair — the 5-valued D-calculus encoded as two
/// ternary machines evaluated in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pair {
    good: Trit,
    faulty: Trit,
}

impl Pair {
    const X: Pair = Pair { good: Trit::X, faulty: Trit::X };
    fn is_d(self) -> bool {
        self.good.is_known() && self.faulty.is_known() && self.good != self.faulty
    }
}

/// The PODEM engine. One instance per (netlist, view); reusable across
/// faults.
///
/// # Example
///
/// ```
/// use tpi_netlist::{NetlistBuilder, GateKind};
/// use tpi_atpg::{CombView, Fault, Podem, PodemConfig, PodemResult, StuckAt};
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// b.input("a");
/// b.input("c");
/// b.gate(GateKind::And, "g", &["a", "c"]);
/// b.output("o", "g");
/// let n = b.finish()?;
/// let view = CombView::full_scan(&n);
/// let mut podem = Podem::new(&n, &view, PodemConfig::default());
/// let g = n.find("g").unwrap();
/// match podem.generate(Fault::new(g, StuckAt::Zero)) {
///     PodemResult::Test(cube) => assert!(cube.specified() >= 2),
///     other => panic!("expected a test, got {other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    n: &'a Netlist,
    cfg: PodemConfig,
    order: Vec<GateId>,
    controllable: HashSet<GateId>,
    observe: HashSet<GateId>,
    values: Vec<Pair>,
    assigned: Vec<(GateId, Trit)>,
}

impl<'a> Podem<'a> {
    /// Builds an engine for `n` under `view`.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn new(n: &'a Netlist, view: &'a CombView, cfg: PodemConfig) -> Self {
        Podem {
            n,
            cfg,
            order: n.topo_order().expect("netlist must be acyclic"),
            controllable: view.inputs().iter().copied().collect(),
            observe: view.observe().iter().copied().collect(),
            values: vec![Pair::X; n.gate_count()],
            assigned: Vec::new(),
        }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&mut self, fault: Fault) -> PodemResult {
        self.assigned.clear();
        self.imply(fault);
        // Decision stack: (input, value, flipped_already).
        let mut stack: Vec<(GateId, Trit, bool)> = Vec::new();
        let mut backtracks = 0usize;
        loop {
            if self.detected() {
                let cube: TestCube = self.assigned.iter().copied().collect();
                return PodemResult::Test(cube);
            }
            match self.objective(fault).and_then(|obj| self.backtrace(obj)) {
                Some((pi, v)) => {
                    stack.push((pi, v, false));
                    self.assigned.push((pi, v));
                    self.imply(fault);
                }
                None => {
                    // Dead end: flip the most recent unflipped decision.
                    loop {
                        match stack.pop() {
                            Some((pi, v, false)) => {
                                backtracks += 1;
                                if backtracks > self.cfg.max_backtracks {
                                    return PodemResult::Aborted;
                                }
                                self.assigned.pop();
                                let nv = !v;
                                stack.push((pi, nv, true));
                                self.assigned.push((pi, nv));
                                self.imply(fault);
                                break;
                            }
                            Some((_, _, true)) => {
                                self.assigned.pop();
                                continue;
                            }
                            None => return PodemResult::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// Full forward implication of the current input assignment in both
    /// machines (the faulty machine pins the fault site).
    fn imply(&mut self, fault: Fault) {
        for v in &mut self.values {
            *v = Pair::X;
        }
        for &(pi, v) in &self.assigned {
            self.values[pi.index()] = Pair { good: v, faulty: v };
        }
        for idx in 0..self.order.len() {
            let g = self.order[idx];
            let kind = self.n.kind(g);
            let pair = match kind {
                GateKind::Input | GateKind::Dff => self.values[g.index()],
                GateKind::Output => self.values[self.n.fanin(g)[0].index()],
                _ => {
                    let fanin = self.n.fanin(g);
                    let goods: Vec<Trit> =
                        fanin.iter().map(|&f| self.values[f.index()].good).collect();
                    let faults: Vec<Trit> =
                        fanin.iter().map(|&f| self.values[f.index()].faulty).collect();
                    Pair { good: eval_gate(kind, &goods), faulty: eval_gate(kind, &faults) }
                }
            };
            let mut pair = pair;
            if g == fault.net {
                pair.faulty = fault.stuck.value();
            }
            self.values[g.index()] = pair;
        }
    }

    /// True when a D/D' reaches an observable net.
    fn detected(&self) -> bool {
        self.observe.iter().any(|&g| self.values[g.index()].is_d())
    }

    /// The next objective `(net, good-machine value)`.
    fn objective(&self, fault: Fault) -> Option<(GateId, Trit)> {
        let site = self.values[fault.net.index()];
        // 1. Activate the fault.
        if !site.good.is_known() {
            return Some((fault.net, fault.stuck.activation()));
        }
        if !site.is_d() {
            return None; // activation failed: good machine equals stuck value
        }
        // 2. Propagate: pick a D-frontier gate (an undetermined gate with
        //    a D input) and demand the sensitizing value on one X input.
        for &g in &self.order {
            let kind = self.n.kind(g);
            if !kind.is_combinational() {
                continue;
            }
            let out = self.values[g.index()];
            if out.good.is_known() && out.faulty.is_known() {
                continue;
            }
            let fanin = self.n.fanin(g);
            if !fanin.iter().any(|&f| self.values[f.index()].is_d()) {
                continue;
            }
            // D-frontier member: find an X side input to sensitize.
            for &f in fanin {
                let p = self.values[f.index()];
                if !p.good.is_known() && !p.is_d() {
                    let want = match kind.sensitizing_value() {
                        Some(s) => Trit::from(s),
                        // XOR/XNOR/MUX side: either value propagates; pick 0.
                        None => Trit::Zero,
                    };
                    return Some((f, want));
                }
            }
        }
        None // no D-frontier left
    }

    /// Walks an objective back to an unassigned controllable input.
    fn backtrace(&self, (mut net, mut want): (GateId, Trit)) -> Option<(GateId, Trit)> {
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > self.n.gate_count() {
                return None; // safety: should not happen on acyclic nets
            }
            if self.controllable.contains(&net) {
                if self.values[net.index()].good.is_known() {
                    return None; // already decided: objective unreachable
                }
                return Some((net, want));
            }
            let kind = self.n.kind(net);
            match kind {
                GateKind::Dff | GateKind::Input => return None, // uncontrollable state
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::Inv => {
                    net = self.n.fanin(net)[0];
                    want = !want;
                }
                GateKind::Buf | GateKind::Output => {
                    net = self.n.fanin(net)[0];
                }
                GateKind::Xor | GateKind::Xnor | GateKind::Mux => {
                    // Pick the first X input and aim for `want` directly
                    // (coarse but effective; corrected by implication).
                    let next = self
                        .n
                        .fanin(net)
                        .iter()
                        .copied()
                        .find(|&f| !self.values[f.index()].good.is_known())?;
                    net = next;
                }
                GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                    let ctrl = Trit::from(kind.controlling_value().expect("and/or family"));
                    let inverted = kind.inverts();
                    let out_for_ctrl = if inverted { !ctrl } else { ctrl };
                    let xs: Vec<GateId> = self
                        .n
                        .fanin(net)
                        .iter()
                        .copied()
                        .filter(|&f| !self.values[f.index()].good.is_known())
                        .collect();
                    let next = *xs.first()?;
                    want = if want == out_for_ctrl {
                        // One controlling input suffices.
                        ctrl
                    } else {
                        // All inputs must be sensitizing; aim at one.
                        !ctrl
                    };
                    net = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{fault_list, StuckAt};
    use crate::sim_fault::FaultSim;
    use tpi_netlist::NetlistBuilder;

    fn c17ish() -> Netlist {
        // A small reconvergent circuit in the spirit of c17.
        let mut b = NetlistBuilder::new("c17ish");
        for i in 1..=5 {
            b.input(format!("i{i}"));
        }
        b.gate(GateKind::Nand, "g1", &["i1", "i3"]);
        b.gate(GateKind::Nand, "g2", &["i3", "i4"]);
        b.gate(GateKind::Nand, "g3", &["i2", "g2"]);
        b.gate(GateKind::Nand, "g4", &["g2", "i5"]);
        b.gate(GateKind::Nand, "g5", &["g1", "g3"]);
        b.gate(GateKind::Nand, "g6", &["g3", "g4"]);
        b.output("o1", "g5");
        b.output("o2", "g6");
        b.finish().unwrap()
    }

    #[test]
    fn every_c17_fault_gets_a_verified_test() {
        let n = c17ish();
        let view = CombView::full_scan(&n);
        let sim = FaultSim::new(&n, &view);
        let mut podem = Podem::new(&n, &view, PodemConfig::default());
        for fault in fault_list(&n) {
            match podem.generate(fault) {
                PodemResult::Test(cube) => {
                    let good = sim.good_values(&cube);
                    assert!(sim.detects(&good, fault), "{fault}: cube does not verify");
                }
                other => panic!("{fault}: expected test, got {other:?}"),
            }
        }
    }

    #[test]
    fn redundant_fault_is_proven_untestable() {
        // y = a OR (a AND c): the AND's output SA0 is undetectable
        // (y = a regardless).
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("c");
        b.gate(GateKind::And, "g", &["a", "c"]);
        b.gate(GateKind::Or, "y", &["a", "g"]);
        b.output("o", "y");
        let n = b.finish().unwrap();
        let view = CombView::full_scan(&n);
        let mut podem = Podem::new(&n, &view, PodemConfig::default());
        let g = n.find("g").unwrap();
        assert_eq!(podem.generate(Fault::new(g, StuckAt::Zero)), PodemResult::Untestable);
        // ...while SA1 on the same net is testable (a=0, c=0 -> y flips).
        assert!(matches!(podem.generate(Fault::new(g, StuckAt::One)), PodemResult::Test(_)));
    }

    #[test]
    fn state_faults_need_the_scan_view() {
        // Fault behind an unscanned FF boundary: only the full-scan view
        // can control the state side.
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("d");
        b.dff("q", "d");
        b.gate(GateKind::And, "g", &["a", "q"]);
        b.output("o", "g");
        let n = b.finish().unwrap();
        let g = n.find("g").unwrap();
        let fault = Fault::new(g, StuckAt::Zero); // needs a = 1 AND q = 1
        let full = CombView::full_scan(&n);
        let none = CombView::unscanned(&n);
        let mut p_full = Podem::new(&n, &full, PodemConfig::default());
        assert!(matches!(p_full.generate(fault), PodemResult::Test(_)));
        let mut p_none = Podem::new(&n, &none, PodemConfig::default());
        assert_eq!(p_none.generate(fault), PodemResult::Untestable);
    }

    #[test]
    fn generated_cubes_only_touch_view_inputs() {
        let n = c17ish();
        let view = CombView::full_scan(&n);
        let mut podem = Podem::new(&n, &view, PodemConfig::default());
        let f = fault_list(&n)[0];
        if let PodemResult::Test(cube) = podem.generate(f) {
            for &(g, _) in cube.assignments() {
                assert!(view.inputs().contains(&g));
            }
        } else {
            panic!("expected a test");
        }
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use crate::fault::fault_list;
    use crate::sim_fault::FaultSim;
    use crate::view::TestCube;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tpi_netlist::NetlistBuilder;

    /// Random small combinational circuits; PODEM's verdicts are checked
    /// against exhaustive 2^n simulation: a returned test must detect,
    /// and "untestable" must mean *no* cube detects.
    #[test]
    fn podem_is_exhaustively_sound_and_complete_on_small_circuits() {
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_inputs = 4 + (seed as usize % 3);
            let mut b = NetlistBuilder::new(format!("x{seed}"));
            let mut nets: Vec<String> = Vec::new();
            for i in 0..n_inputs {
                b.input(format!("i{i}"));
                nets.push(format!("i{i}"));
            }
            for gi in 0..8 {
                let kind = match rng.gen_range(0..5) {
                    0 => GateKind::And,
                    1 => GateKind::Or,
                    2 => GateKind::Nand,
                    3 => GateKind::Nor,
                    _ => GateKind::Xor,
                };
                let arity = if kind == GateKind::Xor { 2 } else { 2 + rng.gen_range(0..2) };
                let name = format!("g{gi}");
                let picks: Vec<String> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())].clone()).collect();
                let refs: Vec<&str> = picks.iter().map(String::as_str).collect();
                b.gate(kind, name.clone(), &refs);
                nets.push(name);
            }
            b.output("o", nets.last().unwrap());
            let n = b.finish().unwrap();
            let view = CombView::full_scan(&n);
            let sim = FaultSim::new(&n, &view);
            let mut podem = Podem::new(&n, &view, PodemConfig::default());
            let inputs: Vec<_> = view.inputs().to_vec();
            for fault in fault_list(&n) {
                let exhaustive_detectable = (0..1u32 << inputs.len()).any(|m| {
                    let cube: TestCube = inputs
                        .iter()
                        .enumerate()
                        .map(|(i, &g)| (g, Trit::from(m >> i & 1 == 1)))
                        .collect();
                    sim.detects(&sim.good_values(&cube), fault)
                });
                match podem.generate(fault) {
                    PodemResult::Test(cube) => {
                        assert!(
                            sim.detects(&sim.good_values(&cube), fault),
                            "seed {seed} {fault}: returned cube must detect"
                        );
                        assert!(
                            exhaustive_detectable,
                            "seed {seed} {fault}: PODEM found a test for an undetectable fault"
                        );
                    }
                    PodemResult::Untestable => {
                        assert!(
                            !exhaustive_detectable,
                            "seed {seed} {fault}: PODEM claims untestable but a cube exists"
                        );
                    }
                    PodemResult::Aborted => {}
                }
            }
        }
    }
}
