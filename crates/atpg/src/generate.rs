//! Test-set generation: random patterns with fault dropping, topped up
//! by deterministic PODEM, reporting stuck-at coverage.

use crate::fault::Fault;
use crate::podem::{Podem, PodemConfig, PodemResult};
use crate::sim_fault::FaultSim;
use crate::view::{CombView, TestCube};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use tpi_netlist::Netlist;
use tpi_sim::Trit;

/// A generated test set with per-fault accounting.
#[derive(Debug, Clone)]
pub struct TestSet {
    /// The test cubes, in generation order.
    pub cubes: Vec<TestCube>,
    /// Coverage accounting.
    pub report: CoverageReport,
}

/// Stuck-at coverage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Total collapsed faults targeted.
    pub total_faults: usize,
    /// Faults detected by some cube.
    pub detected: usize,
    /// Faults PODEM proved untestable in this view.
    pub untestable: usize,
    /// Faults left undecided (PODEM aborted).
    pub aborted: usize,
    /// Cubes contributed by the random phase.
    pub random_cubes: usize,
    /// Cubes contributed by PODEM.
    pub deterministic_cubes: usize,
}

impl CoverageReport {
    /// Detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Detected / (total - proven untestable) — the usual ATPG metric.
    pub fn test_efficiency(&self) -> f64 {
        let denom = self.total_faults - self.untestable;
        if denom == 0 {
            return 1.0;
        }
        self.detected as f64 / denom as f64
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.1}% coverage, {:.1}% efficiency), {} untestable, {} aborted, {}+{} cubes",
            self.detected,
            self.total_faults,
            self.coverage() * 100.0,
            self.test_efficiency() * 100.0,
            self.untestable,
            self.aborted,
            self.random_cubes,
            self.deterministic_cubes
        )
    }
}

/// Generates a stuck-at test set for `faults` under `view`:
/// `random_patterns` fully specified random cubes (with fault dropping),
/// then one PODEM call per surviving fault.
///
/// # Example
///
/// See `examples/atpg_coverage.rs` for an end-to-end run on a suite
/// circuit (full-scan vs. unscanned contrast).
pub fn generate_tests(
    n: &Netlist,
    view: &CombView,
    faults: &[Fault],
    random_patterns: usize,
    seed: u64,
) -> TestSet {
    generate_tests_with(n, view, faults, random_patterns, seed, PodemConfig::default())
}

/// [`generate_tests`] with an explicit PODEM budget. PODEM's per-fault
/// cost scales with circuit size × `max_backtracks`, so large-circuit
/// sweeps cap the budget and accept more `Aborted` verdicts — those
/// count as undetected, making the reported coverage a lower bound.
pub fn generate_tests_with(
    n: &Netlist,
    view: &CombView,
    faults: &[Fault],
    random_patterns: usize,
    seed: u64,
    podem_config: PodemConfig,
) -> TestSet {
    let sim = FaultSim::new(n, view);
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut cubes: Vec<TestCube> = Vec::new();
    let mut detected = 0usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut random_cubes = 0usize;

    // --- Phase 1: random patterns with fault dropping. ---
    for _ in 0..random_patterns {
        if remaining.is_empty() {
            break;
        }
        let cube: TestCube =
            view.inputs().iter().map(|&g| (g, Trit::from(rng.gen_bool(0.5)))).collect();
        let hits = sim.detected(&cube, &remaining);
        if hits.is_empty() {
            continue;
        }
        detected += hits.len();
        // Drop detected faults (indices ascending: remove from the back).
        for &i in hits.iter().rev() {
            remaining.swap_remove(i);
        }
        cubes.push(cube);
        random_cubes += 1;
    }

    // --- Phase 2: deterministic top-up. ---
    let mut podem = Podem::new(n, view, podem_config);
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    let mut deterministic_cubes = 0usize;
    let mut idx = 0;
    while idx < remaining.len() {
        let fault = remaining[idx];
        match podem.generate(fault) {
            PodemResult::Test(cube) => {
                let hits = sim.detected(&cube, &remaining);
                debug_assert!(hits.contains(&idx), "PODEM cube must detect its target {fault}");
                detected += hits.len();
                for &i in hits.iter().rev() {
                    remaining.swap_remove(i);
                }
                cubes.push(cube);
                deterministic_cubes += 1;
                // `idx` now holds a different fault (swap_remove); retry it.
            }
            PodemResult::Untestable => {
                untestable += 1;
                remaining.swap_remove(idx);
            }
            PodemResult::Aborted => {
                aborted += 1;
                idx += 1;
            }
        }
    }

    TestSet {
        cubes,
        report: CoverageReport {
            total_faults: faults.len(),
            detected,
            untestable,
            aborted,
            random_cubes,
            deterministic_cubes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use tpi_netlist::{GateKind, NetlistBuilder};

    fn c17ish() -> Netlist {
        let mut b = NetlistBuilder::new("c17ish");
        for i in 1..=5 {
            b.input(format!("i{i}"));
        }
        b.gate(GateKind::Nand, "g1", &["i1", "i3"]);
        b.gate(GateKind::Nand, "g2", &["i3", "i4"]);
        b.gate(GateKind::Nand, "g3", &["i2", "g2"]);
        b.gate(GateKind::Nand, "g4", &["g2", "i5"]);
        b.gate(GateKind::Nand, "g5", &["g1", "g3"]);
        b.gate(GateKind::Nand, "g6", &["g3", "g4"]);
        b.output("o1", "g5");
        b.output("o2", "g6");
        b.finish().unwrap()
    }

    #[test]
    fn full_coverage_on_c17() {
        let n = c17ish();
        let view = CombView::full_scan(&n);
        let faults = fault_list(&n);
        let ts = generate_tests(&n, &view, &faults, 16, 42);
        assert_eq!(ts.report.detected + ts.report.untestable, ts.report.total_faults);
        assert_eq!(ts.report.aborted, 0);
        assert!((ts.report.test_efficiency() - 1.0).abs() < 1e-12);
        assert!(!ts.cubes.is_empty());
    }

    #[test]
    fn deterministic_phase_alone_also_covers() {
        let n = c17ish();
        let view = CombView::full_scan(&n);
        let faults = fault_list(&n);
        let ts = generate_tests(&n, &view, &faults, 0, 0);
        assert_eq!(ts.report.random_cubes, 0);
        assert!(ts.report.deterministic_cubes > 0);
        assert!((ts.report.test_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_phase_drops_most_faults_cheaply() {
        let n = c17ish();
        let view = CombView::full_scan(&n);
        let faults = fault_list(&n);
        let ts = generate_tests(&n, &view, &faults, 64, 7);
        assert!(
            ts.report.random_cubes <= 64 && ts.report.random_cubes > 0,
            "random phase should contribute"
        );
    }

    #[test]
    fn scan_view_beats_unscanned_view() {
        // The paper's motivation, quantified: with state exposed, coverage
        // is strictly higher than with state hidden.
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("d");
        b.dff("q", "d");
        b.gate(GateKind::And, "g", &["a", "q"]);
        b.gate(GateKind::Or, "y", &["g", "d"]);
        b.output("o", "y");
        let n = b.finish().unwrap();
        let faults = fault_list(&n);
        let full = CombView::full_scan(&n);
        let none = CombView::unscanned(&n);
        let cov_full = generate_tests(&n, &full, &faults, 8, 3).report.coverage();
        let cov_none = generate_tests(&n, &none, &faults, 8, 3).report.coverage();
        assert!(cov_full > cov_none, "full scan {cov_full} must beat unscanned {cov_none}");
    }
}
