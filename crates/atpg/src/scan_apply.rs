//! End-to-end application of one combinational test through a physical
//! scan chain: shift in the state part, launch the PI part in mission
//! mode, capture, shift out — the full protocol the paper's DFT
//! transformations exist to enable.

use crate::view::TestCube;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_scan::ScanChain;
use tpi_sim::{Simulator, Trit};

/// What one scan-test application produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanApplyOutcome {
    /// Primary-output values observed during the capture cycle,
    /// `(po_port, value)`.
    pub po_values: Vec<(GateId, Trit)>,
    /// Captured next-state values per chain link (in chain order),
    /// decoded back through the chain's inversion parities — i.e. the
    /// values the flip-flops' D nets carried at capture.
    pub captured: Vec<Trit>,
}

/// Applies `cube` to the transformed netlist `n` through `chain`.
///
/// Protocol:
/// 1. **Shift-in** (test mode, `T = 0`, DFT constants held): the cube's
///    flip-flop values enter through `scan_in`, pre-compensated for each
///    stage's inversion parity;
/// 2. **Capture** (mission mode, `T = 1`): the cube's primary-input
///    values are applied, one clock captures the functional next state;
/// 3. **Shift-out** (test mode again): the captured state drains through
///    `scan_out`, decoded against the chain parities.
///
/// Because `T = 1` makes every test point and scan mux transparent, the
/// capture cycle computes exactly the *original* circuit's function — a
/// property the round-trip tests assert.
///
/// `dft_constants` are the test-mode primary-input values the DFT flow
/// requires (input-assignment results); they are held during the shift
/// phases and released during capture.
pub fn scan_apply(
    n: &Netlist,
    chain: &ScanChain,
    dft_constants: &[(GateId, Trit)],
    cube: &TestCube,
) -> ScanApplyOutcome {
    let t = n.test_input().expect("transformed netlists carry a test input");
    let len = chain.len();
    let mut sim = Simulator::new(n);

    // ---- Phase 1: shift-in. ----
    sim.set_input(t, Trit::Zero);
    for &(pi, v) in dft_constants {
        sim.set_input(pi, v);
    }
    // Desired state values per chain stage.
    let desired: Vec<Trit> = chain.links().iter().map(|l| cube.get(l.ff())).collect();
    for cycle in 0..len {
        // The bit injected at cycle c lands in stage (len-1-c), having
        // accumulated parity_through(len-1-c).
        let stage = len - 1 - cycle;
        let v = desired[stage];
        let inject = if chain.parity_through(stage) { !v } else { v };
        sim.set_input(chain.scan_in(), inject);
        sim.step();
    }

    // ---- Phase 2: capture. ----
    sim.set_input(t, Trit::One);
    // Release DFT shift constants, apply the cube's PI part.
    for &(pi, _) in dft_constants {
        sim.set_input(pi, Trit::X);
    }
    for &(g, v) in cube.assignments() {
        if n.kind(g) == GateKind::Input {
            sim.set_input(g, v);
        }
    }
    // Observe primary outputs combinationally, then clock once.
    let po_values: Vec<(GateId, Trit)> = n
        .outputs()
        .into_iter()
        .filter(|&o| o != chain.scan_out())
        .map(|o| (o, sim.output(o)))
        .collect();
    sim.step();

    // ---- Phase 3: shift-out. ----
    sim.set_input(t, Trit::Zero);
    for &(pi, v) in dft_constants {
        sim.set_input(pi, v);
    }
    sim.set_input(chain.scan_in(), Trit::Zero);
    let last = len - 1;
    let mut captured = vec![Trit::X; len];
    // Stage `last` is visible immediately; each further stage appears
    // after one more shift, accumulating the parities of the links it
    // traverses on the way out.
    for out_cycle in 0..len {
        let stage = last - out_cycle;
        let raw = sim.value(chain.links()[last].ff());
        let tail_parity = chain.parity_through(last) != chain.parity_through(stage);
        captured[stage] = if tail_parity { !raw } else { raw };
        if out_cycle + 1 < len {
            sim.step();
        }
    }
    ScanApplyOutcome { po_values, captured }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::CombView;
    use crate::FaultSim;
    use tpi_core::flow::FullScanFlow;
    use tpi_netlist::NetlistBuilder;
    use tpi_workloads::iscas::s27;

    /// Full-scan a circuit, apply a cube through the real chain, and
    /// check PO + captured state against the good-machine simulation of
    /// the ORIGINAL netlist.
    fn round_trip(n: &Netlist, bits: &[(&str, Trit)]) {
        let view = CombView::full_scan(n);
        let sim = FaultSim::new(n, &view);
        let cube: TestCube = bits.iter().map(|&(name, v)| (n.find(name).unwrap(), v)).collect();
        let good = sim.good_values(&cube);

        let r = FullScanFlow::default().run(n);
        assert!(r.flush.passed());
        let outcome = scan_apply(&r.netlist, &r.chain, &r.pi_values, &cube);

        // Captured state must equal the original next-state function.
        for (k, link) in r.chain.links().iter().enumerate() {
            let d_net = n.fanin(link.ff())[0];
            let want = good[d_net.index()];
            if want.is_known() {
                assert_eq!(
                    outcome.captured[k],
                    want,
                    "stage {k} ({}) captured wrong next state",
                    n.gate_name(link.ff())
                );
            }
        }
        // POs of the transformed circuit in mission mode = original POs.
        for &(port, got) in &outcome.po_values {
            let name = r.netlist.gate_name(port);
            if let Some(orig_port) = n.find(name) {
                let want = good[n.fanin(orig_port)[0].index()];
                if want.is_known() {
                    assert_eq!(got, want, "PO {name} mismatch");
                }
            }
        }
    }

    #[test]
    fn capture_matches_original_function_on_small_circuit() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("c");
        b.dff("q0", "g1");
        b.dff("q1", "q0");
        b.gate(tpi_netlist::GateKind::Nand, "g1", &["a", "q1"]);
        b.gate(tpi_netlist::GateKind::Or, "y", &["g1", "c"]);
        b.output("o", "y");
        let n = b.finish().unwrap();
        round_trip(
            &n,
            &[("a", Trit::One), ("c", Trit::Zero), ("q0", Trit::One), ("q1", Trit::One)],
        );
        round_trip(
            &n,
            &[("a", Trit::Zero), ("c", Trit::One), ("q0", Trit::Zero), ("q1", Trit::One)],
        );
    }

    #[test]
    fn capture_matches_original_function_on_s27() {
        let n = s27();
        round_trip(
            &n,
            &[
                ("G0", Trit::Zero),
                ("G1", Trit::One),
                ("G2", Trit::Zero),
                ("G3", Trit::One),
                ("G5", Trit::One),
                ("G6", Trit::Zero),
                ("G7", Trit::One),
            ],
        );
        round_trip(
            &n,
            &[
                ("G0", Trit::One),
                ("G1", Trit::Zero),
                ("G2", Trit::One),
                ("G3", Trit::Zero),
                ("G5", Trit::Zero),
                ("G6", Trit::One),
                ("G7", Trit::Zero),
            ],
        );
    }
}
