//! The scan-exposed combinational view of a sequential circuit.

use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_sim::Trit;

/// A combinational test view: primary inputs plus scanned flip-flop
/// outputs are controllable; primary outputs plus scanned flip-flop D
/// nets are observable.
///
/// For a *full-scan* design every flip-flop is scanned ([`CombView::full_scan`]);
/// a partial-scan view lists only the scanned subset — unscanned
/// flip-flops stay uncontrollable/unobservable, which is exactly why
/// their faults are harder to test.
#[derive(Debug, Clone)]
pub struct CombView {
    inputs: Vec<GateId>,
    observe: Vec<GateId>,
    /// Scanned flip-flops (controllable state).
    scanned: Vec<GateId>,
}

impl CombView {
    /// Builds the view for a design where `scanned` flip-flops are on a
    /// scan chain.
    pub fn new(n: &Netlist, scanned: &[GateId]) -> Self {
        let inputs: Vec<GateId> = n.inputs().into_iter().chain(scanned.iter().copied()).collect();
        let mut observe: Vec<GateId> = n.outputs().iter().map(|&o| n.fanin(o)[0]).collect();
        for &ff in scanned {
            debug_assert_eq!(n.kind(ff), GateKind::Dff);
            observe.push(n.fanin(ff)[0]);
        }
        observe.sort_unstable();
        observe.dedup();
        CombView { inputs, observe, scanned: scanned.to_vec() }
    }

    /// The full-scan view: every flip-flop scanned.
    pub fn full_scan(n: &Netlist) -> Self {
        Self::new(n, &n.dffs())
    }

    /// The no-scan view: only real PIs/POs (for contrast experiments).
    pub fn unscanned(n: &Netlist) -> Self {
        Self::new(n, &[])
    }

    /// Controllable nets (PIs and scanned FF outputs), in a fixed order.
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Observable nets (PO drivers and scanned FF D nets).
    #[inline]
    pub fn observe(&self) -> &[GateId] {
        &self.observe
    }

    /// The scanned flip-flops.
    #[inline]
    pub fn scanned(&self) -> &[GateId] {
        &self.scanned
    }
}

/// One combinational test: values for the view's controllable nets.
/// Unlisted inputs are don't-care.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TestCube {
    assignments: Vec<(GateId, Trit)>,
}

impl TestCube {
    /// An empty (all don't-care) cube.
    pub fn new() -> Self {
        TestCube::default()
    }

    /// Sets one controllable net.
    pub fn set(&mut self, net: GateId, value: Trit) {
        if let Some(slot) = self.assignments.iter_mut().find(|(g, _)| *g == net) {
            slot.1 = value;
        } else {
            self.assignments.push((net, value));
        }
    }

    /// The value assigned to `net`, or `X`.
    pub fn get(&self, net: GateId) -> Trit {
        self.assignments.iter().find(|(g, _)| *g == net).map(|&(_, v)| v).unwrap_or(Trit::X)
    }

    /// The explicit assignments.
    pub fn assignments(&self) -> &[(GateId, Trit)] {
        &self.assignments
    }

    /// Number of specified bits.
    pub fn specified(&self) -> usize {
        self.assignments.iter().filter(|(_, v)| v.is_known()).count()
    }
}

impl FromIterator<(GateId, Trit)> for TestCube {
    fn from_iter<T: IntoIterator<Item = (GateId, Trit)>>(iter: T) -> Self {
        let mut c = TestCube::new();
        for (g, v) in iter {
            c.set(g, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.dff("q", "g");
        b.gate(GateKind::And, "g", &["a", "q"]);
        b.output("o", "g");
        b.finish().unwrap()
    }

    #[test]
    fn full_scan_view_exposes_state() {
        let n = sample();
        let v = CombView::full_scan(&n);
        assert_eq!(v.inputs().len(), 2, "PI a + pseudo-PI q");
        // observable: g (PO driver) and g (q's D) dedup to one net
        assert_eq!(v.observe().len(), 1);
        assert_eq!(v.scanned().len(), 1);
    }

    #[test]
    fn unscanned_view_hides_state() {
        let n = sample();
        let v = CombView::unscanned(&n);
        assert_eq!(v.inputs().len(), 1);
        assert_eq!(v.observe().len(), 1);
    }

    #[test]
    fn cube_set_get_overwrite() {
        let n = sample();
        let a = n.find("a").unwrap();
        let mut c = TestCube::new();
        assert_eq!(c.get(a), Trit::X);
        c.set(a, Trit::One);
        assert_eq!(c.get(a), Trit::One);
        c.set(a, Trit::Zero);
        assert_eq!(c.get(a), Trit::Zero);
        assert_eq!(c.specified(), 1);
    }
}
