//! Sequential (no-scan) random testing — the baseline the paper's
//! introduction argues against.
//!
//! Without scan, a fault must be excited and propagated to a primary
//! output across *clock cycles*, starting from an unknown power-up
//! state. This module measures how far random input sequences get: a
//! serial sequential fault simulator runs the good and the faulty
//! machine side by side over an input sequence and reports detection
//! when a primary output differs with both machines at known values.

use crate::fault::Fault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_sim::{eval_gate, Trit};

/// Outcome of a sequential random-test campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqCoverage {
    /// Faults targeted.
    pub total_faults: usize,
    /// Faults detected by some sequence.
    pub detected: usize,
    /// Sequences applied.
    pub sequences: usize,
    /// Cycles per sequence.
    pub cycles: usize,
}

impl SeqCoverage {
    /// Detected / total.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

impl fmt::Display for SeqCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} detected ({:.1}%) with {} sequences x {} cycles",
            self.detected,
            self.total_faults,
            self.coverage() * 100.0,
            self.sequences,
            self.cycles
        )
    }
}

/// Lock-step good/faulty sequential machines.
struct TwinSim<'a> {
    n: &'a Netlist,
    order: Vec<GateId>,
    good: Vec<Trit>,
    faulty: Vec<Trit>,
}

impl<'a> TwinSim<'a> {
    fn new(n: &'a Netlist, order: &[GateId]) -> Self {
        TwinSim {
            n,
            order: order.to_vec(),
            good: vec![Trit::X; n.gate_count()],
            faulty: vec![Trit::X; n.gate_count()],
        }
    }

    /// One cycle: drive PIs, settle both machines (fault pinned in the
    /// faulty one), report PO mismatch, clock.
    fn cycle(&mut self, pis: &[(GateId, Trit)], fault: Fault) -> bool {
        for &(pi, v) in pis {
            self.good[pi.index()] = v;
            self.faulty[pi.index()] = v;
        }
        for i in 0..self.order.len() {
            let g = self.order[i];
            let kind = self.n.kind(g);
            match kind {
                GateKind::Input | GateKind::Dff => {}
                GateKind::Output => {
                    let f0 = self.n.fanin(g)[0];
                    self.good[g.index()] = self.good[f0.index()];
                    self.faulty[g.index()] = self.faulty[f0.index()];
                }
                _ => {
                    let fanin = self.n.fanin(g);
                    let gi: Vec<Trit> = fanin.iter().map(|&f| self.good[f.index()]).collect();
                    let fi: Vec<Trit> = fanin.iter().map(|&f| self.faulty[f.index()]).collect();
                    self.good[g.index()] = eval_gate(kind, &gi);
                    self.faulty[g.index()] = eval_gate(kind, &fi);
                }
            }
            if g == fault.net {
                self.faulty[g.index()] = fault.stuck.value();
            }
        }
        // Detection at any primary output with both machines known.
        let detected = self.n.outputs().into_iter().any(|o| {
            let g = self.good[o.index()];
            let f = self.faulty[o.index()];
            g.is_known() && f.is_known() && g != f
        });
        // Clock: capture D into state, in both machines.
        let next: Vec<(GateId, Trit, Trit)> = self
            .n
            .gate_ids()
            .filter(|&g| self.n.kind(g) == GateKind::Dff)
            .map(|g| {
                let d = self.n.fanin(g)[0];
                (g, self.good[d.index()], self.faulty[d.index()])
            })
            .collect();
        for (g, gv, fv) in next {
            self.good[g.index()] = gv;
            self.faulty[g.index()] = fv;
        }
        detected
    }
}

/// Runs `sequences` random input sequences of `cycles` clock cycles each
/// against every fault (serially, with fault dropping across sequences).
/// Both machines power up at `X` — the realistic no-reset worst case the
/// paper's introduction describes.
pub fn sequential_random_coverage(
    n: &Netlist,
    faults: &[Fault],
    sequences: usize,
    cycles: usize,
    seed: u64,
) -> SeqCoverage {
    let order = n.topo_order().expect("netlist must be acyclic");
    let pis = n.inputs();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alive: Vec<Fault> = faults.to_vec();
    let mut detected = 0usize;
    for _ in 0..sequences {
        if alive.is_empty() {
            break;
        }
        // One shared random stimulus per sequence.
        let stimulus: Vec<Vec<(GateId, Trit)>> = (0..cycles)
            .map(|_| pis.iter().map(|&p| (p, Trit::from(rng.gen_bool(0.5)))).collect())
            .collect();
        alive.retain(|&fault| {
            let mut twin = TwinSim::new(n, &order);
            for step in &stimulus {
                if twin.cycle(step, fault) {
                    detected += 1;
                    return false; // dropped
                }
            }
            true
        });
    }
    SeqCoverage { total_faults: faults.len(), detected, sequences, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{fault_list, StuckAt};
    use tpi_netlist::NetlistBuilder;

    /// A 2-deep pipeline: faults behind the state need >= 2 cycles to
    /// propagate to the PO.
    fn pipeline() -> Netlist {
        let mut b = NetlistBuilder::new("p");
        b.input("a");
        b.gate(GateKind::Inv, "g0", &["a"]);
        b.dff("q0", "g0");
        b.gate(GateKind::Inv, "g1", &["q0"]);
        b.dff("q1", "g1");
        b.output("o", "q1");
        b.finish().unwrap()
    }

    #[test]
    fn deep_faults_need_enough_cycles() {
        let n = pipeline();
        let g0 = n.find("g0").unwrap();
        let f = Fault::new(g0, StuckAt::Zero);
        // One cycle: the difference is still inside q0 -> undetected.
        let one = sequential_random_coverage(&n, &[f], 4, 1, 7);
        assert_eq!(one.detected, 0);
        // Three cycles: excite, ride through q0, q1, observe.
        let three = sequential_random_coverage(&n, &[f], 4, 3, 7);
        assert_eq!(three.detected, 1);
    }

    #[test]
    fn longer_sequences_never_hurt() {
        let n = pipeline();
        let faults = fault_list(&n);
        let short = sequential_random_coverage(&n, &faults, 8, 1, 3).coverage();
        let long = sequential_random_coverage(&n, &faults, 8, 6, 3).coverage();
        assert!(long >= short);
    }

    #[test]
    fn feedback_state_resists_random_sequences() {
        // A self-reinforcing loop: q holds through AND(q, en). As soon as
        // any random cycle drives en = 0, the good machine latches 0 and
        // can never return to 1 — so `hold` stuck-at-0 is undetectable by
        // input sequences (both machines read 0 forever), while stuck-at-1
        // is caught the first time en = 0 appears.
        let mut b = NetlistBuilder::new("latchy");
        b.input("en");
        b.gate(GateKind::And, "hold", &["q", "en"]);
        b.dff("q", "hold");
        b.output("o", "q");
        let n = b.finish().unwrap();
        let hold = n.find("hold").unwrap();
        let sa0 = Fault::new(hold, StuckAt::Zero);
        let sa1 = Fault::new(hold, StuckAt::One);
        let seq = sequential_random_coverage(&n, &[sa0], 16, 8, 9);
        assert_eq!(seq.detected, 0, "SA0 is sequence-undetectable: {seq}");
        let seq = sequential_random_coverage(&n, &[sa1], 16, 8, 9);
        assert_eq!(seq.detected, 1, "SA1 falls to the first en = 0: {seq}");
        // Scan access also nails the SA0 case instantly: set q = 1 from
        // the chain, en = 1, observe the D net.
        let view = crate::view::CombView::full_scan(&n);
        let sim = crate::sim_fault::FaultSim::new(&n, &view);
        let q = n.find("q").unwrap();
        let en = n.find("en").unwrap();
        let cube: crate::view::TestCube = [(q, Trit::One), (en, Trit::One)].into_iter().collect();
        let good = sim.good_values(&cube);
        assert!(sim.detects(&good, sa0));
    }
}
