//! Stuck-at test generation and fault simulation — the *payoff* side of
//! the DAC'96 scan methodology.
//!
//! The paper's opening sentence: "Automatic test pattern generation for
//! sequential circuits is a difficult problem because of the lack of
//! direct controllability of the present state lines and direct
//! observability of the next state lines." Scan (whether by muxes or by
//! the paper's test-point paths) turns the sequential ATPG problem into
//! a combinational one: flip-flop outputs become pseudo-primary inputs,
//! flip-flop D nets become pseudo-primary outputs.
//!
//! This crate provides that combinational ATPG stack:
//!
//! * [`Fault`] / [`fault_list`] — single stuck-at faults on gate outputs,
//!   with inverter/buffer equivalence collapsing;
//! * [`FaultSim`] — a cone-bounded serial fault simulator over the
//!   scan-exposed combinational view;
//! * [`Podem`] — the classic PODEM test generator (objective, backtrace,
//!   imply, D-frontier) on a (good, faulty) value-pair encoding;
//! * [`generate_tests`] — random patterns + PODEM top-up with fault
//!   dropping, reporting coverage;
//! * [`scan_apply`] — end-to-end application of one test through a real
//!   stitched scan chain (shift in, launch, capture, shift out) on the
//!   transformed netlist, closing the loop the paper's §V opens;
//! * [`seq`] — the no-scan baseline: random input *sequences* against a
//!   lock-step sequential good/faulty machine pair, quantifying how much
//!   the missing state controllability/observability costs.

mod compaction;
mod fault;
mod generate;
mod podem;
mod scan_apply;
pub mod seq;
mod sim_fault;
mod view;

pub use compaction::{compact_tests, compatible, merge};
pub use fault::{fault_list, Fault, StuckAt};
pub use generate::{generate_tests, generate_tests_with, CoverageReport, TestSet};
pub use podem::{Podem, PodemConfig, PodemResult};
pub use scan_apply::{scan_apply, ScanApplyOutcome};
pub use seq::{sequential_random_coverage, SeqCoverage};
pub use sim_fault::FaultSim;
pub use view::{CombView, TestCube};
