//! Single stuck-at fault model with structural equivalence collapsing.

use std::fmt;
use tpi_netlist::{GateId, GateKind, Netlist};

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StuckAt {
    /// Net stuck at logic 0.
    Zero,
    /// Net stuck at logic 1.
    One,
}

impl StuckAt {
    /// The faulty logic value.
    pub fn value(self) -> tpi_sim::Trit {
        match self {
            StuckAt::Zero => tpi_sim::Trit::Zero,
            StuckAt::One => tpi_sim::Trit::One,
        }
    }

    /// The value that activates (excites) the fault.
    pub fn activation(self) -> tpi_sim::Trit {
        match self {
            StuckAt::Zero => tpi_sim::Trit::One,
            StuckAt::One => tpi_sim::Trit::Zero,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StuckAt::Zero => "SA0",
            StuckAt::One => "SA1",
        })
    }
}

/// A single stuck-at fault on a net (gate output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The faulty net.
    pub net: GateId,
    /// Stuck polarity.
    pub stuck: StuckAt,
}

impl Fault {
    /// Creates a fault value.
    pub fn new(net: GateId, stuck: StuckAt) -> Self {
        Fault { net, stuck }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.net, self.stuck)
    }
}

/// Enumerates the collapsed single-stuck-at fault list on gate-output
/// nets of the combinational network (plus primary inputs).
///
/// Collapsing uses the classic structural equivalences through
/// single-input gates: a fault on an inverter's output is equivalent to
/// the complementary fault on its input, and a buffer's output faults to
/// the same faults on its input — so faults are kept only at the
/// *representative* (the furthest-upstream net through INV/BUF chains),
/// with polarity adjusted.
///
/// Output ports and flip-flop outputs are excluded as fault sites
/// (flip-flop output faults are the D-net faults of the previous cycle
/// in the scan-exposed view; port faults are input faults of the driver).
pub fn fault_list(n: &Netlist) -> Vec<Fault> {
    let mut list = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for g in n.gate_ids() {
        let kind = n.kind(g);
        let site_ok = kind.is_combinational() || kind == GateKind::Input;
        if !site_ok {
            continue;
        }
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let f = collapse(n, Fault::new(g, stuck));
            if seen.insert(f) {
                list.push(f);
            }
        }
    }
    list.sort_unstable();
    list
}

/// Follows INV/BUF chains upstream to the representative fault.
pub fn collapse(n: &Netlist, mut f: Fault) -> Fault {
    loop {
        match n.kind(f.net) {
            GateKind::Buf => {
                f.net = n.fanin(f.net)[0];
            }
            GateKind::Inv => {
                f.net = n.fanin(f.net)[0];
                f.stuck = match f.stuck {
                    StuckAt::Zero => StuckAt::One,
                    StuckAt::One => StuckAt::Zero,
                };
            }
            _ => return f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::NetlistBuilder;

    #[test]
    fn list_covers_every_gate_both_polarities() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("bb");
        b.gate(GateKind::Nand, "g", &["a", "bb"]);
        b.output("o", "g");
        let n = b.finish().unwrap();
        let list = fault_list(&n);
        // a, bb, g: 3 sites x 2 polarities, no collapsible chains.
        assert_eq!(list.len(), 6);
    }

    #[test]
    fn inverter_chain_collapses_with_polarity_flip() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate(GateKind::Inv, "i1", &["a"]);
        b.gate(GateKind::Buf, "b1", &["i1"]);
        b.output("o", "b1");
        let n = b.finish().unwrap();
        let a = n.find("a").unwrap();
        let list = fault_list(&n);
        // every fault collapses onto `a`: exactly 2 representatives.
        assert_eq!(list.len(), 2);
        assert!(list.iter().all(|f| f.net == a));
        // polarity: b1/SA0 == i1/SA0 == a/SA1
        let b1 = n.find("b1").unwrap();
        let rep = collapse(&n, Fault::new(b1, StuckAt::Zero));
        assert_eq!(rep, Fault::new(a, StuckAt::One));
    }

    #[test]
    fn ff_outputs_are_not_fault_sites() {
        let mut b = NetlistBuilder::new("t");
        b.input("d");
        b.dff("q", "d");
        b.output("o", "q");
        let n = b.finish().unwrap();
        let q = n.find("q").unwrap();
        assert!(fault_list(&n).iter().all(|f| f.net != q));
    }

    #[test]
    fn display_is_compact() {
        let f = Fault::new(GateId::from_index(3), StuckAt::One);
        assert_eq!(f.to_string(), "g3/SA1");
    }
}
