//! Static test-set compaction.
//!
//! PODEM cubes are mostly don't-care; two cubes whose specified bits
//! never conflict can be merged into one pattern, shrinking test time on
//! the scan chain (each pattern costs a full shift). This is the classic
//! greedy static compaction pass: sort by specified-bit count, merge each
//! cube into the first compatible survivor.

use crate::view::TestCube;

/// Whether two cubes agree on every commonly-specified input.
pub fn compatible(a: &TestCube, b: &TestCube) -> bool {
    a.assignments().iter().all(|&(net, va)| {
        let vb = b.get(net);
        !va.is_known() || !vb.is_known() || va == vb
    })
}

/// Merges `b` into `a` (union of specified bits; caller checks
/// [`compatible`] first).
pub fn merge(a: &mut TestCube, b: &TestCube) {
    for &(net, v) in b.assignments() {
        if v.is_known() && !a.get(net).is_known() {
            a.set(net, v);
        }
    }
}

/// Greedy static compaction: returns a smaller test set covering the
/// union of the inputs' specified bits. Detection is preserved for any
/// fault detected via the specified bits of a member cube: merging only
/// *adds* specified values, and in the ternary fault model extra known
/// inputs can only sharpen (never flip) an already-known observation.
/// The cross-check against the fault simulator lives in the tests.
///
/// # Example
///
/// ```
/// use tpi_atpg::{compact_tests, TestCube};
/// use tpi_netlist::GateId;
/// use tpi_sim::Trit;
/// let a: TestCube = [(GateId::from_index(0), Trit::One)].into_iter().collect();
/// let b: TestCube = [(GateId::from_index(1), Trit::Zero)].into_iter().collect();
/// let c: TestCube = [(GateId::from_index(0), Trit::Zero)].into_iter().collect();
/// let out = compact_tests(vec![a, b, c]);
/// assert_eq!(out.len(), 2); // a+b merge; c conflicts on input 0
/// ```
pub fn compact_tests(mut cubes: Vec<TestCube>) -> Vec<TestCube> {
    // Most-specified first: dense cubes seed the bins, sparse ones fill.
    cubes.sort_by_key(|c| std::cmp::Reverse(c.specified()));
    let mut out: Vec<TestCube> = Vec::new();
    for cube in cubes {
        match out.iter_mut().find(|s| compatible(s, &cube)) {
            Some(slot) => merge(slot, &cube),
            None => out.push(cube),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::fault_list;
    use crate::generate::generate_tests;
    use crate::sim_fault::FaultSim;
    use crate::view::CombView;
    use tpi_netlist::{GateKind, NetlistBuilder};
    use tpi_sim::Trit;

    fn cube(bits: &[(usize, bool)]) -> TestCube {
        bits.iter().map(|&(i, b)| (tpi_netlist::GateId::from_index(i), Trit::from(b))).collect()
    }

    #[test]
    fn compatibility_is_symmetric_and_respects_conflicts() {
        let a = cube(&[(0, true), (1, false)]);
        let b = cube(&[(1, false), (2, true)]);
        let c = cube(&[(1, true)]);
        assert!(compatible(&a, &b) && compatible(&b, &a));
        assert!(!compatible(&a, &c) && !compatible(&c, &a));
    }

    #[test]
    fn merge_unions_specified_bits() {
        let mut a = cube(&[(0, true)]);
        let b = cube(&[(1, false)]);
        merge(&mut a, &b);
        assert_eq!(a.specified(), 2);
    }

    #[test]
    fn compaction_never_loses_detection() {
        // Generate, compact, re-simulate: the compacted set must detect
        // at least every fault the original set detected.
        let mut b = NetlistBuilder::new("c17ish");
        for i in 1..=5 {
            b.input(format!("i{i}"));
        }
        b.gate(GateKind::Nand, "g1", &["i1", "i3"]);
        b.gate(GateKind::Nand, "g2", &["i3", "i4"]);
        b.gate(GateKind::Nand, "g3", &["i2", "g2"]);
        b.gate(GateKind::Nand, "g4", &["g2", "i5"]);
        b.gate(GateKind::Nand, "g5", &["g1", "g3"]);
        b.gate(GateKind::Nand, "g6", &["g3", "g4"]);
        b.output("o1", "g5");
        b.output("o2", "g6");
        let n = b.finish().unwrap();
        let view = CombView::full_scan(&n);
        let faults = fault_list(&n);
        // Deterministic-only generation for maximum don't-cares.
        let ts = generate_tests(&n, &view, &faults, 0, 0);
        let sim = FaultSim::new(&n, &view);
        let detected = |cubes: &[TestCube]| {
            let mut hit = vec![false; faults.len()];
            for c in cubes {
                for i in sim.detected(c, &faults) {
                    hit[i] = true;
                }
            }
            hit.iter().filter(|&&h| h).count()
        };
        let before = detected(&ts.cubes);
        let compacted = compact_tests(ts.cubes.clone());
        let after = detected(&compacted);
        assert!(compacted.len() <= ts.cubes.len());
        assert!(after >= before, "compaction lost detection: {after} < {before}");
    }

    #[test]
    fn empty_set_stays_empty() {
        assert!(compact_tests(Vec::new()).is_empty());
    }
}
