//! Serial stuck-at fault simulation over a scan-exposed view.

use crate::fault::Fault;
use crate::view::{CombView, TestCube};
use std::collections::{BTreeSet, HashMap, HashSet};
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_sim::{eval_gate, Trit};

/// A cone-bounded serial fault simulator.
///
/// One good-machine evaluation per test cube, then per fault a forward
/// propagation of the faulty difference restricted to the fault's fanout
/// cone, stopping at flip-flops (their D nets are the observation points
/// of the scan-exposed view). Detection requires a *known* good/faulty
/// difference at an observable net — an `X` never detects.
///
/// # Example
///
/// ```
/// use tpi_netlist::{NetlistBuilder, GateKind};
/// use tpi_sim::Trit;
/// use tpi_atpg::{CombView, Fault, FaultSim, StuckAt, TestCube};
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("t");
/// b.input("a");
/// b.input("c");
/// b.gate(GateKind::And, "g", &["a", "c"]);
/// b.output("o", "g");
/// let n = b.finish()?;
/// let view = CombView::full_scan(&n);
/// let sim = FaultSim::new(&n, &view);
/// let a = n.find("a").unwrap();
/// let c = n.find("c").unwrap();
/// let g = n.find("g").unwrap();
/// let cube: TestCube = [(a, Trit::One), (c, Trit::One)].into_iter().collect();
/// let good = sim.good_values(&cube);
/// assert!(sim.detects(&good, Fault::new(g, StuckAt::Zero)));
/// assert!(!sim.detects(&good, Fault::new(g, StuckAt::One)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    n: &'a Netlist,
    order: Vec<GateId>,
    topo_pos: Vec<u32>,
    observe: HashSet<GateId>,
    scanned: HashSet<GateId>,
}

impl<'a> FaultSim<'a> {
    /// Builds a simulator for `n` under `view`.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn new(n: &'a Netlist, view: &'a CombView) -> Self {
        let order = n.topo_order().expect("netlist must be acyclic");
        let mut topo_pos = vec![0u32; n.gate_count()];
        for (i, g) in order.iter().enumerate() {
            topo_pos[g.index()] = i as u32;
        }
        FaultSim {
            n,
            order,
            topo_pos,
            observe: view.observe().iter().copied().collect(),
            scanned: view.scanned().iter().copied().collect(),
        }
    }

    /// Good-machine net values under `cube` (don't-cares stay `X`).
    pub fn good_values(&self, cube: &TestCube) -> Vec<Trit> {
        let mut values = vec![Trit::X; self.n.gate_count()];
        for &g in &self.order {
            let kind = self.n.kind(g);
            values[g.index()] = match kind {
                GateKind::Input => cube.get(g),
                GateKind::Dff => {
                    if self.scanned.contains(&g) {
                        cube.get(g)
                    } else {
                        Trit::X
                    }
                }
                GateKind::Output => values[self.n.fanin(g)[0].index()],
                _ => {
                    let ins: Vec<Trit> =
                        self.n.fanin(g).iter().map(|&f| values[f.index()]).collect();
                    eval_gate(kind, &ins)
                }
            };
        }
        values
    }

    /// Whether the pattern behind `good` detects `fault`: the faulty
    /// difference reaches an observable net with both machines known.
    pub fn detects(&self, good: &[Trit], fault: Fault) -> bool {
        let site = fault.net;
        // Activation: the good machine must drive the opposite value.
        if good[site.index()] != fault.stuck.activation() {
            return false;
        }
        // Faulty overlay, propagated through the fanout cone.
        let mut faulty: HashMap<GateId, Trit> = HashMap::new();
        faulty.insert(site, fault.stuck.value());
        if self.observe.contains(&site) {
            return true; // directly observable difference
        }
        let mut work: BTreeSet<(u32, GateId)> = BTreeSet::new();
        let push_sinks = |work: &mut BTreeSet<(u32, GateId)>, g: GateId| {
            for &(sink, _) in self.n.fanout(g) {
                if self.n.kind(sink).is_combinational() {
                    work.insert((self.topo_pos[sink.index()], sink));
                }
            }
        };
        push_sinks(&mut work, site);
        while let Some((_, g)) = work.pop_first() {
            let ins: Vec<Trit> = self
                .n
                .fanin(g)
                .iter()
                .map(|&f| faulty.get(&f).copied().unwrap_or(good[f.index()]))
                .collect();
            let fv = eval_gate(self.n.kind(g), &ins);
            if fv == good[g.index()] {
                continue; // difference masked here
            }
            faulty.insert(g, fv);
            if self.observe.contains(&g) && fv.is_known() && good[g.index()].is_known() {
                return true;
            }
            push_sinks(&mut work, g);
        }
        false
    }

    /// Simulates `cube` against `faults`, returning the detected subset's
    /// indices (for fault dropping).
    pub fn detected(&self, cube: &TestCube, faults: &[Fault]) -> Vec<usize> {
        let good = self.good_values(cube);
        faults.iter().enumerate().filter(|(_, &f)| self.detects(&good, f)).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StuckAt;
    use tpi_netlist::NetlistBuilder;

    /// a AND b -> g ; g observed at a PO and at a FF D.
    fn and_circuit() -> (Netlist, GateId, GateId, GateId) {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("c");
        b.gate(GateKind::And, "g", &["a", "c"]);
        b.dff("q", "g");
        b.output("o", "g");
        let n = b.finish().unwrap();
        let (a, c, g) = (n.find("a").unwrap(), n.find("c").unwrap(), n.find("g").unwrap());
        (n, a, c, g)
    }

    #[test]
    fn activation_is_required() {
        let (n, a, c, g) = and_circuit();
        let view = CombView::full_scan(&n);
        let sim = FaultSim::new(&n, &view);
        // a=0 gives g=0: SA0 at g cannot be excited.
        let cube: TestCube = [(a, Trit::Zero), (c, Trit::One)].into_iter().collect();
        let good = sim.good_values(&cube);
        assert!(!sim.detects(&good, Fault::new(g, StuckAt::Zero)));
        assert!(sim.detects(&good, Fault::new(g, StuckAt::One)));
    }

    #[test]
    fn propagation_requires_sensitized_path() {
        // fault on `a` with c = 0: the AND masks the difference.
        let (n, a, c, _g) = and_circuit();
        let view = CombView::full_scan(&n);
        let sim = FaultSim::new(&n, &view);
        let cube: TestCube = [(a, Trit::One), (c, Trit::Zero)].into_iter().collect();
        let good = sim.good_values(&cube);
        assert!(!sim.detects(&good, Fault::new(a, StuckAt::Zero)));
        // with c = 1 the path is open.
        let cube: TestCube = [(a, Trit::One), (c, Trit::One)].into_iter().collect();
        let good = sim.good_values(&cube);
        assert!(sim.detects(&good, Fault::new(a, StuckAt::Zero)));
    }

    #[test]
    fn x_at_observation_never_detects() {
        let (n, a, _c, g) = and_circuit();
        let view = CombView::full_scan(&n);
        let sim = FaultSim::new(&n, &view);
        // c unassigned: good g is X, no detection possible.
        let cube: TestCube = [(a, Trit::One)].into_iter().collect();
        let good = sim.good_values(&cube);
        assert!(!sim.detects(&good, Fault::new(g, StuckAt::Zero)));
    }

    #[test]
    fn unscanned_state_is_uncontrollable() {
        // q (FF) feeds the AND: without scan, the AND side is X and the
        // input fault cannot be propagated.
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("d");
        b.dff("q", "d");
        b.gate(GateKind::And, "g", &["a", "q"]);
        b.output("o", "g");
        let n = b.finish().unwrap();
        let a = n.find("a").unwrap();
        let q = n.find("q").unwrap();
        let full = CombView::full_scan(&n);
        let none = CombView::unscanned(&n);
        let f = Fault::new(a, StuckAt::Zero);
        // Full scan: set q = 1, a = 1 -> detected.
        let sim = FaultSim::new(&n, &full);
        let cube: TestCube = [(a, Trit::One), (q, Trit::One)].into_iter().collect();
        assert!(sim.detects(&sim.good_values(&cube), f));
        // No scan: q is X, not detectable by any PI-only cube.
        let sim = FaultSim::new(&n, &none);
        let cube: TestCube = [(a, Trit::One)].into_iter().collect();
        assert!(!sim.detects(&sim.good_values(&cube), f));
    }

    #[test]
    fn detected_returns_indices_for_dropping() {
        let (n, a, c, g) = and_circuit();
        let view = CombView::full_scan(&n);
        let sim = FaultSim::new(&n, &view);
        let faults = vec![
            Fault::new(g, StuckAt::Zero),
            Fault::new(g, StuckAt::One),
            Fault::new(a, StuckAt::Zero),
        ];
        let cube: TestCube = [(a, Trit::One), (c, Trit::One)].into_iter().collect();
        let hit = sim.detected(&cube, &faults);
        assert_eq!(hit, vec![0, 2]);
    }
}
