//! `tpi-netd`: serve a [`tpi_serve::JobService`] over TCP.
//!
//! ```text
//! tpi-netd [--addr HOST:PORT] [--addr-file PATH] [--threads N]
//!          [--max-connections N] [--max-inflight N] [--cache-dir DIR]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (an ephemeral port); the bound
//! address is printed to stdout and, with `--addr-file`, written to a
//! file so scripts can discover the port without parsing logs.
//! `--max-connections` caps concurrent `tpi-net/v1` connections;
//! `--max-inflight` caps admitted-but-unfinished v2 requests (past it
//! the server answers per-request `Busy`). The process exits after a
//! client sends the `Shutdown` verb (`tpi-cli --shutdown`), draining
//! in-flight jobs first.

use std::process::exit;
use std::sync::Arc;
use tpi_net::cli::{ArgCursor, Cli, NetCliOpts};
use tpi_net::{write_addr_file, NetServer, ServerConfig};
use tpi_serve::{JobService, ServiceConfig};

fn main() {
    let cli = Cli::parse();
    let mut net = ServerConfig::default();
    let mut opts = NetCliOpts::default();
    let mut cache_dir: Option<String> = None;

    let mut args = ArgCursor::new(cli.args);
    while let Some(arg) = args.next_arg() {
        if opts.try_flag(&arg, &mut args) {
            continue;
        }
        match arg.as_str() {
            "--max-connections" => {
                net.max_connections = args.parsed_value("--max-connections", "a positive integer");
                if net.max_connections == 0 {
                    eprintln!("--max-connections must be at least 1");
                    exit(2);
                }
            }
            "--max-inflight" => {
                net.max_inflight = args.parsed_value("--max-inflight", "a positive integer");
                if net.max_inflight == 0 {
                    eprintln!("--max-inflight must be at least 1");
                    exit(2);
                }
            }
            "--cache-dir" => cache_dir = Some(args.value("--cache-dir")),
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: tpi-netd [--addr HOST:PORT] [--addr-file PATH] [--threads N] \
                     [--max-connections N] [--max-inflight N] [--cache-dir DIR]"
                );
                exit(2);
            }
        }
    }
    if let Some(addr) = opts.addr.clone() {
        net.addr = addr;
    }
    let addr_file = opts.addr_file.clone();

    let service = Arc::new(JobService::new(ServiceConfig {
        threads: cli.threads,
        cache_dir: cache_dir.map(Into::into),
        ..ServiceConfig::default()
    }));

    let server = match NetServer::bind(net, Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tpi-netd: bind failed: {e}");
            exit(1);
        }
    };
    let addr = server.local_addr();
    println!("tpi-netd listening on {addr}");
    if let Some(path) = addr_file {
        // Atomic publish (tmp + fsync + rename): a script polling the
        // file sees a complete address or nothing, never a torn write.
        if let Err(e) = write_addr_file(&path, addr) {
            eprintln!("tpi-netd: cannot write {path:?}: {e}");
            exit(1);
        }
    }

    if let Err(e) = server.serve() {
        eprintln!("tpi-netd: serve failed: {e}");
        exit(1);
    }
    // `serve` returning means the connection threads (the only other
    // Arc holders) are joined, so this unwrap succeeds and the service
    // drains its worker pool for the closing numbers.
    match Arc::try_unwrap(service) {
        Ok(service) => {
            let m = service.shutdown();
            println!(
                "tpi-netd drained and stopped ({} submitted, {} completed)",
                m.submitted, m.completed
            );
        }
        Err(_) => println!("tpi-netd drained and stopped"),
    }
}
