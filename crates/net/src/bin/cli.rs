//! `tpi-cli`: submit jobs to a running `tpi-netd`.
//!
//! ```text
//! tpi-cli --addr HOST:PORT [--flow full-scan|cb|td-cb|tptime]
//!         [--deadline-ms N] [--retry-budget-ms N] [--retries N] FILE.blif
//! tpi-cli --addr HOST:PORT --metrics | --ping | --shutdown
//! ```
//!
//! `--retries N` hard-caps connect/busy retries regardless of the time
//! budget; `--retries 0` makes the first refusal final, which is what
//! scripts probing for a live server want. Every action runs over a
//! single-use `tpi-net/v2` session ([`Connection`]); the shared flags
//! are parsed by [`NetCliOpts`], so they spell the same here as in
//! `tpi-batch` and `tpi-gatewayd`.
//!
//! On a completed job, the report's `tpi-serve/v1` JSON payload is
//! printed to stdout exactly as the service produced it (the bytes are
//! never re-serialized on the way through), so the output diffs clean
//! against an in-process run. Failures print the status and
//! diagnostics to stderr and exit 1.

use std::process::exit;
use tpi_core::PartialScanMethod;
use tpi_net::cli::{ArgCursor, Cli, NetCliOpts};
use tpi_net::{ClientError, Connection, WireRequest};
use tpi_serve::JobStatus;

enum Action {
    Submit,
    Metrics,
    Ping,
    Shutdown,
}

fn main() {
    let cli = Cli::parse();
    if cli.threads != 1 {
        eprintln!("--threads is a server-side knob; pass it to tpi-netd");
        exit(2);
    }
    let mut opts = NetCliOpts::default();
    let mut flow = "full-scan".to_string();
    let mut action = Action::Submit;
    let mut blif_path: Option<String> = None;

    let mut args = ArgCursor::new(cli.args);
    while let Some(arg) = args.next_arg() {
        if opts.try_flag(&arg, &mut args) {
            continue;
        }
        match arg.as_str() {
            "--flow" => flow = args.value("--flow"),
            "--metrics" => action = Action::Metrics,
            "--ping" => action = Action::Ping,
            "--shutdown" => action = Action::Shutdown,
            other if !other.starts_with('-') && blif_path.is_none() => {
                blif_path = Some(arg);
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: tpi-cli --addr HOST:PORT [--flow NAME] [--deadline-ms N] \
                     [--retries N] FILE.blif\n\
                     \u{20}      tpi-cli --addr HOST:PORT --metrics | --ping | --shutdown"
                );
                exit(2);
            }
        }
    }

    let addr = opts.require_addr("tpi-netd prints its address on startup");
    let deadline = opts.deadline;
    let conn = match Connection::open_with(&addr, opts.client_config()) {
        Ok(c) => c,
        Err(e) => fail(&addr, &e),
    };

    match action {
        Action::Ping => match conn.ping() {
            Ok(()) => println!("pong"),
            Err(e) => fail(&addr, &e),
        },
        Action::Shutdown => match conn.shutdown_server() {
            Ok(()) => println!("shutdown acknowledged"),
            Err(e) => fail(&addr, &e),
        },
        Action::Metrics => match conn.metrics_json() {
            Ok(json) => println!("{json}"),
            Err(e) => fail(&addr, &e),
        },
        Action::Submit => {
            let Some(path) = blif_path else {
                eprintln!("a BLIF file argument is required for submission");
                exit(2);
            };
            let blif = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path:?}: {e}");
                exit(1);
            });
            let mut request = match flow.as_str() {
                "full-scan" => WireRequest::full_scan(blif),
                "cb" => WireRequest::partial(blif, PartialScanMethod::Cb),
                "td-cb" => WireRequest::partial(blif, PartialScanMethod::TdCb),
                "tptime" => WireRequest::partial(blif, PartialScanMethod::TpTime),
                other => {
                    eprintln!("--flow: expected full-scan|cb|td-cb|tptime, got {other:?}");
                    exit(2);
                }
            };
            if let Some(d) = deadline {
                request = request.with_deadline(d);
            }
            let report = match conn.submit(&request).and_then(|ticket| conn.wait(ticket)) {
                Ok(r) => r,
                Err(e) => fail(&addr, &e),
            };
            match (&report.status, &report.payload) {
                (JobStatus::Completed, Some(payload)) => println!("{payload}"),
                (status, _) => {
                    eprintln!("job {} {}: {}", report.id, report.flow, status.label());
                    for d in &report.diagnostics {
                        eprintln!("  {d}");
                    }
                    exit(1);
                }
            }
        }
    }
}

/// Prints the error and exits 1. Connection failures — by far the most
/// common scripting mistake — get a typed, actionable line instead of
/// the raw error chain.
fn fail(addr: &str, e: &ClientError) -> ! {
    match e {
        ClientError::Connect { attempts, last }
            if last.kind() == std::io::ErrorKind::ConnectionRefused =>
        {
            eprintln!(
                "tpi-cli: connection refused at {addr} after {attempts} attempt(s) \
                 (is tpi-netd running there?)"
            );
        }
        ClientError::Connect { attempts, last } => {
            eprintln!("tpi-cli: cannot connect to {addr} after {attempts} attempt(s): {last}");
        }
        other => eprintln!("tpi-cli: {other}"),
    }
    exit(1)
}
