//! Payload encodings for the `tpi-net/v1` verbs.
//!
//! Payloads are flat little-endian binary, decoded with explicit bounds
//! checks — no `serde`, no reflection, no panics. Strings are
//! length-prefixed UTF-8. The job *result* itself rides through
//! [`WireReport::payload`] verbatim: the server copies the
//! `tpi-serve/v1` JSON bytes straight from the [`tpi_serve::JobReport`]
//! into the frame, so the loopback round trip is byte-identical to an
//! in-process run by construction, not by re-serialization.

use std::fmt;
use std::time::Duration;
use tpi_core::tpgreed::{GainModel, GainUpdate};
use tpi_core::{FlowOptions, PartialScanMethod, TpGreedConfig};
use tpi_serve::{CacheSource, FlowKind, JobReport, JobSpec, JobStatus, NetlistSource};

/// Every way a payload can fail to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the field being read.
    Truncated {
        /// Field being decoded when the bytes ran out.
        field: &'static str,
    },
    /// An enum tag byte had no meaning.
    BadTag {
        /// Field carrying the tag.
        field: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not UTF-8.
    BadUtf8 {
        /// Field carrying the string.
        field: &'static str,
    },
    /// Decoding finished with bytes left over (version-skew canary).
    TrailingBytes {
        /// How many bytes remained.
        extra: usize,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { field } => write!(f, "payload truncated reading {field}"),
            ProtoError::BadTag { field, tag } => write!(f, "bad {field} tag {tag:#04x}"),
            ProtoError::BadUtf8 { field } => write!(f, "{field} is not valid UTF-8"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected byte(s) after the payload")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------
// Little-endian reader/writer primitives
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ProtoError::Truncated { field }),
        }
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtoError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2, field)?.try_into().expect("length checked")))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().expect("length checked")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().expect("length checked")))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    fn string(&mut self, field: &'static str) -> Result<String, ProtoError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8 { field })
    }

    fn finish(self) -> Result<(), ProtoError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes { extra })
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u32::try_from(s.len()).expect("string fits u32").to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Submit request
// ---------------------------------------------------------------------

/// A job submission as it travels over the wire: the flow + its
/// result-relevant config, an optional deadline, and the BLIF text.
///
/// The `threads` knob deliberately does **not** ride along — worker
/// sizing belongs to the server (payloads are byte-identical at every
/// setting, so the client cannot observe the difference anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// The flow to run.
    pub flow: FlowKind,
    /// Deadline the server arms at submission (queue time counts),
    /// exactly like [`tpi_core::FlowOptions::with_deadline`].
    pub deadline: Option<Duration>,
    /// The circuit, as BLIF text (parsed on a server worker, so a
    /// malformed file fails that job, not the connection).
    pub blif: String,
    /// Sibling backend addresses the serving node may
    /// [`crate::frame::Verb::PeerFetch`] a cached payload from before
    /// recomputing. Empty for direct submissions; a gateway fills it
    /// when forwarding so a ring rebalance turns into one cheap peer
    /// round-trip instead of a cold flow run.
    pub peers: Vec<String>,
}

impl WireRequest {
    /// A full-scan request with the default TPGREED config.
    pub fn full_scan(blif: impl Into<String>) -> Self {
        WireRequest {
            flow: FlowKind::FullScan(TpGreedConfig::default()),
            deadline: None,
            blif: blif.into(),
            peers: Vec::new(),
        }
    }

    /// A partial-scan request.
    pub fn partial(blif: impl Into<String>, method: PartialScanMethod) -> Self {
        WireRequest {
            flow: FlowKind::Partial(method),
            deadline: None,
            blif: blif.into(),
            peers: Vec::new(),
        }
    }

    /// Sets the wire deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replaces the sibling-backend addresses for peer fetching.
    pub fn with_peers(mut self, peers: Vec<String>) -> Self {
        self.peers = peers;
        self
    }

    /// Renders the Submit payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.blif.len());
        match &self.flow {
            FlowKind::FullScan(cfg) => {
                out.push(0);
                out.extend_from_slice(&(cfg.k_bound as u64).to_le_bytes());
                out.extend_from_slice(&cfg.gain_bound.to_bits().to_le_bytes());
                out.push(match cfg.gain_update {
                    GainUpdate::Full => 0,
                    GainUpdate::Incremental => 1,
                });
                out.extend_from_slice(&(cfg.max_paths as u64).to_le_bytes());
                out.push(match cfg.gain_model {
                    GainModel::PathCount => 0,
                    GainModel::Scoap => 1,
                });
            }
            FlowKind::Partial(PartialScanMethod::Cb) => out.push(1),
            FlowKind::Partial(PartialScanMethod::TdCb) => out.push(2),
            FlowKind::Partial(PartialScanMethod::TpTime) => out.push(3),
        }
        match self.deadline {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(
                    &(d.as_millis().min(u128::from(u64::MAX)) as u64).to_le_bytes(),
                );
            }
            None => out.push(0),
        }
        put_string(&mut out, &self.blif);
        out.extend_from_slice(
            &u32::try_from(self.peers.len()).expect("peer count fits u32").to_le_bytes(),
        );
        for p in &self.peers {
            put_string(&mut out, p);
        }
        out
    }

    /// Parses a Submit payload.
    pub fn decode(bytes: &[u8]) -> Result<WireRequest, ProtoError> {
        let mut r = Reader::new(bytes);
        let flow = match r.u8("flow")? {
            0 => {
                let k_bound = r.u64("k_bound")? as usize;
                let gain_bound = r.f64("gain_bound")?;
                let gain_update = match r.u8("gain_update")? {
                    0 => GainUpdate::Full,
                    1 => GainUpdate::Incremental,
                    tag => return Err(ProtoError::BadTag { field: "gain_update", tag }),
                };
                let max_paths = r.u64("max_paths")? as usize;
                let gain_model = match r.u8("gain_model")? {
                    0 => GainModel::PathCount,
                    1 => GainModel::Scoap,
                    tag => return Err(ProtoError::BadTag { field: "gain_model", tag }),
                };
                FlowKind::FullScan(TpGreedConfig {
                    k_bound,
                    gain_bound,
                    gain_update,
                    max_paths,
                    gain_model,
                    ..TpGreedConfig::default()
                })
            }
            1 => FlowKind::Partial(PartialScanMethod::Cb),
            2 => FlowKind::Partial(PartialScanMethod::TdCb),
            3 => FlowKind::Partial(PartialScanMethod::TpTime),
            tag => return Err(ProtoError::BadTag { field: "flow", tag }),
        };
        let deadline = match r.u8("deadline flag")? {
            0 => None,
            1 => Some(Duration::from_millis(r.u64("deadline_ms")?)),
            tag => return Err(ProtoError::BadTag { field: "deadline flag", tag }),
        };
        let blif = r.string("blif")?;
        let n_peers = r.u32("peer count")? as usize;
        let mut peers = Vec::new();
        for _ in 0..n_peers {
            peers.push(r.string("peer address")?);
        }
        r.finish()?;
        Ok(WireRequest { flow, deadline, blif, peers })
    }

    /// Builds the server-side [`JobSpec`]: BLIF source, the decoded
    /// flow, and the deadline propagated onto the job's
    /// [`FlowOptions`].
    pub fn to_spec(&self) -> JobSpec {
        let mut options = FlowOptions::new();
        if let Some(d) = self.deadline {
            options = options.with_deadline(d);
        }
        JobSpec { source: NetlistSource::Blif(self.blif.clone()), flow: self.flow.clone(), options }
    }
}

// ---------------------------------------------------------------------
// Report response
// ---------------------------------------------------------------------

/// A [`JobReport`] flattened for the wire. The deterministic result
/// JSON crosses as raw bytes in [`WireReport::payload`]; diagnostics
/// cross as their rendered text lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Server-side job id (submission order on that server).
    pub id: u64,
    /// Flow label (`full-scan`, `cb`, `td-cb`, `tptime`).
    pub flow: String,
    /// Terminal state (message preserved for failures).
    pub status: JobStatus,
    /// Content-addressed cache key, when the netlist parsed.
    pub key: Option<u64>,
    /// Whether the result passed independent verification.
    pub verified: bool,
    /// Where the payload came from on the server.
    pub cache: CacheSource,
    /// Server-side wall clock, µs (dequeue to finish).
    pub wall_micros: u64,
    /// The deterministic `tpi-serve/v1` JSON, byte-for-byte as the
    /// in-process service produced it.
    pub payload: Option<String>,
    /// Rendered diagnostic lines (pre-flight lint + verifier findings).
    pub diagnostics: Vec<String>,
}

impl WireReport {
    /// Flattens a service report for the wire.
    pub fn from_report(r: &JobReport) -> Self {
        WireReport {
            id: r.id,
            flow: r.flow.to_string(),
            status: r.status.clone(),
            key: r.key.map(|k| k.0),
            verified: r.verified,
            cache: r.cache,
            wall_micros: r.wall.as_micros().min(u128::from(u64::MAX)) as u64,
            payload: r.payload.as_deref().map(str::to_string),
            diagnostics: r.diagnostics.iter().map(|d| d.render_text()).collect(),
        }
    }

    /// Renders the Report payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.payload.as_deref().map_or(0, str::len)
                + self.diagnostics.iter().map(|d| d.len() + 4).sum::<usize>(),
        );
        out.extend_from_slice(&self.id.to_le_bytes());
        put_string(&mut out, &self.flow);
        match &self.status {
            JobStatus::Completed => {
                out.push(0);
                put_string(&mut out, "");
            }
            JobStatus::TimedOut => {
                out.push(1);
                put_string(&mut out, "");
            }
            JobStatus::Canceled => {
                out.push(2);
                put_string(&mut out, "");
            }
            JobStatus::Failed(msg) => {
                out.push(3);
                put_string(&mut out, msg);
            }
        }
        match self.key {
            Some(k) => {
                out.push(1);
                out.extend_from_slice(&k.to_le_bytes());
            }
            None => out.push(0),
        }
        out.push(u8::from(self.verified));
        out.push(match self.cache {
            CacheSource::Cold => 0,
            CacheSource::Memory => 1,
            CacheSource::Disk => 2,
        });
        out.extend_from_slice(&self.wall_micros.to_le_bytes());
        match &self.payload {
            Some(p) => {
                out.push(1);
                put_string(&mut out, p);
            }
            None => out.push(0),
        }
        out.extend_from_slice(
            &u32::try_from(self.diagnostics.len()).expect("diag count fits u32").to_le_bytes(),
        );
        for d in &self.diagnostics {
            put_string(&mut out, d);
        }
        out
    }

    /// Parses a Report payload.
    pub fn decode(bytes: &[u8]) -> Result<WireReport, ProtoError> {
        let mut r = Reader::new(bytes);
        let id = r.u64("id")?;
        let flow = r.string("flow")?;
        let status_tag = r.u8("status")?;
        let msg = r.string("status message")?;
        let status = match status_tag {
            0 => JobStatus::Completed,
            1 => JobStatus::TimedOut,
            2 => JobStatus::Canceled,
            3 => JobStatus::Failed(msg),
            tag => return Err(ProtoError::BadTag { field: "status", tag }),
        };
        let key = match r.u8("key flag")? {
            0 => None,
            1 => Some(r.u64("key")?),
            tag => return Err(ProtoError::BadTag { field: "key flag", tag }),
        };
        let verified = match r.u8("verified")? {
            0 => false,
            1 => true,
            tag => return Err(ProtoError::BadTag { field: "verified", tag }),
        };
        let cache = match r.u8("cache")? {
            0 => CacheSource::Cold,
            1 => CacheSource::Memory,
            2 => CacheSource::Disk,
            tag => return Err(ProtoError::BadTag { field: "cache", tag }),
        };
        let wall_micros = r.u64("wall_micros")?;
        let payload = match r.u8("payload flag")? {
            0 => None,
            1 => Some(r.string("payload")?),
            tag => return Err(ProtoError::BadTag { field: "payload flag", tag }),
        };
        let n_diags = r.u32("diagnostic count")? as usize;
        let mut diagnostics = Vec::new();
        for _ in 0..n_diags {
            diagnostics.push(r.string("diagnostic")?);
        }
        r.finish()?;
        Ok(WireReport { id, flow, status, key, verified, cache, wall_micros, payload, diagnostics })
    }
}

// ---------------------------------------------------------------------
// Peer fetch (cache lookup by key)
// ---------------------------------------------------------------------

/// The payload of a [`Verb::PeerFetch`](crate::frame::Verb::PeerFetch)
/// request: a content-addressed cache key, exactly as
/// [`tpi_serve::cache_key`] computed it. No netlist rides along — the
/// key *is* the job's identity, which is what makes peer fetching
/// cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLookup {
    /// The [`tpi_serve::CacheKey`] value being looked up.
    pub key: u64,
}

impl CacheLookup {
    /// Renders the PeerFetch payload.
    pub fn encode(&self) -> Vec<u8> {
        self.key.to_le_bytes().to_vec()
    }

    /// Parses a PeerFetch payload.
    pub fn decode(bytes: &[u8]) -> Result<CacheLookup, ProtoError> {
        let mut r = Reader::new(bytes);
        let key = r.u64("cache key")?;
        r.finish()?;
        Ok(CacheLookup { key })
    }
}

/// The payload of a
/// [`Verb::CachePayload`](crate::frame::Verb::CachePayload) response: a
/// hit carries the `tpi-serve/v1` payload bytes verbatim, a miss is
/// `None` — a perfectly valid answer, not an error (the asker simply
/// computes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheAnswer {
    /// The cached payload, byte-for-byte as the owning service stored
    /// it; `None` on a miss.
    pub payload: Option<String>,
}

impl CacheAnswer {
    /// Renders the CachePayload payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.payload.as_deref().map_or(0, str::len));
        match &self.payload {
            Some(p) => {
                out.push(1);
                put_string(&mut out, p);
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a CachePayload payload.
    pub fn decode(bytes: &[u8]) -> Result<CacheAnswer, ProtoError> {
        let mut r = Reader::new(bytes);
        let payload = match r.u8("hit flag")? {
            0 => None,
            1 => Some(r.string("cached payload")?),
            tag => return Err(ProtoError::BadTag { field: "hit flag", tag }),
        };
        r.finish()?;
        Ok(CacheAnswer { payload })
    }
}

// ---------------------------------------------------------------------
// Streaming batch (v2): SubmitMany / ReportOne
// ---------------------------------------------------------------------

/// The payload of a [`Verb::SubmitMany`](crate::frame::Verb::SubmitMany)
/// request (v2 only): a batch of jobs submitted in one frame. The
/// server answers with one [`ReportOne`] frame per job — in
/// *completion* order, not submission order — all carrying the batch
/// frame's request ID; the embedded index is what maps a report back
/// to its request.
///
/// Admission is all-or-nothing: a server that cannot take the whole
/// batch under its in-flight cap answers a single `Busy` frame for the
/// batch's request ID (partial admission would make "which jobs ran?"
/// ambiguous under retry).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitMany {
    /// The jobs, in batch-index order.
    pub requests: Vec<WireRequest>,
}

impl SubmitMany {
    /// Renders the SubmitMany payload: a count, then each request as a
    /// length-prefixed [`WireRequest`] encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(
            &u32::try_from(self.requests.len()).expect("batch count fits u32").to_le_bytes(),
        );
        for req in &self.requests {
            let bytes = req.encode();
            out.extend_from_slice(
                &u32::try_from(bytes.len()).expect("request fits u32").to_le_bytes(),
            );
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Parses a SubmitMany payload.
    pub fn decode(bytes: &[u8]) -> Result<SubmitMany, ProtoError> {
        let mut r = Reader::new(bytes);
        let count = r.u32("batch count")? as usize;
        let mut requests = Vec::new();
        for _ in 0..count {
            let len = r.u32("request length")? as usize;
            let body = r.take(len, "batched request")?;
            requests.push(WireRequest::decode(body)?);
        }
        r.finish()?;
        Ok(SubmitMany { requests })
    }
}

/// The payload of a [`Verb::ReportOne`](crate::frame::Verb::ReportOne)
/// response (v2 only): one finished job out of a [`SubmitMany`] batch,
/// tagged with the batch index it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportOne {
    /// Index into the batch's [`SubmitMany::requests`].
    pub index: u32,
    /// The job's report, exactly as a standalone Submit would carry it.
    pub report: WireReport,
}

impl ReportOne {
    /// Renders the ReportOne payload.
    pub fn encode(&self) -> Vec<u8> {
        let report = self.report.encode();
        let mut out = Vec::with_capacity(4 + report.len());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&report);
        out
    }

    /// Parses a ReportOne payload.
    pub fn decode(bytes: &[u8]) -> Result<ReportOne, ProtoError> {
        let mut r = Reader::new(bytes);
        let index = r.u32("batch index")?;
        let rest = r.take(bytes.len() - 4, "batched report")?;
        r.finish()?;
        Ok(ReportOne { index, report: WireReport::decode(rest)? })
    }
}

// ---------------------------------------------------------------------
// Error response
// ---------------------------------------------------------------------

/// Machine-readable class of a server-reported failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad magic/version/length/trailer).
    MalformedFrame = 1,
    /// The verb byte was unknown.
    UnknownVerb = 2,
    /// The frame was fine but its payload did not decode.
    BadRequest = 3,
    /// A response verb arrived where a request was expected.
    UnexpectedVerb = 4,
    /// The server is shutting down and no longer takes requests.
    ShuttingDown = 5,
    /// Anything else (message carries the detail).
    Internal = 6,
}

impl ErrorCode {
    /// Decodes a wire code (unknown codes map to `Internal` rather than
    /// failing — an error response must never itself error).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::MalformedFrame,
            2 => ErrorCode::UnknownVerb,
            3 => ErrorCode::BadRequest,
            4 => ErrorCode::UnexpectedVerb,
            5 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Internal,
        }
    }

    /// Short label for logs.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnexpectedVerb => "unexpected-verb",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// The structured payload of an [`Verb::Error`](crate::frame::Verb::Error) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorInfo {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorInfo {
    /// A new error payload.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorInfo { code, message: message.into() }
    }

    /// Renders the Error payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.message.len());
        out.extend_from_slice(&(self.code as u16).to_le_bytes());
        put_string(&mut out, &self.message);
        out
    }

    /// Parses an Error payload.
    pub fn decode(bytes: &[u8]) -> Result<ErrorInfo, ProtoError> {
        let mut r = Reader::new(bytes);
        let code = ErrorCode::from_u16(r.u16("error code")?);
        let message = r.string("error message")?;
        r.finish()?;
        Ok(ErrorInfo { code, message })
    }
}

impl fmt::Display for ErrorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_every_flow() {
        let flows = [
            FlowKind::FullScan(TpGreedConfig {
                k_bound: 7,
                gain_bound: 0.25,
                ..Default::default()
            }),
            FlowKind::Partial(PartialScanMethod::Cb),
            FlowKind::Partial(PartialScanMethod::TdCb),
            FlowKind::Partial(PartialScanMethod::TpTime),
        ];
        for flow in flows {
            let req = WireRequest {
                flow,
                deadline: Some(Duration::from_millis(1234)),
                blif: ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n".into(),
                peers: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
            };
            let back = WireRequest::decode(&req.encode()).unwrap();
            assert_eq!(back.blif, req.blif);
            assert_eq!(back.deadline, req.deadline);
            assert_eq!(back.peers, req.peers);
            assert_eq!(back.to_spec().flow.label(), req.flow.label());
        }
    }

    #[test]
    fn request_without_deadline_roundtrips() {
        let req = WireRequest::partial(".model x\n.end\n", PartialScanMethod::TpTime);
        let back = WireRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert!(back.to_spec().options.deadline().is_none());
    }

    #[test]
    fn full_scan_config_survives_the_wire() {
        let cfg = TpGreedConfig {
            k_bound: 3,
            gain_bound: 1.5,
            gain_update: GainUpdate::Incremental,
            max_paths: 999,
            gain_model: GainModel::Scoap,
            threads: 8, // must NOT survive: worker sizing is the server's
            ..TpGreedConfig::default()
        };
        let req = WireRequest {
            flow: FlowKind::FullScan(cfg),
            deadline: None,
            blif: String::new(),
            peers: Vec::new(),
        };
        let back = WireRequest::decode(&req.encode()).unwrap();
        match back.flow {
            FlowKind::FullScan(c) => {
                assert_eq!(c.k_bound, 3);
                assert_eq!(c.gain_bound, 1.5);
                assert_eq!(c.gain_update, GainUpdate::Incremental);
                assert_eq!(c.max_paths, 999);
                assert_eq!(c.gain_model, GainModel::Scoap);
                assert_eq!(c.threads, TpGreedConfig::default().threads);
            }
            _ => panic!("flow kind changed on the wire"),
        }
    }

    #[test]
    fn report_roundtrips_every_status() {
        let statuses = [
            JobStatus::Completed,
            JobStatus::TimedOut,
            JobStatus::Canceled,
            JobStatus::Failed("netlist parse error: line 3".into()),
        ];
        for status in statuses {
            let rep = WireReport {
                id: 42,
                flow: "full-scan".into(),
                status,
                key: Some(0xdead_beef),
                verified: true,
                cache: CacheSource::Memory,
                wall_micros: 1234,
                payload: Some(r#"{"schema":"tpi-serve/v1"}"#.into()),
                diagnostics: vec!["warning: TPI004 ...".into()],
            };
            assert_eq!(WireReport::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn report_with_nothing_optional_roundtrips() {
        let rep = WireReport {
            id: 0,
            flow: "tptime".into(),
            status: JobStatus::TimedOut,
            key: None,
            verified: false,
            cache: CacheSource::Cold,
            wall_micros: 0,
            payload: None,
            diagnostics: Vec::new(),
        };
        assert_eq!(WireReport::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn submit_many_roundtrips_and_preserves_batch_order() {
        let batch = SubmitMany {
            requests: vec![
                WireRequest::full_scan(".model a\n.end\n"),
                WireRequest::partial(".model b\n.end\n", PartialScanMethod::TpTime),
                WireRequest::full_scan(".model c\n.end\n"),
            ],
        };
        let back = SubmitMany::decode(&batch.encode()).unwrap();
        assert_eq!(back.requests.len(), 3);
        assert_eq!(back.requests[0].blif, ".model a\n.end\n");
        assert_eq!(back.requests[1].blif, ".model b\n.end\n");
        assert_eq!(back.requests[2].blif, ".model c\n.end\n");
    }

    #[test]
    fn empty_submit_many_roundtrips() {
        let batch = SubmitMany { requests: Vec::new() };
        assert_eq!(SubmitMany::decode(&batch.encode()).unwrap(), batch);
    }

    #[test]
    fn report_one_roundtrips() {
        let one = ReportOne {
            index: 7,
            report: WireReport {
                id: 9,
                flow: "full-scan".into(),
                status: JobStatus::Completed,
                key: Some(1),
                verified: true,
                cache: CacheSource::Disk,
                wall_micros: 55,
                payload: None,
                diagnostics: vec!["note".into()],
            },
        };
        assert_eq!(ReportOne::decode(&one.encode()).unwrap(), one);
    }

    #[test]
    fn truncated_batch_payloads_decode_to_typed_errors() {
        let batch = SubmitMany { requests: vec![WireRequest::full_scan(".model m\n.end\n")] };
        let good = batch.encode();
        for cut in 0..good.len() {
            assert!(SubmitMany::decode(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
        let one = ReportOne {
            index: 0,
            report: WireReport {
                id: 1,
                flow: "tptime".into(),
                status: JobStatus::TimedOut,
                key: None,
                verified: false,
                cache: CacheSource::Cold,
                wall_micros: 0,
                payload: None,
                diagnostics: Vec::new(),
            },
        };
        let good = one.encode();
        for cut in 0..good.len() {
            assert!(ReportOne::decode(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn truncated_and_tagged_garbage_decode_to_typed_errors() {
        let good = WireRequest::full_scan(".model m\n.end\n").encode();
        for cut in 0..good.len() {
            match WireRequest::decode(&good[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("prefix of length {cut} decoded"),
            }
        }
        let mut bad_tag = good.clone();
        bad_tag[0] = 77;
        assert_eq!(
            WireRequest::decode(&bad_tag),
            Err(ProtoError::BadTag { field: "flow", tag: 77 })
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(WireRequest::decode(&trailing), Err(ProtoError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn error_info_roundtrips_and_tolerates_unknown_codes() {
        let e = ErrorInfo::new(ErrorCode::BadRequest, "payload truncated reading blif");
        assert_eq!(ErrorInfo::decode(&e.encode()).unwrap(), e);
        let mut bytes = e.encode();
        bytes[0..2].copy_from_slice(&999u16.to_le_bytes());
        assert_eq!(ErrorInfo::decode(&bytes).unwrap().code, ErrorCode::Internal);
        assert!(e.to_string().contains("bad-request"));
    }

    #[test]
    fn non_utf8_string_is_a_typed_error() {
        let mut out = Vec::new();
        out.extend_from_slice(&1u64.to_le_bytes()); // id
        out.extend_from_slice(&2u32.to_le_bytes()); // flow length
        out.extend_from_slice(&[0xff, 0xfe]); // not UTF-8
        assert_eq!(WireReport::decode(&out), Err(ProtoError::BadUtf8 { field: "flow" }));
    }

    #[test]
    fn verb_labels_cover_the_protocol_table() {
        use crate::frame::Verb;
        assert_eq!(Verb::Submit.label(), "submit");
        assert_eq!(Verb::MetricsReport.label(), "metrics-report");
        assert_eq!(Verb::PeerFetch.label(), "peer-fetch");
        assert_eq!(Verb::CachePayload.label(), "cache-payload");
    }

    #[test]
    fn cache_lookup_roundtrips_and_rejects_garbage() {
        let l = CacheLookup { key: 0x29b3_c0a6_4a7b_22ef };
        assert_eq!(CacheLookup::decode(&l.encode()).unwrap(), l);
        assert_eq!(
            CacheLookup::decode(&[1, 2, 3]),
            Err(ProtoError::Truncated { field: "cache key" })
        );
        let mut long = l.encode();
        long.push(0);
        assert_eq!(CacheLookup::decode(&long), Err(ProtoError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn cache_answer_roundtrips_hit_and_miss() {
        let hit = CacheAnswer { payload: Some(r#"{"schema":"tpi-serve/v1"}"#.into()) };
        assert_eq!(CacheAnswer::decode(&hit.encode()).unwrap(), hit);
        let miss = CacheAnswer { payload: None };
        assert_eq!(CacheAnswer::decode(&miss.encode()).unwrap(), miss);
        assert_eq!(
            CacheAnswer::decode(&[9]),
            Err(ProtoError::BadTag { field: "hit flag", tag: 9 })
        );
    }

    #[test]
    fn request_peers_survive_the_wire_and_default_empty() {
        let req = WireRequest::full_scan(".model m\n.end\n");
        assert!(req.peers.is_empty());
        let back = WireRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        let with = req.with_peers(vec!["10.0.0.1:4000".into()]);
        let back = WireRequest::decode(&with.encode()).unwrap();
        assert_eq!(back.peers, vec!["10.0.0.1:4000".to_string()]);
    }
}
