//! The network front-end: a poll-based readiness loop wrapping a
//! [`FrameHandler`].
//!
//! Design constraints, in order:
//!
//! * **A bad peer must never take the listener down.** Every malformed
//!   frame becomes a structured [`Verb::Error`] response followed by a
//!   connection close (the stream is desynchronized past the first bad
//!   byte); accept errors are counted and skipped. A v2 request that
//!   *frames* correctly but *decodes* badly is cheaper to survive: the
//!   error answer carries the request ID and the connection stays open,
//!   because nothing about the stream is desynchronized.
//! * **Idle connections cost no threads.** One poll thread owns every
//!   v2 connection: reads are non-blocking, frames are reassembled by
//!   a [`FrameAssembler`], and job execution lands on the `tpi-par`
//!   worker pool via [`FrameHandler::submit_async`] — the poll thread
//!   never blocks on a job. A thousand idle sessions are a thousand
//!   entries in a `poll(2)` set, not a thousand parked threads.
//! * **Backpressure, not queues.** v2 requests are admitted against
//!   [`ServerConfig::max_inflight`]; past the cap a request is answered
//!   with a [`Verb::Busy`] frame carrying its request ID, and the
//!   connection stays open. The client's seeded backoff (see
//!   [`crate::client`]) re-submits the same ID, so overload degrades to
//!   latency instead of memory. v1 connections keep the historical
//!   contract: refusal (a Busy frame, then close) past
//!   [`ServerConfig::max_connections`].
//! * **v1 peers must not notice.** The first five bytes of every
//!   connection are sniffed for the version byte; a v1 peer is handed
//!   to a dedicated blocking thread running the exact v1 request loop,
//!   timeouts and all. Negotiation costs nothing on the wire — the
//!   sniffed bytes are replayed to the v1 reader.
//! * **Graceful shutdown drains.** [`ServerHandle::shutdown`] (or a
//!   [`Verb::Shutdown`] frame) stops the accept loop; in-flight
//!   requests — v2 completions and v1 connections alike — run to
//!   completion before [`NetServer::serve`] returns.
//!
//! The accept loop, framing, backpressure, and shutdown logic are
//! verb-agnostic; what a `Submit` or `PeerFetch` *means* is the
//! [`FrameHandler`]'s business. [`JobHandler`] is the handler behind
//! `tpi-netd` (decode → [`tpi_serve::JobService`] → encode, with
//! peer-fetch seeding of forwarded jobs); `tpi-gatewayd` plugs in its
//! own handler that forwards instead of executing.
//!
//! Observability rides on a [`Recorder`]: connection/frame/byte
//! counters (all [`Recorder::add_nd`] — traffic is wall-clock data, not
//! part of any determinism contract) plus a `frame_latency` histogram,
//! served over the wire by the [`Verb::Metrics`] verb next to the
//! handler's embedded snapshot.

use crate::client::ClientConfig;
use crate::frame::{
    encode_frame, encode_frame_v2, read_frame, write_frame, FrameAssembler, FrameError, Verb,
    DEFAULT_MAX_FRAME, MAGIC, VERSION, VERSION_V2,
};
use crate::proto::{
    CacheAnswer, CacheLookup, ErrorCode, ErrorInfo, SubmitMany, WireReport, WireRequest,
};
use crate::session::Connection;
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tpi_obs::{JsonObject, Recorder};
use tpi_serve::{cache_key, netlist_fingerprint, CacheKey, JobService, NetlistSource};

/// Tuning for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrent *v1* connection cap; v1 connection number `max + 1`
    /// is answered with a [`Verb::Busy`] frame and closed. v2
    /// connections are not counted — an idle session is nearly free,
    /// so the scarce resource is in-flight work, capped by
    /// [`ServerConfig::max_inflight`].
    pub max_connections: usize,
    /// Per-connection read timeout for *v1* connections (an idle or
    /// wedged v1 peer frees its thread after this long). v2 sessions
    /// may idle indefinitely; they hold no thread.
    pub read_timeout: Duration,
    /// Per-connection write timeout (v1 connections; also bounds the
    /// final v2 drain on shutdown).
    pub write_timeout: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame: u32,
    /// Server-wide cap on v2 requests dispatched but not yet answered.
    /// A Submit past the cap gets a per-request [`Verb::Busy`]; a
    /// SubmitMany that does not fit *whole* is refused whole (partial
    /// admission would make "which jobs ran?" ambiguous under retry).
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 256,
        }
    }
}

/// What a server *does* with the request verbs; the accept loop,
/// framing, backpressure, and shutdown are [`NetServer`]'s.
///
/// Implementations answer with `(response verb, payload bytes)` — the
/// loop writes the frame. On the v1 path the connection closes after a
/// [`Verb::Error`] answer (the pre-existing one-strike contract keeps
/// old client retry logic uniform); on the v2 path an error answer
/// keeps the connection open, because the frame layer stayed in sync.
pub trait FrameHandler: Send + Sync + 'static {
    /// Answers a decoded Submit request with [`Verb::Report`] or
    /// [`Verb::Error`]. Blocking is fine here: this entry point is only
    /// called from v1 connection threads (and from the default
    /// [`FrameHandler::submit_async`]).
    fn submit(&self, req: WireRequest) -> (Verb, Vec<u8>);

    /// Answers a Submit without blocking the caller: `done` fires on
    /// whatever thread finishes the job. The poll loop calls this for
    /// every v2 Submit, so an implementation that executes inline
    /// (the default, which wraps [`FrameHandler::submit`]) serializes
    /// the whole server — real handlers hand the work to a pool.
    fn submit_async(&self, req: WireRequest, done: Box<dyn FnOnce(Verb, Vec<u8>) + Send>) {
        let (verb, payload) = self.submit(req);
        done(verb, payload);
    }

    /// Answers a decoded PeerFetch request with [`Verb::CachePayload`]
    /// or [`Verb::Error`]. A cache miss is a `CachePayload` carrying
    /// `None`, not an error. Must be fast — the poll loop calls it
    /// inline (for [`JobHandler`] it is a local cache probe).
    fn peer_fetch(&self, lookup: CacheLookup) -> (Verb, Vec<u8>);

    /// Schema string of this server's metrics JSON
    /// (`tpi-netd-metrics/v1` for [`JobHandler`]).
    fn metrics_schema(&self) -> &'static str;

    /// The handler-specific snapshot embedded in the metrics JSON:
    /// a field name plus already-rendered, byte-stable JSON.
    fn snapshot(&self) -> (&'static str, String);
}

/// The `tpi-netd` handler: decode, run on the shared
/// [`JobService`], encode. When a forwarded request names sibling
/// backends ([`WireRequest::peers`]), a locally-missing result is
/// peer-fetched and seeded before the job runs, so a gateway ring
/// rebalance costs one small round-trip instead of a cold flow run.
pub struct JobHandler {
    service: Arc<JobService>,
    peer_config: ClientConfig,
}

impl JobHandler {
    /// Wraps a service. The service stays shared — the caller may keep
    /// submitting in-process jobs through its own handle; cache and
    /// metrics are one pool either way.
    pub fn new(service: Arc<JobService>) -> JobHandler {
        JobHandler {
            service,
            // Peer fetches are an optimization, never worth waiting
            // for: no retries, short timeouts, fall back to computing.
            peer_config: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                io_timeout: Duration::from_secs(10),
                retry_budget: Duration::ZERO,
                max_retries: Some(0),
                ..ClientConfig::default()
            },
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Tries to satisfy `req` from its named sibling backends: compute
    /// the content-addressed key, and if this service does not hold it,
    /// ask each peer once. The first hit is seeded into the local
    /// cache; the submission that follows then completes as a memory
    /// hit. Returns whether a payload was seeded. Every failure mode
    /// (unparsable BLIF, dead peer, miss) just means "compute locally".
    fn seed_from_peers(&self, req: &WireRequest) -> bool {
        if req.peers.is_empty() {
            return false;
        }
        let Ok(netlist) = NetlistSource::Blif(req.blif.clone()).resolve() else {
            return false;
        };
        let key = cache_key(netlist_fingerprint(&netlist), &req.flow);
        if self.service.lookup(key).is_some() {
            return false;
        }
        for peer in &req.peers {
            let Ok(conn) = Connection::open_with(peer, self.peer_config.clone()) else {
                continue;
            };
            if let Ok(Some(payload)) = conn.peer_fetch(key.0) {
                self.service.seed(key, payload.into());
                return true;
            }
        }
        false
    }
}

impl FrameHandler for JobHandler {
    fn submit(&self, req: WireRequest) -> (Verb, Vec<u8>) {
        self.seed_from_peers(&req);
        let report = self.service.submit(req.to_spec()).wait();
        (Verb::Report, WireReport::from_report(&report).encode())
    }

    fn submit_async(&self, req: WireRequest, done: Box<dyn FnOnce(Verb, Vec<u8>) + Send>) {
        if req.peers.is_empty() {
            // The common case: straight onto the worker pool, report
            // encoded on the worker that ran the job.
            self.service.submit_with(req.to_spec(), move |report| {
                done(Verb::Report, WireReport::from_report(&report).encode());
            });
            return;
        }
        // Forwarded jobs name sibling caches, and probing them is
        // blocking network I/O that must not run on the poll thread.
        // Rebalances are rare (a gateway ring change), so a short-lived
        // thread per such request is cheaper than a dedicated pool.
        let service = Arc::clone(&self.service);
        let peer_config = self.peer_config.clone();
        std::thread::Builder::new()
            .name("tpi-net-seed".into())
            .spawn(move || {
                let seeder = JobHandler { service: Arc::clone(&service), peer_config };
                seeder.seed_from_peers(&req);
                service.submit_with(req.to_spec(), move |report| {
                    done(Verb::Report, WireReport::from_report(&report).encode());
                });
            })
            .expect("spawning a peer-seed thread succeeds");
    }

    fn peer_fetch(&self, lookup: CacheLookup) -> (Verb, Vec<u8>) {
        let payload = self.service.lookup(CacheKey(lookup.key)).map(|(p, _)| p.to_string());
        (Verb::CachePayload, CacheAnswer { payload }.encode())
    }

    fn metrics_schema(&self) -> &'static str {
        "tpi-netd-metrics/v1"
    }

    fn snapshot(&self) -> (&'static str, String) {
        ("service", self.service.metrics_json())
    }
}

/// State shared by the poll loop, v1 connection threads, and handles.
struct ServerState {
    shutdown: AtomicBool,
    /// Live v1 connection threads.
    active: AtomicUsize,
    /// Open v2 (and still-sniffing) connections owned by the poll loop.
    v2_conns: AtomicUsize,
    /// v2 requests dispatched to the handler, completion pending.
    inflight: AtomicUsize,
    obs: Recorder,
}

/// A cloneable remote control for a running server: observe its
/// address, trigger graceful shutdown from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: the poll loop stops taking
    /// connections and [`NetServer::serve`] returns once in-flight
    /// requests drain. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake the poll loop with a throwaway connection (the listener
        // turning readable is a wakeup); the loop re-checks the flag
        // before handling anything.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// The server: a bound listener plus the [`FrameHandler`] it drives.
/// `tpi-netd` constructs one with [`NetServer::bind`] (a [`JobHandler`]
/// over a shared service); `tpi-gatewayd` brings its own handler via
/// [`NetServer::bind_with`]. Then either call [`NetServer::serve`] on
/// the current thread or [`NetServer::spawn`] to run it on its own.
pub struct NetServer<H: FrameHandler = JobHandler> {
    listener: TcpListener,
    handler: Arc<H>,
    config: ServerConfig,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl NetServer<JobHandler> {
    /// Binds the listener and wires it to `service` through a
    /// [`JobHandler`].
    pub fn bind(config: ServerConfig, service: Arc<JobService>) -> io::Result<NetServer> {
        NetServer::bind_with(config, JobHandler::new(service))
    }
}

impl<H: FrameHandler> NetServer<H> {
    /// Binds the listener and wires it to an arbitrary handler.
    pub fn bind_with(config: ServerConfig, handler: H) -> io::Result<NetServer<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            v2_conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            obs: Recorder::new(),
        });
        Ok(NetServer { listener, handler: Arc::new(handler), config, state, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr, state: Arc::clone(&self.state) }
    }

    /// The metrics JSON: net counters, the frame-latency histogram,
    /// and the handler's embedded snapshot, under the handler's schema.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.state, &*self.handler)
    }

    /// Runs the readiness loop until shutdown, then drains: every
    /// in-flight v2 request and every live v1 connection thread (and
    /// therefore every in-flight job) finishes before this returns. The
    /// listener closes on return, and the handler (with every `Arc` the
    /// connection threads held) is dropped, so an `Arc<JobService>`
    /// shared with the caller is uniquely theirs again.
    pub fn serve(self) -> io::Result<()> {
        let NetServer { listener, handler, config, state, addr: _ } = self;
        PollLoop::new(listener, handler, config, state)?.run()
    }

    /// Runs [`NetServer::serve`] on a new thread, returning the handle
    /// pair: control the server with the [`ServerHandle`], observe its
    /// exit by joining the [`JoinHandle`].
    pub fn spawn(self) -> (ServerHandle, JoinHandle<io::Result<()>>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("tpi-net-accept".into())
            .spawn(move || self.serve())
            .expect("spawning the accept thread succeeds");
        (handle, join)
    }
}

// ---------------------------------------------------------------------
// Readiness: a minimal poll(2) registry
// ---------------------------------------------------------------------

/// The std-only readiness primitive: `poll(2)` through the libc that
/// std already links. One entry per descriptor of interest; the loop
/// rebuilds the set each iteration (hundreds of entries rebuild in
/// microseconds, and it keeps the registry trivially consistent with
/// the connection slab).
#[cfg(unix)]
mod readiness {
    use std::io;
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    /// Error/hangup conditions: never requested, always reportable.
    /// Treated as readable so the subsequent `read` surfaces the fault
    /// instead of the loop spinning on an eternally-"ready" socket.
    pub const POLLFAULT: i16 = 0x008 | 0x010 | 0x020; // ERR | HUP | NVAL

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Waits until a descriptor is ready or `timeout` passes. Readiness
    /// lands in each entry's `revents`. `Interrupted` is reported as
    /// zero ready descriptors — the caller's loop re-polls anyway.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

/// Fallback for platforms without `poll(2)`: a fixed short sleep. The
/// loop then runs level-triggered against non-blocking sockets, which
/// is correct but burns a wakeup per tick; only the Unix path is
/// exercised by CI.
#[cfg(not(unix))]
mod readiness {
    use std::io;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLFAULT: i16 = 0x008 | 0x010 | 0x020;

    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(timeout_ms.clamp(1, 10) as u64));
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        Ok(fds.len())
    }
}

/// Wakes the poll loop from worker threads: a loopback stream pair
/// standing in for a pipe (std has no `pipe(2)`). The `pending` flag
/// coalesces bursts — one byte in flight is enough, the loop drains
/// the completion queue wholesale.
struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

impl Waker {
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

/// Builds the waker pair: `rx` joins the poll set, `tx` goes to worker
/// threads. Bound to loopback on an ephemeral port that closes again
/// immediately after the one accept.
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

// ---------------------------------------------------------------------
// The poll loop
// ---------------------------------------------------------------------

/// One finished v2 request, traveling from the worker that ran it back
/// to the poll thread that owns the connection.
struct Completion {
    token: usize,
    gen: u64,
    verb: Verb,
    req_id: u32,
    payload: Vec<u8>,
    t0: Instant,
}

/// What phase a poll-owned connection is in.
enum Phase {
    /// Waiting for the first five bytes to learn the protocol version.
    Sniff,
    /// Speaking v2: frames reassembled from non-blocking reads.
    V2,
}

/// One connection owned by the poll loop.
struct Conn {
    stream: TcpStream,
    phase: Phase,
    sniff: Vec<u8>,
    asm: FrameAssembler,
    out: VecDeque<u8>,
    /// Requests dispatched from this connection, completion pending.
    inflight: usize,
    /// Set when the connection should close once `out` drains (frame
    /// errors, peer hangup with responses still buffered).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            phase: Phase::Sniff,
            sniff: Vec::with_capacity(5),
            asm: FrameAssembler::new(),
            out: VecDeque::new(),
            inflight: 0,
            closing: false,
        }
    }
}

struct PollLoop<H: FrameHandler> {
    listener: TcpListener,
    handler: Arc<H>,
    config: ServerConfig,
    state: Arc<ServerState>,
    addr: SocketAddr,
    /// Connection slab: token = index. `gens[token]` bumps on every
    /// reuse so a completion for a dead connection can never write
    /// into its successor.
    conns: Vec<Option<Conn>>,
    gens: Vec<u64>,
    free: Vec<usize>,
    completions_tx: mpsc::Sender<Completion>,
    completions_rx: mpsc::Receiver<Completion>,
    waker: Arc<Waker>,
    wake_rx: TcpStream,
    /// v2 requests dispatched, completion not yet received (mirrors
    /// `state.inflight`, but owned — no racing decrements).
    inflight_total: usize,
    /// Live v1 connection threads, joined on exit.
    v1_threads: Vec<JoinHandle<()>>,
}

impl<H: FrameHandler> PollLoop<H> {
    fn new(
        listener: TcpListener,
        handler: Arc<H>,
        config: ServerConfig,
        state: Arc<ServerState>,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_rx, wake_tx) = waker_pair()?;
        let (completions_tx, completions_rx) = mpsc::channel();
        Ok(PollLoop {
            listener,
            handler,
            config,
            state,
            addr,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            completions_tx,
            completions_rx,
            waker: Arc::new(Waker { tx: wake_tx, pending: AtomicBool::new(false) }),
            wake_rx,
            inflight_total: 0,
            v1_threads: Vec::new(),
        })
    }

    fn run(mut self) -> io::Result<()> {
        use readiness::{wait, PollFd, POLLFAULT, POLLIN, POLLOUT};
        #[cfg(unix)]
        use std::os::unix::io::AsRawFd;

        let mut fds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<usize> = Vec::new();
        let mut drain_started: Option<Instant> = None;

        loop {
            let shutting = self.state.shutdown.load(Ordering::SeqCst);
            if shutting {
                let drained = self.inflight_total == 0
                    && self.conns.iter().flatten().all(|c| c.out.is_empty());
                let deadline_passed = *drain_started.get_or_insert_with(Instant::now)
                    + self.config.write_timeout
                    < Instant::now();
                if drained || deadline_passed {
                    break;
                }
            }

            // Rebuild the poll set: listener, waker, then every live
            // connection (write interest only when bytes are buffered).
            fds.clear();
            tokens.clear();
            #[cfg(unix)]
            {
                fds.push(PollFd { fd: self.listener.as_raw_fd(), events: POLLIN, revents: 0 });
                fds.push(PollFd { fd: self.wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
                for (token, slot) in self.conns.iter().enumerate() {
                    if let Some(conn) = slot {
                        // A closing connection stops reading; if its
                        // output is drained too it is parked entirely
                        // (a completion or the reap will advance it) —
                        // registering it would spin on POLLHUP.
                        let mut events = 0;
                        if !conn.closing {
                            events |= POLLIN;
                        }
                        if !conn.out.is_empty() {
                            events |= POLLOUT;
                        }
                        if events == 0 {
                            continue;
                        }
                        fds.push(PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                        tokens.push(token);
                    }
                }
            }
            #[cfg(not(unix))]
            {
                fds.push(PollFd { fd: 0, events: POLLIN, revents: 0 });
                fds.push(PollFd { fd: 0, events: POLLIN, revents: 0 });
                for (token, slot) in self.conns.iter().enumerate() {
                    if slot.is_some() {
                        fds.push(PollFd { fd: 0, events: POLLIN | POLLOUT, revents: 0 });
                        tokens.push(token);
                    }
                }
            }

            // A finite timeout backstops every wakeup path (flag set
            // without a connect, a drain deadline approaching).
            wait(&mut fds, 100)?;

            if fds[0].revents & POLLIN != 0 {
                self.accept_ready();
            }
            if fds[1].revents & POLLIN != 0 {
                self.drain_waker();
            }
            self.drain_completions();

            for (i, fd) in fds.iter().enumerate().skip(2) {
                let token = tokens[i - 2];
                if fd.revents & (POLLIN | POLLFAULT) != 0 {
                    self.conn_readable(token);
                }
                if fd.revents & POLLOUT != 0 {
                    self.conn_writable(token);
                }
                self.reap_if_done(token);
            }
        }

        // Shutdown: close every poll-owned connection, then wait for
        // the v1 threads (their read timeout bounds the wait).
        for (token, slot) in self.conns.iter_mut().enumerate() {
            if slot.take().is_some() {
                self.gens[token] += 1;
                self.state.v2_conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
        for t in self.v1_threads.drain(..) {
            let _ = t.join();
        }
        Ok(())
    }

    /// Accepts every pending connection. During shutdown each one gets
    /// a best-effort "draining" notice and closes.
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.state.obs.add_nd("accept_errors", 1);
                    continue;
                }
            };
            if self.state.shutdown.load(Ordering::SeqCst) {
                refuse(stream, &self.config, Verb::Error, &shutting_down_payload());
                continue;
            }
            self.state.obs.add_nd("connections_accepted", 1);
            if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                continue;
            }
            let token = match self.free.pop() {
                Some(t) => t,
                None => {
                    self.conns.push(None);
                    self.gens.push(0);
                    self.conns.len() - 1
                }
            };
            self.gens[token] += 1;
            self.conns[token] = Some(Conn::new(stream));
            self.state.v2_conns.fetch_add(1, Ordering::SeqCst);
            // The five version bytes may already be on the wire.
            self.conn_readable(token);
            self.reap_if_done(token);
        }
    }

    fn drain_waker(&mut self) {
        self.waker.pending.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return, // waker closed; completions still drain via timeout
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Moves every finished request's response into its connection's
    /// write buffer (if the connection still exists — a peer that hung
    /// up mid-job just forfeits the bytes; the job ran and its result
    /// is cached).
    fn drain_completions(&mut self) {
        while let Ok(c) = self.completions_rx.try_recv() {
            self.inflight_total -= 1;
            self.state.inflight.fetch_sub(1, Ordering::SeqCst);
            self.state.obs.observe("frame_latency", c.t0.elapsed());
            let live = self.gens[c.token] == c.gen;
            if let Some(conn) = self.conns.get_mut(c.token).and_then(Option::as_mut) {
                if live {
                    conn.inflight -= 1;
                    if c.verb == Verb::Error {
                        self.state.obs.add_nd("bad_requests", 1);
                    }
                    let frame = encode_frame_v2(c.verb, c.req_id, &c.payload);
                    self.state.obs.add_nd("frames_written", 1);
                    self.state.obs.add_nd("bytes_written", frame.len() as u64);
                    conn.out.extend(frame);
                    // Opportunistic flush: the socket is almost always
                    // writable, and skipping a poll round-trip is what
                    // keeps sequential request latency low.
                    self.conn_writable(c.token);
                    self.reap_if_done(c.token);
                }
            }
        }
    }

    /// Reads everything available on a connection and processes it.
    fn conn_readable(&mut self, token: usize) {
        let mut scratch = [0u8; 16384];
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            if conn.closing {
                return;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // Peer closed its half; anything buffered is
                    // undeliverable enough to stop reading for.
                    conn.closing = true;
                    return;
                }
                Ok(n) => {
                    self.state.obs.add_nd("bytes_read", n as u64);
                    self.ingest(token, &scratch[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Feeds freshly-read bytes through the sniff/v2 state machine.
    fn ingest(&mut self, token: usize, mut bytes: &[u8]) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        if let Phase::Sniff = conn.phase {
            let need = 5 - conn.sniff.len();
            let take = need.min(bytes.len());
            conn.sniff.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if conn.sniff.len() < 5 {
                return;
            }
            let magic_ok = conn.sniff[..4] == MAGIC;
            let version = conn.sniff[4];
            match (magic_ok, version) {
                (true, VERSION_V2) => {
                    conn.phase = Phase::V2;
                    let sniffed = std::mem::take(&mut conn.sniff);
                    conn.asm.feed(&sniffed);
                }
                (true, VERSION) => {
                    self.handoff_v1(token, bytes.to_vec());
                    return;
                }
                _ => {
                    // Neither protocol. Answer in v1 framing (the one
                    // an old peer could conceivably parse) and close.
                    self.state.obs.add_nd("malformed_frames", 1);
                    let err = if magic_ok {
                        FrameError::BadVersion(version)
                    } else {
                        let mut m = [0u8; 4];
                        m.copy_from_slice(&conn.sniff[..4]);
                        FrameError::BadMagic(m)
                    };
                    let info = ErrorInfo::new(ErrorCode::MalformedFrame, err.to_string());
                    let frame = encode_frame(Verb::Error, &info.encode());
                    self.state.obs.add_nd("frames_written", 1);
                    self.state.obs.add_nd("bytes_written", frame.len() as u64);
                    conn.out.extend(frame);
                    conn.closing = true;
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        conn.asm.feed(bytes);
        self.pump_frames(token);
    }

    /// Decodes and dispatches every complete frame buffered on a v2
    /// connection.
    fn pump_frames(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
            if conn.closing {
                return;
            }
            match conn.asm.next_frame(self.config.max_frame) {
                Ok(Some((verb, req_id, payload))) => {
                    self.state.obs.add_nd("frames_read", 1);
                    self.dispatch(token, verb, req_id, payload);
                }
                Ok(None) => return,
                Err(e) => {
                    // Frame-level faults desynchronize the stream:
                    // answer once (request ID 0 — there is no trustable
                    // ID in a broken frame) and close after the flush.
                    self.state.obs.add_nd("malformed_frames", 1);
                    let code = match e {
                        FrameError::UnknownVerb(_) => ErrorCode::UnknownVerb,
                        _ => ErrorCode::MalformedFrame,
                    };
                    let info = ErrorInfo::new(code, e.to_string());
                    self.enqueue(token, Verb::Error, 0, &info.encode());
                    if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
                        conn.closing = true;
                    }
                    return;
                }
            }
        }
    }

    /// One v2 request. Fast verbs answer inline; Submits go to the
    /// handler's pool and come back through the completion channel.
    fn dispatch(&mut self, token: usize, verb: Verb, req_id: u32, payload: Vec<u8>) {
        let t0 = Instant::now();
        let shutting = self.state.shutdown.load(Ordering::SeqCst);
        match verb {
            Verb::Ping => {
                self.enqueue(token, Verb::Pong, req_id, &[]);
                self.state.obs.observe("frame_latency", t0.elapsed());
            }
            Verb::Metrics => {
                let json = metrics_json(&self.state, &*self.handler);
                self.enqueue(token, Verb::MetricsReport, req_id, json.as_bytes());
                self.state.obs.observe("frame_latency", t0.elapsed());
            }
            Verb::Shutdown => {
                // Acknowledge first (the requester should not hang),
                // then start the drain.
                self.enqueue(token, Verb::Pong, req_id, &[]);
                self.state.shutdown.store(true, Ordering::SeqCst);
                self.state.obs.observe("frame_latency", t0.elapsed());
            }
            Verb::PeerFetch => match CacheLookup::decode(&payload) {
                Ok(lookup) => {
                    let (rverb, rpayload) = self.handler.peer_fetch(lookup);
                    if rverb == Verb::Error {
                        self.state.obs.add_nd("bad_requests", 1);
                    }
                    self.enqueue(token, rverb, req_id, &rpayload);
                    self.state.obs.observe("frame_latency", t0.elapsed());
                }
                Err(e) => self.bad_request(token, req_id, &e.to_string()),
            },
            Verb::Submit => {
                if shutting {
                    self.enqueue(token, Verb::Error, req_id, &shutting_down_payload());
                    return;
                }
                if self.inflight_total >= self.config.max_inflight {
                    self.state.obs.add_nd("requests_busy", 1);
                    self.enqueue(token, Verb::Busy, req_id, &[]);
                    return;
                }
                match WireRequest::decode(&payload) {
                    Ok(req) => {
                        let done = self.completion_sender(token, req_id, t0, None);
                        self.note_dispatch(token);
                        self.handler.submit_async(req, done);
                    }
                    Err(e) => self.bad_request(token, req_id, &e.to_string()),
                }
            }
            Verb::SubmitMany => {
                if shutting {
                    self.enqueue(token, Verb::Error, req_id, &shutting_down_payload());
                    return;
                }
                let batch = match SubmitMany::decode(&payload) {
                    Ok(batch) => batch,
                    Err(e) => return self.bad_request(token, req_id, &e.to_string()),
                };
                // All-or-nothing admission, so a Busy answer means
                // "nothing from this frame ran" — retry the frame.
                if self.inflight_total + batch.requests.len() > self.config.max_inflight {
                    self.state.obs.add_nd("requests_busy", 1);
                    self.enqueue(token, Verb::Busy, req_id, &[]);
                    return;
                }
                for (index, req) in batch.requests.into_iter().enumerate() {
                    let done = self.completion_sender(token, req_id, t0, Some(index as u32));
                    self.note_dispatch(token);
                    self.handler.submit_async(req, done);
                }
            }
            // A response verb has no meaning as a request. The frame
            // layer stayed in sync, so unlike v1 this answers and
            // keeps the connection.
            Verb::Report
            | Verb::ReportOne
            | Verb::Error
            | Verb::Busy
            | Verb::MetricsReport
            | Verb::Pong
            | Verb::CachePayload => {
                self.state.obs.add_nd("bad_requests", 1);
                let info = ErrorInfo::new(
                    ErrorCode::UnexpectedVerb,
                    format!("{} is a response verb", verb.label()),
                );
                self.enqueue(token, Verb::Error, req_id, &info.encode());
            }
        }
    }

    /// Builds the `done` callback for one dispatched request. For a
    /// batch member (`index` set), the handler's Report payload is
    /// re-enveloped as a [`Verb::ReportOne`] — an index prefix spliced
    /// onto the report bytes — and a handler *error* is folded into a
    /// failed report, so every batch member answers exactly once with
    /// the batch's request ID.
    fn completion_sender(
        &self,
        token: usize,
        req_id: u32,
        t0: Instant,
        index: Option<u32>,
    ) -> Box<dyn FnOnce(Verb, Vec<u8>) + Send> {
        let gen = self.gens[token];
        let tx = self.completions_tx.clone();
        let waker = Arc::clone(&self.waker);
        Box::new(move |verb, payload| {
            let (verb, payload) = match index {
                None => (verb, payload),
                Some(index) => {
                    let report = if verb == Verb::Report {
                        payload
                    } else {
                        synthesized_failure(&payload).encode()
                    };
                    let mut enveloped = Vec::with_capacity(4 + report.len());
                    enveloped.extend_from_slice(&index.to_le_bytes());
                    enveloped.extend_from_slice(&report);
                    (Verb::ReportOne, enveloped)
                }
            };
            let _ = tx.send(Completion { token, gen, verb, req_id, payload, t0 });
            waker.wake();
        })
    }

    fn note_dispatch(&mut self, token: usize) {
        self.inflight_total += 1;
        self.state.inflight.fetch_add(1, Ordering::SeqCst);
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
            conn.inflight += 1;
        }
    }

    /// Answers a request that framed correctly but decoded badly. The
    /// connection stays open: the stream is still in sync.
    fn bad_request(&mut self, token: usize, req_id: u32, msg: &str) {
        self.state.obs.add_nd("bad_requests", 1);
        let info = ErrorInfo::new(ErrorCode::BadRequest, msg);
        self.enqueue(token, Verb::Error, req_id, &info.encode());
    }

    /// Appends one v2 frame to a connection's write buffer and tries to
    /// flush it immediately.
    fn enqueue(&mut self, token: usize, verb: Verb, req_id: u32, payload: &[u8]) {
        let frame = encode_frame_v2(verb, req_id, payload);
        self.state.obs.add_nd("frames_written", 1);
        self.state.obs.add_nd("bytes_written", frame.len() as u64);
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
            conn.out.extend(frame);
        }
        self.conn_writable(token);
    }

    /// Writes as much buffered output as the socket will take.
    fn conn_writable(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { return };
        while !conn.out.is_empty() {
            let (front, _) = conn.out.as_slices();
            match conn.stream.write(front) {
                Ok(0) => {
                    self.state.obs.add_nd("write_failures", 1);
                    self.close_conn(token);
                    return;
                }
                Ok(n) => {
                    conn.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.state.obs.add_nd("write_failures", 1);
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    /// Closes a connection marked `closing` once its output drained and
    /// no completions are owed to it.
    fn reap_if_done(&mut self, token: usize) {
        let done = match self.conns.get(token).and_then(Option::as_ref) {
            Some(conn) => conn.closing && conn.out.is_empty() && conn.inflight == 0,
            None => false,
        };
        if done {
            self.close_conn(token);
        }
    }

    /// Frees a connection slot. In-flight completions for it will miss
    /// the generation check and be dropped.
    fn close_conn(&mut self, token: usize) {
        if self.conns[token].take().is_some() {
            self.gens[token] += 1;
            self.free.push(token);
            self.state.v2_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Hands a sniffed v1 connection to a dedicated blocking thread
    /// running the historical request loop (with the sniffed bytes and
    /// anything read past them replayed in front of the socket).
    fn handoff_v1(&mut self, token: usize, extra: Vec<u8>) {
        let Some(mut conn) = self.conns[token].take() else { return };
        self.gens[token] += 1;
        self.free.push(token);
        self.state.v2_conns.fetch_sub(1, Ordering::SeqCst);

        let mut prefix = std::mem::take(&mut conn.sniff);
        prefix.extend_from_slice(&extra);
        let stream = conn.stream;
        if stream.set_nonblocking(false).is_err() {
            return;
        }
        // v1 keeps its historical connection-level backpressure.
        self.v1_threads.retain(|t| !t.is_finished());
        if self.state.active.load(Ordering::SeqCst) >= self.config.max_connections {
            self.state.obs.add_nd("connections_busy", 1);
            refuse(stream, &self.config, Verb::Busy, &[]);
            return;
        }
        self.state.active.fetch_add(1, Ordering::SeqCst);
        let handler = Arc::clone(&self.handler);
        let state = Arc::clone(&self.state);
        let config = self.config.clone();
        let addr = self.addr;
        let thread = std::thread::Builder::new()
            .name("tpi-net-v1".into())
            .spawn(move || {
                // Frees the slot even if the handler somehow panicked.
                struct Slot<'a>(&'a ServerState);
                impl Drop for Slot<'_> {
                    fn drop(&mut self) {
                        self.0.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _slot = Slot(&state);
                handle_v1_connection(stream, prefix, &*handler, &state, &config, addr);
            })
            .expect("spawning a v1 connection thread succeeds");
        self.v1_threads.push(thread);
    }
}

/// Folds a handler error payload into a failed [`WireReport`], so a
/// batch member that errored still answers as a ReportOne (the batch
/// protocol promises exactly one report per index).
fn synthesized_failure(error_payload: &[u8]) -> WireReport {
    let message = match ErrorInfo::decode(error_payload) {
        Ok(info) => info.message,
        Err(_) => "request failed".into(),
    };
    WireReport {
        id: 0,
        flow: "error".into(),
        status: tpi_serve::JobStatus::Failed(message),
        key: None,
        verified: false,
        cache: tpi_serve::CacheSource::Cold,
        wall_micros: 0,
        payload: None,
        diagnostics: Vec::new(),
    }
}

/// Atomically publishes a server's bound address to `path`: write to a
/// sibling temp file, `fsync`, rename into place, then `fsync` the
/// directory. A reader polling the path therefore sees either nothing
/// or a complete `HOST:PORT\n` — never a partial write — which is what
/// lets scripts race `tpi-netd --addr-file` safely.
pub fn write_addr_file(path: impl AsRef<Path>, addr: SocketAddr) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{addr}\n").as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Best-effort: some filesystems refuse
    // directory fsync, and durability of the *name* is not what the
    // race fix depends on (the atomic rename is).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn shutting_down_payload() -> Vec<u8> {
    ErrorInfo::new(ErrorCode::ShuttingDown, "server is draining; try another replica").encode()
}

/// Best-effort single-frame answer to a connection the server will not
/// serve (over the v1 cap, or arriving during shutdown).
fn refuse(stream: TcpStream, config: &ServerConfig, verb: Verb, payload: &[u8]) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut stream = stream;
    let _ = write_frame(&mut stream, verb, payload);
}

/// Replays sniffed bytes in front of the socket so the v1 reader sees
/// an untouched stream.
struct Prefixed {
    prefix: Vec<u8>,
    pos: usize,
    stream: TcpStream,
}

impl Read for Prefixed {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos < self.prefix.len() {
            let n = (self.prefix.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.prefix[self.pos..self.pos + n]);
            self.pos += n;
            return Ok(n);
        }
        self.stream.read(buf)
    }
}

/// One v1 connection's request loop: the historical blocking protocol,
/// byte for byte. Never panics, never propagates: any protocol fault
/// answers with an error frame and closes this connection only.
fn handle_v1_connection<H: FrameHandler>(
    stream: TcpStream,
    prefix: Vec<u8>,
    handler: &H,
    state: &ServerState,
    config: &ServerConfig,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(Prefixed { prefix, pos: 0, stream });

    loop {
        let (verb, payload) = match read_frame(&mut reader, config.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(e) => {
                state.obs.add_nd("malformed_frames", 1);
                let code = match e {
                    FrameError::UnknownVerb(_) => ErrorCode::UnknownVerb,
                    _ => ErrorCode::MalformedFrame,
                };
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(code, e.to_string()).encode(),
                );
                return;
            }
        };
        state.obs.add_nd("frames_read", 1);
        state.obs.add_nd(
            "bytes_read",
            (crate::frame::HEADER_LEN + payload.len() + crate::frame::TRAILER_LEN) as u64,
        );

        let t0 = Instant::now();
        let keep_going = match verb {
            Verb::Ping => send(state, &mut writer, Verb::Pong, &[]),
            Verb::Metrics => {
                let json = metrics_json(state, handler);
                send(state, &mut writer, Verb::MetricsReport, json.as_bytes())
            }
            Verb::Shutdown => {
                // Acknowledge first (the requester should not hang),
                // then stop the poll loop; in-flight work drains.
                send(state, &mut writer, Verb::Pong, &[]);
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                false
            }
            Verb::Submit => match WireRequest::decode(&payload) {
                Ok(req) => {
                    let (rverb, rpayload) = handler.submit(req);
                    if rverb == Verb::Error {
                        state.obs.add_nd("bad_requests", 1);
                    }
                    send(state, &mut writer, rverb, &rpayload) && rverb != Verb::Error
                }
                Err(e) => {
                    state.obs.add_nd("bad_requests", 1);
                    send(
                        state,
                        &mut writer,
                        Verb::Error,
                        &ErrorInfo::new(ErrorCode::BadRequest, e.to_string()).encode(),
                    );
                    false
                }
            },
            Verb::PeerFetch => match CacheLookup::decode(&payload) {
                Ok(lookup) => {
                    let (rverb, rpayload) = handler.peer_fetch(lookup);
                    if rverb == Verb::Error {
                        state.obs.add_nd("bad_requests", 1);
                    }
                    send(state, &mut writer, rverb, &rpayload) && rverb != Verb::Error
                }
                Err(e) => {
                    state.obs.add_nd("bad_requests", 1);
                    send(
                        state,
                        &mut writer,
                        Verb::Error,
                        &ErrorInfo::new(ErrorCode::BadRequest, e.to_string()).encode(),
                    );
                    false
                }
            },
            // A response verb has no meaning as a request. SubmitMany
            // is v2-only; on a v1 stream it is equally unexpected.
            Verb::Report
            | Verb::ReportOne
            | Verb::SubmitMany
            | Verb::Error
            | Verb::Busy
            | Verb::MetricsReport
            | Verb::Pong
            | Verb::CachePayload => {
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(
                        ErrorCode::UnexpectedVerb,
                        format!("{} is a response verb", verb.label()),
                    )
                    .encode(),
                );
                false
            }
        };
        state.obs.observe("frame_latency", t0.elapsed());
        if !keep_going {
            return;
        }
    }
}

/// Writes one response frame, recording the traffic counters. Returns
/// `false` when the peer is gone (mid-job disconnects land here) — the
/// job already ran and its result is cached, so the only casualty is
/// this connection.
fn send(state: &ServerState, w: &mut TcpStream, verb: Verb, payload: &[u8]) -> bool {
    match write_frame(w, verb, payload) {
        Ok(n) => {
            state.obs.add_nd("frames_written", 1);
            state.obs.add_nd("bytes_written", n as u64);
            true
        }
        Err(_) => {
            state.obs.add_nd("write_failures", 1);
            false
        }
    }
}

/// Renders the metrics snapshot under the handler's schema.
fn metrics_json<H: FrameHandler>(state: &ServerState, handler: &H) -> String {
    let counters = [
        "connections_accepted",
        "connections_busy",
        "accept_errors",
        "frames_read",
        "frames_written",
        "bytes_read",
        "bytes_written",
        "malformed_frames",
        "bad_requests",
        "requests_busy",
        "write_failures",
    ];
    let mut o = JsonObject::new();
    o.field_str("schema", handler.metrics_schema());
    for name in counters {
        o.field_u64(name, state.obs.nd_counter(name));
    }
    let active = state.active.load(Ordering::SeqCst) + state.v2_conns.load(Ordering::SeqCst);
    o.field_u64("active_connections", active as u64);
    o.field_u64("inflight_requests", state.inflight.load(Ordering::SeqCst) as u64);
    o.field_object(
        "frame_latency",
        state.obs.histogram("frame_latency").unwrap_or_default().to_json_object(),
    );
    // The handler snapshot is already rendered byte-stable JSON; embed
    // it verbatim rather than re-serializing.
    let (name, json) = handler.snapshot();
    o.field_raw(name, &json);
    o.finish()
}
