//! The network front-end: a bounded-concurrency TCP server wrapping a
//! shared [`JobService`].
//!
//! Design constraints, in order:
//!
//! * **A bad peer must never take the listener down.** Every malformed
//!   frame becomes a structured [`Verb::Error`] response followed by a
//!   connection close (the stream is desynchronized past the first bad
//!   byte); accept errors are counted and skipped.
//! * **Backpressure, not queues.** The accept→worker handoff is bounded
//!   by [`ServerConfig::max_connections`]; at the cap, a fresh
//!   connection gets a [`Verb::Busy`] frame and is closed immediately.
//!   The client's seeded backoff (see [`crate::client`]) turns that
//!   into a retry, so overload degrades to latency instead of memory.
//! * **Graceful shutdown drains.** [`ServerHandle::shutdown`] (or a
//!   [`Verb::Shutdown`] frame) stops the accept loop; in-flight
//!   connections — and therefore their in-flight jobs — run to
//!   completion before [`NetServer::serve`] returns.
//!
//! Observability rides on a [`Recorder`]: connection/frame/byte
//! counters (all [`Recorder::add_nd`] — traffic is wall-clock data, not
//! part of any determinism contract) plus a `frame_latency` histogram,
//! served over the wire by the [`Verb::Metrics`] verb next to the
//! embedded [`JobService`] snapshot.

use crate::frame::{read_frame, write_frame, FrameError, Verb, DEFAULT_MAX_FRAME};
use crate::proto::{ErrorCode, ErrorInfo, WireReport, WireRequest};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tpi_obs::{JsonObject, Recorder};
use tpi_serve::JobService;

/// Tuning for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrent-connection cap; connection number `max + 1` is
    /// answered with a [`Verb::Busy`] frame and closed.
    pub max_connections: usize,
    /// Per-connection read timeout (an idle or wedged peer frees its
    /// slot after this long).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// State shared by the accept loop, connection threads, and handles.
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    obs: Recorder,
}

/// A cloneable remote control for a running server: observe its
/// address, trigger graceful shutdown from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: the accept loop stops taking
    /// connections and [`NetServer::serve`] returns once in-flight
    /// connections drain. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking `accept` with a throwaway connection; the
        // loop re-checks the flag before handling anything.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// The server: a bound listener plus the shared [`JobService`] it
/// fronts. Construct with [`NetServer::bind`], then either call
/// [`NetServer::serve`] on the current thread or [`NetServer::spawn`]
/// to run it on its own.
pub struct NetServer {
    listener: TcpListener,
    service: Arc<JobService>,
    config: ServerConfig,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl NetServer {
    /// Binds the listener and wires it to `service`. The service is
    /// shared — the caller may keep submitting in-process jobs through
    /// its own handle; cache and metrics are one pool either way.
    pub fn bind(config: ServerConfig, service: Arc<JobService>) -> io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            obs: Recorder::new(),
        });
        Ok(NetServer { listener, service, config, state, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr, state: Arc::clone(&self.state) }
    }

    /// The `tpi-netd-metrics/v1` JSON: net counters, the frame-latency
    /// histogram, and the embedded service snapshot.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.state, &self.service)
    }

    /// Runs the accept loop until shutdown, then drains: every live
    /// connection thread (and therefore every in-flight job) finishes
    /// before this returns. The listener closes on return, so new
    /// connection attempts are refused from then on.
    pub fn serve(self) -> io::Result<()> {
        let NetServer { listener, service, config, state, addr: _ } = self;
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    state.obs.add_nd("accept_errors", 1);
                    continue;
                }
            };
            if state.shutdown.load(Ordering::SeqCst) {
                // The stream that woke us (or raced the flag) gets a
                // best-effort notice and the loop ends.
                refuse(stream, &config, Verb::Error, &shutting_down_payload());
                break;
            }
            threads.retain(|t| !t.is_finished());
            if state.active.load(Ordering::SeqCst) >= config.max_connections {
                state.obs.add_nd("connections_busy", 1);
                refuse(stream, &config, Verb::Busy, &[]);
                continue;
            }
            state.active.fetch_add(1, Ordering::SeqCst);
            state.obs.add_nd("connections_accepted", 1);
            let service = Arc::clone(&service);
            let state = Arc::clone(&state);
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                // Frees the slot even if the handler somehow panicked.
                struct Slot<'a>(&'a ServerState);
                impl Drop for Slot<'_> {
                    fn drop(&mut self) {
                        self.0.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _slot = Slot(&state);
                handle_connection(stream, &service, &state, &config);
            }));
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// Runs [`NetServer::serve`] on a new thread, returning the handle
    /// pair: control the server with the [`ServerHandle`], observe its
    /// exit by joining the [`JoinHandle`].
    pub fn spawn(self) -> (ServerHandle, JoinHandle<io::Result<()>>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("tpi-netd-accept".into())
            .spawn(move || self.serve())
            .expect("spawning the accept thread succeeds");
        (handle, join)
    }
}

fn shutting_down_payload() -> Vec<u8> {
    ErrorInfo::new(ErrorCode::ShuttingDown, "server is draining; try another replica").encode()
}

/// Best-effort single-frame answer to a connection the server will not
/// serve (over the cap, or arriving during shutdown).
fn refuse(stream: TcpStream, config: &ServerConfig, verb: Verb, payload: &[u8]) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut stream = stream;
    let _ = write_frame(&mut stream, verb, payload);
}

/// One connection's request loop. Never panics, never propagates: any
/// protocol fault answers with an error frame and closes this
/// connection only.
fn handle_connection(
    stream: TcpStream,
    service: &JobService,
    state: &ServerState,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    loop {
        let (verb, payload) = match read_frame(&mut reader, config.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(e) => {
                state.obs.add_nd("malformed_frames", 1);
                let code = match e {
                    FrameError::UnknownVerb(_) => ErrorCode::UnknownVerb,
                    _ => ErrorCode::MalformedFrame,
                };
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(code, e.to_string()).encode(),
                );
                return;
            }
        };
        state.obs.add_nd("frames_read", 1);
        state.obs.add_nd(
            "bytes_read",
            (crate::frame::HEADER_LEN + payload.len() + crate::frame::TRAILER_LEN) as u64,
        );

        let t0 = Instant::now();
        let keep_going = match verb {
            Verb::Ping => send(state, &mut writer, Verb::Pong, &[]),
            Verb::Metrics => {
                let json = metrics_json(state, service);
                send(state, &mut writer, Verb::MetricsReport, json.as_bytes())
            }
            Verb::Shutdown => {
                // Acknowledge first (the requester should not hang),
                // then stop the accept loop; in-flight work drains.
                send(state, &mut writer, Verb::Pong, &[]);
                state.shutdown.store(true, Ordering::SeqCst);
                if let Ok(addr) = reader.get_ref().local_addr() {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                }
                false
            }
            Verb::Submit => match WireRequest::decode(&payload) {
                Ok(req) => {
                    let report = service.submit(req.to_spec()).wait();
                    let wire = WireReport::from_report(&report).encode();
                    send(state, &mut writer, Verb::Report, &wire)
                }
                Err(e) => {
                    state.obs.add_nd("bad_requests", 1);
                    send(
                        state,
                        &mut writer,
                        Verb::Error,
                        &ErrorInfo::new(ErrorCode::BadRequest, e.to_string()).encode(),
                    );
                    false
                }
            },
            // A response verb has no meaning as a request.
            Verb::Report | Verb::Error | Verb::Busy | Verb::MetricsReport | Verb::Pong => {
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(
                        ErrorCode::UnexpectedVerb,
                        format!("{} is a response verb", verb.label()),
                    )
                    .encode(),
                );
                false
            }
        };
        state.obs.observe("frame_latency", t0.elapsed());
        if !keep_going {
            return;
        }
    }
}

/// Writes one response frame, recording the traffic counters. Returns
/// `false` when the peer is gone (mid-job disconnects land here) — the
/// job already ran and its result is cached, so the only casualty is
/// this connection.
fn send(state: &ServerState, w: &mut TcpStream, verb: Verb, payload: &[u8]) -> bool {
    match write_frame(w, verb, payload) {
        Ok(n) => {
            state.obs.add_nd("frames_written", 1);
            state.obs.add_nd("bytes_written", n as u64);
            true
        }
        Err(_) => {
            state.obs.add_nd("write_failures", 1);
            false
        }
    }
}

/// Renders the `tpi-netd-metrics/v1` snapshot.
fn metrics_json(state: &ServerState, service: &JobService) -> String {
    let counters = [
        "connections_accepted",
        "connections_busy",
        "accept_errors",
        "frames_read",
        "frames_written",
        "bytes_read",
        "bytes_written",
        "malformed_frames",
        "bad_requests",
        "write_failures",
    ];
    let mut o = JsonObject::new();
    o.field_str("schema", "tpi-netd-metrics/v1");
    for name in counters {
        o.field_u64(name, state.obs.nd_counter(name));
    }
    o.field_u64("active_connections", state.active.load(Ordering::SeqCst) as u64);
    o.field_object(
        "frame_latency",
        state.obs.histogram("frame_latency").unwrap_or_default().to_json_object(),
    );
    // The service snapshot is already rendered byte-stable JSON; embed
    // it verbatim rather than re-serializing.
    o.field_raw("service", &service.metrics_json());
    o.finish()
}
