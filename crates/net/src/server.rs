//! The network front-end: a bounded-concurrency TCP server wrapping a
//! [`FrameHandler`].
//!
//! Design constraints, in order:
//!
//! * **A bad peer must never take the listener down.** Every malformed
//!   frame becomes a structured [`Verb::Error`] response followed by a
//!   connection close (the stream is desynchronized past the first bad
//!   byte); accept errors are counted and skipped.
//! * **Backpressure, not queues.** The accept→worker handoff is bounded
//!   by [`ServerConfig::max_connections`]; at the cap, a fresh
//!   connection gets a [`Verb::Busy`] frame and is closed immediately.
//!   The client's seeded backoff (see [`crate::client`]) turns that
//!   into a retry, so overload degrades to latency instead of memory.
//! * **Graceful shutdown drains.** [`ServerHandle::shutdown`] (or a
//!   [`Verb::Shutdown`] frame) stops the accept loop; in-flight
//!   connections — and therefore their in-flight jobs — run to
//!   completion before [`NetServer::serve`] returns.
//!
//! The accept loop, framing, backpressure, and shutdown logic are
//! verb-agnostic; what a `Submit` or `PeerFetch` *means* is the
//! [`FrameHandler`]'s business. [`JobHandler`] is the handler behind
//! `tpi-netd` (decode → [`tpi_serve::JobService`] → encode, with
//! peer-fetch seeding of forwarded jobs); `tpi-gatewayd` plugs in its
//! own handler that forwards instead of executing.
//!
//! Observability rides on a [`Recorder`]: connection/frame/byte
//! counters (all [`Recorder::add_nd`] — traffic is wall-clock data, not
//! part of any determinism contract) plus a `frame_latency` histogram,
//! served over the wire by the [`Verb::Metrics`] verb next to the
//! handler's embedded snapshot.

use crate::client::{Client, ClientConfig};
use crate::frame::{read_frame, write_frame, FrameError, Verb, DEFAULT_MAX_FRAME};
use crate::proto::{CacheAnswer, CacheLookup, ErrorCode, ErrorInfo, WireReport, WireRequest};
use std::fs::{self, File};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tpi_obs::{JsonObject, Recorder};
use tpi_serve::{cache_key, netlist_fingerprint, CacheKey, JobService, NetlistSource};

/// Tuning for one [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrent-connection cap; connection number `max + 1` is
    /// answered with a [`Verb::Busy`] frame and closed.
    pub max_connections: usize,
    /// Per-connection read timeout (an idle or wedged peer frees its
    /// slot after this long).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// What a server *does* with the request verbs; the accept loop,
/// framing, backpressure, and shutdown are [`NetServer`]'s.
///
/// Implementations answer with `(response verb, payload bytes)` — the
/// loop writes the frame and keeps the connection open unless the verb
/// is [`Verb::Error`] (a failed request desynchronizes nothing, but
/// matching the pre-existing one-strike contract keeps client retry
/// logic uniform).
pub trait FrameHandler: Send + Sync + 'static {
    /// Answers a decoded Submit request with [`Verb::Report`] or
    /// [`Verb::Error`].
    fn submit(&self, req: WireRequest) -> (Verb, Vec<u8>);

    /// Answers a decoded PeerFetch request with [`Verb::CachePayload`]
    /// or [`Verb::Error`]. A cache miss is a `CachePayload` carrying
    /// `None`, not an error.
    fn peer_fetch(&self, lookup: CacheLookup) -> (Verb, Vec<u8>);

    /// Schema string of this server's metrics JSON
    /// (`tpi-netd-metrics/v1` for [`JobHandler`]).
    fn metrics_schema(&self) -> &'static str;

    /// The handler-specific snapshot embedded in the metrics JSON:
    /// a field name plus already-rendered, byte-stable JSON.
    fn snapshot(&self) -> (&'static str, String);
}

/// The `tpi-netd` handler: decode, run on the shared
/// [`JobService`], encode. When a forwarded request names sibling
/// backends ([`WireRequest::peers`]), a locally-missing result is
/// peer-fetched and seeded before the job runs, so a gateway ring
/// rebalance costs one small round-trip instead of a cold flow run.
pub struct JobHandler {
    service: Arc<JobService>,
    peer_config: ClientConfig,
}

impl JobHandler {
    /// Wraps a service. The service stays shared — the caller may keep
    /// submitting in-process jobs through its own handle; cache and
    /// metrics are one pool either way.
    pub fn new(service: Arc<JobService>) -> JobHandler {
        JobHandler {
            service,
            // Peer fetches are an optimization, never worth waiting
            // for: no retries, short timeouts, fall back to computing.
            peer_config: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                io_timeout: Duration::from_secs(10),
                retry_budget: Duration::ZERO,
                max_retries: Some(0),
                ..ClientConfig::default()
            },
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Tries to satisfy `req` from its named sibling backends: compute
    /// the content-addressed key, and if this service does not hold it,
    /// ask each peer once. The first hit is seeded into the local
    /// cache; the submission that follows then completes as a memory
    /// hit. Returns whether a payload was seeded. Every failure mode
    /// (unparsable BLIF, dead peer, miss) just means "compute locally".
    fn seed_from_peers(&self, req: &WireRequest) -> bool {
        if req.peers.is_empty() {
            return false;
        }
        let Ok(netlist) = NetlistSource::Blif(req.blif.clone()).resolve() else {
            return false;
        };
        let key = cache_key(netlist_fingerprint(&netlist), &req.flow);
        if self.service.lookup(key).is_some() {
            return false;
        }
        for peer in &req.peers {
            let client = Client::with_config(peer.clone(), self.peer_config.clone());
            if let Ok(Some(payload)) = client.peer_fetch(key.0) {
                self.service.seed(key, payload.into());
                return true;
            }
        }
        false
    }
}

impl FrameHandler for JobHandler {
    fn submit(&self, req: WireRequest) -> (Verb, Vec<u8>) {
        self.seed_from_peers(&req);
        let report = self.service.submit(req.to_spec()).wait();
        (Verb::Report, WireReport::from_report(&report).encode())
    }

    fn peer_fetch(&self, lookup: CacheLookup) -> (Verb, Vec<u8>) {
        let payload = self.service.lookup(CacheKey(lookup.key)).map(|(p, _)| p.to_string());
        (Verb::CachePayload, CacheAnswer { payload }.encode())
    }

    fn metrics_schema(&self) -> &'static str {
        "tpi-netd-metrics/v1"
    }

    fn snapshot(&self) -> (&'static str, String) {
        ("service", self.service.metrics_json())
    }
}

/// State shared by the accept loop, connection threads, and handles.
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    obs: Recorder,
}

/// A cloneable remote control for a running server: observe its
/// address, trigger graceful shutdown from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: the accept loop stops taking
    /// connections and [`NetServer::serve`] returns once in-flight
    /// connections drain. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Wake a blocking `accept` with a throwaway connection; the
        // loop re-checks the flag before handling anything.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }
}

/// The server: a bound listener plus the [`FrameHandler`] it drives.
/// `tpi-netd` constructs one with [`NetServer::bind`] (a [`JobHandler`]
/// over a shared service); `tpi-gatewayd` brings its own handler via
/// [`NetServer::bind_with`]. Then either call [`NetServer::serve`] on
/// the current thread or [`NetServer::spawn`] to run it on its own.
pub struct NetServer<H: FrameHandler = JobHandler> {
    listener: TcpListener,
    handler: Arc<H>,
    config: ServerConfig,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl NetServer<JobHandler> {
    /// Binds the listener and wires it to `service` through a
    /// [`JobHandler`].
    pub fn bind(config: ServerConfig, service: Arc<JobService>) -> io::Result<NetServer> {
        NetServer::bind_with(config, JobHandler::new(service))
    }
}

impl<H: FrameHandler> NetServer<H> {
    /// Binds the listener and wires it to an arbitrary handler.
    pub fn bind_with(config: ServerConfig, handler: H) -> io::Result<NetServer<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            obs: Recorder::new(),
        });
        Ok(NetServer { listener, handler: Arc::new(handler), config, state, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr, state: Arc::clone(&self.state) }
    }

    /// The metrics JSON: net counters, the frame-latency histogram,
    /// and the handler's embedded snapshot, under the handler's schema.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.state, &*self.handler)
    }

    /// Runs the accept loop until shutdown, then drains: every live
    /// connection thread (and therefore every in-flight job) finishes
    /// before this returns. The listener closes on return, and the
    /// handler (with every `Arc` the connection threads held) is
    /// dropped, so an `Arc<JobService>` shared with the caller is
    /// uniquely theirs again.
    pub fn serve(self) -> io::Result<()> {
        let NetServer { listener, handler, config, state, addr: _ } = self;
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    state.obs.add_nd("accept_errors", 1);
                    continue;
                }
            };
            if state.shutdown.load(Ordering::SeqCst) {
                // The stream that woke us (or raced the flag) gets a
                // best-effort notice and the loop ends.
                refuse(stream, &config, Verb::Error, &shutting_down_payload());
                break;
            }
            threads.retain(|t| !t.is_finished());
            if state.active.load(Ordering::SeqCst) >= config.max_connections {
                state.obs.add_nd("connections_busy", 1);
                refuse(stream, &config, Verb::Busy, &[]);
                continue;
            }
            state.active.fetch_add(1, Ordering::SeqCst);
            state.obs.add_nd("connections_accepted", 1);
            let handler = Arc::clone(&handler);
            let state = Arc::clone(&state);
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                // Frees the slot even if the handler somehow panicked.
                struct Slot<'a>(&'a ServerState);
                impl Drop for Slot<'_> {
                    fn drop(&mut self) {
                        self.0.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _slot = Slot(&state);
                handle_connection(stream, &*handler, &state, &config);
            }));
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// Runs [`NetServer::serve`] on a new thread, returning the handle
    /// pair: control the server with the [`ServerHandle`], observe its
    /// exit by joining the [`JoinHandle`].
    pub fn spawn(self) -> (ServerHandle, JoinHandle<io::Result<()>>) {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("tpi-net-accept".into())
            .spawn(move || self.serve())
            .expect("spawning the accept thread succeeds");
        (handle, join)
    }
}

/// Atomically publishes a server's bound address to `path`: write to a
/// sibling temp file, `fsync`, rename into place, then `fsync` the
/// directory. A reader polling the path therefore sees either nothing
/// or a complete `HOST:PORT\n` — never a partial write — which is what
/// lets scripts race `tpi-netd --addr-file` safely.
pub fn write_addr_file(path: impl AsRef<Path>, addr: SocketAddr) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{addr}\n").as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Persist the rename itself. Best-effort: some filesystems refuse
    // directory fsync, and durability of the *name* is not what the
    // race fix depends on (the atomic rename is).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn shutting_down_payload() -> Vec<u8> {
    ErrorInfo::new(ErrorCode::ShuttingDown, "server is draining; try another replica").encode()
}

/// Best-effort single-frame answer to a connection the server will not
/// serve (over the cap, or arriving during shutdown).
fn refuse(stream: TcpStream, config: &ServerConfig, verb: Verb, payload: &[u8]) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let mut stream = stream;
    let _ = write_frame(&mut stream, verb, payload);
}

/// One connection's request loop. Never panics, never propagates: any
/// protocol fault answers with an error frame and closes this
/// connection only.
fn handle_connection<H: FrameHandler>(
    stream: TcpStream,
    handler: &H,
    state: &ServerState,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    loop {
        let (verb, payload) = match read_frame(&mut reader, config.max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return,
            Err(e) => {
                state.obs.add_nd("malformed_frames", 1);
                let code = match e {
                    FrameError::UnknownVerb(_) => ErrorCode::UnknownVerb,
                    _ => ErrorCode::MalformedFrame,
                };
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(code, e.to_string()).encode(),
                );
                return;
            }
        };
        state.obs.add_nd("frames_read", 1);
        state.obs.add_nd(
            "bytes_read",
            (crate::frame::HEADER_LEN + payload.len() + crate::frame::TRAILER_LEN) as u64,
        );

        let t0 = Instant::now();
        let keep_going = match verb {
            Verb::Ping => send(state, &mut writer, Verb::Pong, &[]),
            Verb::Metrics => {
                let json = metrics_json(state, handler);
                send(state, &mut writer, Verb::MetricsReport, json.as_bytes())
            }
            Verb::Shutdown => {
                // Acknowledge first (the requester should not hang),
                // then stop the accept loop; in-flight work drains.
                send(state, &mut writer, Verb::Pong, &[]);
                state.shutdown.store(true, Ordering::SeqCst);
                if let Ok(addr) = reader.get_ref().local_addr() {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
                }
                false
            }
            Verb::Submit => match WireRequest::decode(&payload) {
                Ok(req) => {
                    let (rverb, rpayload) = handler.submit(req);
                    if rverb == Verb::Error {
                        state.obs.add_nd("bad_requests", 1);
                    }
                    send(state, &mut writer, rverb, &rpayload) && rverb != Verb::Error
                }
                Err(e) => {
                    state.obs.add_nd("bad_requests", 1);
                    send(
                        state,
                        &mut writer,
                        Verb::Error,
                        &ErrorInfo::new(ErrorCode::BadRequest, e.to_string()).encode(),
                    );
                    false
                }
            },
            Verb::PeerFetch => match CacheLookup::decode(&payload) {
                Ok(lookup) => {
                    let (rverb, rpayload) = handler.peer_fetch(lookup);
                    if rverb == Verb::Error {
                        state.obs.add_nd("bad_requests", 1);
                    }
                    send(state, &mut writer, rverb, &rpayload) && rverb != Verb::Error
                }
                Err(e) => {
                    state.obs.add_nd("bad_requests", 1);
                    send(
                        state,
                        &mut writer,
                        Verb::Error,
                        &ErrorInfo::new(ErrorCode::BadRequest, e.to_string()).encode(),
                    );
                    false
                }
            },
            // A response verb has no meaning as a request.
            Verb::Report
            | Verb::Error
            | Verb::Busy
            | Verb::MetricsReport
            | Verb::Pong
            | Verb::CachePayload => {
                send(
                    state,
                    &mut writer,
                    Verb::Error,
                    &ErrorInfo::new(
                        ErrorCode::UnexpectedVerb,
                        format!("{} is a response verb", verb.label()),
                    )
                    .encode(),
                );
                false
            }
        };
        state.obs.observe("frame_latency", t0.elapsed());
        if !keep_going {
            return;
        }
    }
}

/// Writes one response frame, recording the traffic counters. Returns
/// `false` when the peer is gone (mid-job disconnects land here) — the
/// job already ran and its result is cached, so the only casualty is
/// this connection.
fn send(state: &ServerState, w: &mut TcpStream, verb: Verb, payload: &[u8]) -> bool {
    match write_frame(w, verb, payload) {
        Ok(n) => {
            state.obs.add_nd("frames_written", 1);
            state.obs.add_nd("bytes_written", n as u64);
            true
        }
        Err(_) => {
            state.obs.add_nd("write_failures", 1);
            false
        }
    }
}

/// Renders the metrics snapshot under the handler's schema.
fn metrics_json<H: FrameHandler>(state: &ServerState, handler: &H) -> String {
    let counters = [
        "connections_accepted",
        "connections_busy",
        "accept_errors",
        "frames_read",
        "frames_written",
        "bytes_read",
        "bytes_written",
        "malformed_frames",
        "bad_requests",
        "write_failures",
    ];
    let mut o = JsonObject::new();
    o.field_str("schema", handler.metrics_schema());
    for name in counters {
        o.field_u64(name, state.obs.nd_counter(name));
    }
    o.field_u64("active_connections", state.active.load(Ordering::SeqCst) as u64);
    o.field_object(
        "frame_latency",
        state.obs.histogram("frame_latency").unwrap_or_default().to_json_object(),
    );
    // The handler snapshot is already rendered byte-stable JSON; embed
    // it verbatim rather than re-serializing.
    let (name, json) = handler.snapshot();
    o.field_raw(name, &json);
    o.finish()
}
