//! Shared command-line handling for the workspace binaries.
//!
//! The bench binaries, `tpi-netd` and `tpi-cli` all speak the same
//! dialect: a `--threads N` knob, an optional list of positional names
//! that restricts what runs, and a handful of `--flag VALUE` pairs.
//! This module holds that dialect in one place so the knobs spell —
//! and misparse — the same everywhere. It lives in `tpi-net` (the
//! lowest crate with binaries) and is re-exported by `tpi-bench` for
//! its historical `tpi_bench::cli` path.

use crate::client::ClientConfig;
use std::process::exit;
use std::time::Duration;

/// The parsed common command line: the `--threads` knob plus whatever
/// arguments remain (positional selectors and binary-specific flags).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Worker threads (`0` = all hardware threads, default 1).
    pub threads: usize,
    /// Everything that was not a `--threads` flag, in order.
    pub args: Vec<String>,
}

impl Cli {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable entry point).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let (threads, args) = parse_threads(args);
        Cli { threads, args }
    }

    /// Whether `name` is selected: an empty positional list selects
    /// everything, otherwise the name must be listed. Binaries use this
    /// for circuit/figure filtering.
    pub fn selects(&self, name: &str) -> bool {
        self.args.is_empty() || self.args.iter().any(|a| a == name)
    }
}

/// Extracts a `--threads N` (or `--threads=N`) flag from an argument
/// list, returning `(threads, remaining_args)`. `0` means all hardware
/// threads; the default is 1 (fully sequential).
pub fn parse_threads(args: impl Iterator<Item = String>) -> (usize, Vec<String>) {
    fn parse(v: &str) -> usize {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--threads: expected a non-negative integer, got {v:?}");
            exit(2);
        })
    }
    let mut threads = 1usize;
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            match args.next() {
                Some(v) => threads = parse(&v),
                None => {
                    eprintln!("--threads requires a value (0 = all hardware threads)");
                    exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = parse(v);
        } else {
            rest.push(a);
        }
    }
    (threads, rest)
}

/// A cursor over `--flag VALUE` style arguments with uniform error
/// handling: missing values exit with status 2 and a message naming the
/// flag, the convention every bench binary follows.
pub struct ArgCursor {
    it: std::vec::IntoIter<String>,
}

impl ArgCursor {
    /// Wraps an argument list (typically [`Cli::args`]).
    pub fn new(args: Vec<String>) -> Self {
        ArgCursor { it: args.into_iter() }
    }

    /// The next argument, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        self.it.next()
    }

    /// The value following a `--flag`, or exit(2) naming the flag.
    pub fn value(&mut self, flag: &str) -> String {
        self.it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            exit(2);
        })
    }

    /// The value following a `--flag`, parsed, or exit(2) with a
    /// message naming the flag and the offending text.
    pub fn parsed_value<T: std::str::FromStr>(&mut self, flag: &str, expected: &str) -> T {
        let v = self.value(flag);
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: expected {expected}, got {v:?}");
            exit(2);
        })
    }
}

/// The network flags every client-facing binary shares, parsed once
/// here so `tpi-cli`, `tpi-batch` and `tpi-gatewayd` cannot drift:
///
/// | flag | meaning |
/// |------|---------|
/// | `--addr HOST:PORT` | server (or bind) address |
/// | `--addr-file PATH` | where a daemon writes its bound address |
/// | `--deadline-ms N` | per-job compute deadline |
/// | `--retry-budget-ms N` | wall-clock budget for connect/busy retries |
/// | `--retries N` | hard cap on retries (`0` = first refusal is final) |
///
/// Binaries keep their own `match` over [`ArgCursor`] for their
/// specific flags and call [`NetCliOpts::try_flag`] first; `false`
/// means "not one of mine, yours to handle".
#[derive(Debug, Clone, Default)]
pub struct NetCliOpts {
    /// `--addr`: the server address to dial (clients) or bind (daemons).
    pub addr: Option<String>,
    /// `--addr-file`: path a daemon writes its bound address to.
    pub addr_file: Option<String>,
    /// `--deadline-ms`: per-job compute deadline.
    pub deadline: Option<Duration>,
    /// `--retry-budget-ms`: wall-clock retry budget.
    pub retry_budget: Option<Duration>,
    /// `--retries`: hard retry cap.
    pub retries: Option<u32>,
}

impl NetCliOpts {
    /// Consumes `arg` if it is one of the shared flags (pulling its
    /// value off `args` with the usual exit-2-on-missing handling);
    /// returns `false` for anything binary-specific.
    pub fn try_flag(&mut self, arg: &str, args: &mut ArgCursor) -> bool {
        match arg {
            "--addr" => self.addr = Some(args.value("--addr")),
            "--addr-file" => self.addr_file = Some(args.value("--addr-file")),
            "--deadline-ms" => {
                self.deadline =
                    Some(Duration::from_millis(args.parsed_value("--deadline-ms", "milliseconds")));
            }
            "--retry-budget-ms" => {
                self.retry_budget = Some(Duration::from_millis(
                    args.parsed_value("--retry-budget-ms", "milliseconds"),
                ));
            }
            "--retries" => self.retries = Some(args.parsed_value("--retries", "a retry count")),
            _ => return false,
        }
        true
    }

    /// A [`ClientConfig`] with the parsed retry knobs folded in;
    /// untouched flags keep the defaults.
    pub fn client_config(&self) -> ClientConfig {
        let mut config = ClientConfig::default();
        if let Some(budget) = self.retry_budget {
            config.retry_budget = budget;
        }
        if let Some(cap) = self.retries {
            config.max_retries = Some(cap);
        }
        config
    }

    /// The `--addr` value, or exit(2) printing `hint`.
    pub fn require_addr(&self, hint: &str) -> String {
        self.addr.clone().unwrap_or_else(|| {
            eprintln!("--addr is required ({hint})");
            exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter().map(|x| x.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn parse_threads_variants() {
        assert_eq!(parse_threads(to_args(&[])), (1, vec![]));
        assert_eq!(parse_threads(to_args(&["s5378"])), (1, vec!["s5378".to_string()]));
        assert_eq!(parse_threads(to_args(&["--threads", "4"])), (4, vec![]));
        assert_eq!(parse_threads(to_args(&["--threads=0", "dsip"])), (0, vec!["dsip".to_string()]));
    }

    #[test]
    fn empty_selection_selects_everything() {
        let cli = Cli::from_args(to_args(&["--threads", "2"]));
        assert_eq!(cli.threads, 2);
        assert!(cli.selects("s5378") && cli.selects("anything"));
        let cli = Cli::from_args(to_args(&["s5378", "dsip"]));
        assert!(cli.selects("dsip") && !cli.selects("mult32a"));
    }

    #[test]
    fn arg_cursor_walks_flags_and_positionals() {
        let mut c = ArgCursor::new(vec!["--out".into(), "dir".into(), "pos".into()]);
        assert_eq!(c.next_arg().as_deref(), Some("--out"));
        assert_eq!(c.value("--out"), "dir");
        assert_eq!(c.next_arg().as_deref(), Some("pos"));
        assert_eq!(c.next_arg(), None);
    }

    #[test]
    fn net_cli_opts_claims_shared_flags_and_leaves_the_rest() {
        let mut opts = NetCliOpts::default();
        let raw = ["--addr", "127.0.0.1:9", "--deadline-ms", "250", "--retries", "3", "--flow"];
        let mut c = ArgCursor::new(raw.iter().map(|s| s.to_string()).collect());
        let mut leftover = Vec::new();
        while let Some(a) = c.next_arg() {
            if !opts.try_flag(&a, &mut c) {
                leftover.push(a);
            }
        }
        assert_eq!(opts.addr.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(opts.deadline, Some(Duration::from_millis(250)));
        assert_eq!(opts.retries, Some(3));
        assert_eq!(leftover, vec!["--flow".to_string()]);
        let config = opts.client_config();
        assert_eq!(config.max_retries, Some(3));
        assert_eq!(config.retry_budget, ClientConfig::default().retry_budget);
    }
}
