//! Shared command-line handling for the workspace binaries.
//!
//! The bench binaries, `tpi-netd` and `tpi-cli` all speak the same
//! dialect: a `--threads N` knob, an optional list of positional names
//! that restricts what runs, and a handful of `--flag VALUE` pairs.
//! This module holds that dialect in one place so the knobs spell —
//! and misparse — the same everywhere. It lives in `tpi-net` (the
//! lowest crate with binaries) and is re-exported by `tpi-bench` for
//! its historical `tpi_bench::cli` path.

use std::process::exit;

/// The parsed common command line: the `--threads` knob plus whatever
/// arguments remain (positional selectors and binary-specific flags).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Worker threads (`0` = all hardware threads, default 1).
    pub threads: usize,
    /// Everything that was not a `--threads` flag, in order.
    pub args: Vec<String>,
}

impl Cli {
    /// Parses the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable entry point).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let (threads, args) = parse_threads(args);
        Cli { threads, args }
    }

    /// Whether `name` is selected: an empty positional list selects
    /// everything, otherwise the name must be listed. Binaries use this
    /// for circuit/figure filtering.
    pub fn selects(&self, name: &str) -> bool {
        self.args.is_empty() || self.args.iter().any(|a| a == name)
    }
}

/// Extracts a `--threads N` (or `--threads=N`) flag from an argument
/// list, returning `(threads, remaining_args)`. `0` means all hardware
/// threads; the default is 1 (fully sequential).
pub fn parse_threads(args: impl Iterator<Item = String>) -> (usize, Vec<String>) {
    fn parse(v: &str) -> usize {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--threads: expected a non-negative integer, got {v:?}");
            exit(2);
        })
    }
    let mut threads = 1usize;
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            match args.next() {
                Some(v) => threads = parse(&v),
                None => {
                    eprintln!("--threads requires a value (0 = all hardware threads)");
                    exit(2);
                }
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = parse(v);
        } else {
            rest.push(a);
        }
    }
    (threads, rest)
}

/// A cursor over `--flag VALUE` style arguments with uniform error
/// handling: missing values exit with status 2 and a message naming the
/// flag, the convention every bench binary follows.
pub struct ArgCursor {
    it: std::vec::IntoIter<String>,
}

impl ArgCursor {
    /// Wraps an argument list (typically [`Cli::args`]).
    pub fn new(args: Vec<String>) -> Self {
        ArgCursor { it: args.into_iter() }
    }

    /// The next argument, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        self.it.next()
    }

    /// The value following a `--flag`, or exit(2) naming the flag.
    pub fn value(&mut self, flag: &str) -> String {
        self.it.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            exit(2);
        })
    }

    /// The value following a `--flag`, parsed, or exit(2) with a
    /// message naming the flag and the offending text.
    pub fn parsed_value<T: std::str::FromStr>(&mut self, flag: &str, expected: &str) -> T {
        let v = self.value(flag);
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: expected {expected}, got {v:?}");
            exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter().map(|x| x.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn parse_threads_variants() {
        assert_eq!(parse_threads(to_args(&[])), (1, vec![]));
        assert_eq!(parse_threads(to_args(&["s5378"])), (1, vec!["s5378".to_string()]));
        assert_eq!(parse_threads(to_args(&["--threads", "4"])), (4, vec![]));
        assert_eq!(parse_threads(to_args(&["--threads=0", "dsip"])), (0, vec!["dsip".to_string()]));
    }

    #[test]
    fn empty_selection_selects_everything() {
        let cli = Cli::from_args(to_args(&["--threads", "2"]));
        assert_eq!(cli.threads, 2);
        assert!(cli.selects("s5378") && cli.selects("anything"));
        let cli = Cli::from_args(to_args(&["s5378", "dsip"]));
        assert!(cli.selects("dsip") && !cli.selects("mult32a"));
    }

    #[test]
    fn arg_cursor_walks_flags_and_positionals() {
        let mut c = ArgCursor::new(vec!["--out".into(), "dir".into(), "pos".into()]);
        assert_eq!(c.next_arg().as_deref(), Some("--out"));
        assert_eq!(c.value("--out"), "dir");
        assert_eq!(c.next_arg().as_deref(), Some("pos"));
        assert_eq!(c.next_arg(), None);
    }
}
