//! The `tpi-net/v1` and `tpi-net/v2` frame codecs.
//!
//! A v1 message on the wire is one frame:
//!
//! ```text
//! +-------+---------+------+-----------+---------+------------+
//! | magic | version | verb | len (u32) | payload | fnv (u64)  |
//! | TPIN  |   0x01  | u8   | LE        | len B   | LE trailer |
//! +-------+---------+------+-----------+---------+------------+
//! ```
//!
//! A v2 frame inserts a `u32` request ID between the verb and the
//! length, so one connection can carry many in-flight requests and
//! match each response to its request without ordering assumptions:
//!
//! ```text
//! +-------+---------+------+--------------+-----------+---------+------------+
//! | magic | version | verb | req_id (u32) | len (u32) | payload | fnv (u64)  |
//! | TPIN  |   0x02  | u8   | LE           | LE        | len B   | LE trailer |
//! +-------+---------+------+--------------+-----------+---------+------------+
//! ```
//!
//! Both versions share the magic and the version byte at offset 4 —
//! that byte is the whole negotiation: a server sniffs it on the first
//! frame of a connection and commits the connection to the blocking v1
//! path or the pipelined v2 path (see [`crate::server`]).
//!
//! The trailer is the FNV-64 hash of the payload bytes (the same
//! [`Fnv64`] the cache keys use) — not a security boundary, but enough
//! to turn a torn or corrupted frame into a typed
//! [`FrameError::BadTrailer`] instead of a garbage report. Frames
//! larger than the reader's cap are rejected *before* the payload is
//! read ([`FrameError::Oversize`]), so a hostile length field cannot
//! make the server allocate unboundedly.
//!
//! Decoding never panics: every way a frame can be malformed maps to a
//! [`FrameError`] variant, and the server answers those with a
//! structured error frame and closes the connection (the stream is
//! desynchronized past the first bad byte). The non-blocking server
//! loop uses [`FrameAssembler`] — the same validation order over an
//! incrementally-fed buffer — so partial reads never block a thread.

use std::fmt;
use std::io::{self, Read, Write};
use tpi_serve::Fnv64;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TPIN";

/// The original (blocking, one-request-at-a-time) protocol version.
pub const VERSION: u8 = 1;

/// The pipelined protocol version: every frame carries a request ID.
pub const VERSION_V2: u8 = 2;

/// Default cap on payload length (16 MiB — a BLIF netlist of several
/// million gates fits with room to spare).
pub const DEFAULT_MAX_FRAME: u32 = 16 << 20;

/// Fixed v1 bytes before the payload: magic + version + verb + length.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4;

/// Fixed v2 bytes before the payload: magic + version + verb +
/// request ID + length.
pub const HEADER_LEN_V2: usize = 4 + 1 + 1 + 4 + 4;

/// Fixed bytes after the payload: the FNV-64 trailer.
pub const TRAILER_LEN: usize = 8;

/// What a frame is for. Requests flow client→server, responses
/// server→client; a server answers a response verb arriving as a
/// request with an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Verb {
    /// Request: run a job ([`crate::proto::WireRequest`] payload).
    Submit = 1,
    /// Response: the finished job ([`crate::proto::WireReport`] payload).
    Report = 2,
    /// Response: structured failure ([`crate::proto::ErrorInfo`] payload).
    Error = 3,
    /// Response: the server is at its connection cap; retry later
    /// (empty payload).
    Busy = 4,
    /// Request: server + service metrics snapshot (empty payload).
    Metrics = 5,
    /// Response: the metrics JSON (`tpi-netd-metrics/v1`, UTF-8 payload).
    MetricsReport = 6,
    /// Request: liveness probe (empty payload).
    Ping = 7,
    /// Response: liveness answer / shutdown acknowledgement (empty).
    Pong = 8,
    /// Request: begin graceful shutdown — stop accepting, drain
    /// in-flight jobs, exit (empty payload; acknowledged with `Pong`).
    Shutdown = 9,
    /// Request: look a cached payload up by its content-addressed key
    /// ([`crate::proto::CacheLookup`] payload) — how a backend pulls a
    /// result from a sibling instead of recomputing it after a gateway
    /// ring rebalance.
    PeerFetch = 10,
    /// Response: the peer-fetch answer
    /// ([`crate::proto::CacheAnswer`] payload; a miss is a valid answer).
    CachePayload = 11,
    /// Request (v2 only): a streaming batch of jobs
    /// ([`crate::proto::SubmitMany`] payload). The server answers with
    /// one [`Verb::ReportOne`] frame per job, in *completion* order,
    /// all carrying the batch frame's request ID.
    SubmitMany = 12,
    /// Response (v2 only): one finished job out of a [`Verb::SubmitMany`]
    /// batch ([`crate::proto::ReportOne`] payload, which names the
    /// batch index the report belongs to).
    ReportOne = 13,
}

impl Verb {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<Verb> {
        Some(match b {
            1 => Verb::Submit,
            2 => Verb::Report,
            3 => Verb::Error,
            4 => Verb::Busy,
            5 => Verb::Metrics,
            6 => Verb::MetricsReport,
            7 => Verb::Ping,
            8 => Verb::Pong,
            9 => Verb::Shutdown,
            10 => Verb::PeerFetch,
            11 => Verb::CachePayload,
            12 => Verb::SubmitMany,
            13 => Verb::ReportOne,
            _ => return None,
        })
    }

    /// Short label for logs and error messages.
    pub fn label(self) -> &'static str {
        match self {
            Verb::Submit => "submit",
            Verb::Report => "report",
            Verb::Error => "error",
            Verb::Busy => "busy",
            Verb::Metrics => "metrics",
            Verb::MetricsReport => "metrics-report",
            Verb::Ping => "ping",
            Verb::Pong => "pong",
            Verb::Shutdown => "shutdown",
            Verb::PeerFetch => "peer-fetch",
            Verb::CachePayload => "cache-payload",
            Verb::SubmitMany => "submit-many",
            Verb::ReportOne => "report-one",
        }
    }
}

/// Every way reading a frame can fail. `Closed` is the *clean* end of a
/// connection (EOF on a frame boundary); everything else is a protocol
/// or transport fault.
#[derive(Debug)]
pub enum FrameError {
    /// Transport error from the underlying stream.
    Io(io::Error),
    /// Clean EOF: the peer closed the connection between frames.
    Closed,
    /// EOF in the middle of a frame.
    Truncated {
        /// Bytes of the current section actually read.
        got: usize,
        /// Bytes the section needed.
        want: usize,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Declared payload length exceeds the reader's cap.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The reader's cap.
        max: u32,
    },
    /// The verb byte is not a known [`Verb`].
    UnknownVerb(u8),
    /// The FNV-64 trailer does not match the payload.
    BadTrailer {
        /// Hash recomputed from the payload read.
        expected: u64,
        /// Hash the frame carried.
        observed: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { got, want } => {
                write!(f, "frame truncated: got {got} of {want} bytes")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this side speaks v{VERSION} and \
                     v{VERSION_V2})"
                )
            }
            FrameError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::UnknownVerb(v) => write!(f, "unknown verb byte {v:#04x}"),
            FrameError::BadTrailer { expected, observed } => write!(
                f,
                "frame checksum mismatch: payload hashes to {expected:016x}, trailer says \
                 {observed:016x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// FNV-64 of the payload — the trailer every frame carries.
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(payload);
    h.finish()
}

/// Renders one complete frame (header + payload + trailer) as bytes.
///
/// Panics if `payload` exceeds `u32::MAX` bytes (no realistic payload
/// does; the read side additionally enforces its own cap).
pub fn encode_frame(verb: Verb, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload fits in a u32 length field");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(verb as u8);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    buf
}

/// Writes one frame in a single `write_all` (fewer syscalls, and no
/// interleaving hazard if a writer ever races). Returns the number of
/// bytes put on the wire.
pub fn write_frame(w: &mut impl Write, verb: Verb, payload: &[u8]) -> io::Result<usize> {
    let buf = encode_frame(verb, payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len())
}

/// Reads exactly `buf.len()` bytes, mapping EOF to
/// [`FrameError::Closed`] (nothing read yet *and* `clean_eof`) or
/// [`FrameError::Truncated`] (mid-section).
fn read_section(r: &mut impl Read, buf: &mut [u8], clean_eof: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if filled == 0 && clean_eof {
                    FrameError::Closed
                } else {
                    FrameError::Truncated { got: filled, want: buf.len() }
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, enforcing `max_frame` on the declared payload
/// length, and returns its verb and payload.
///
/// Validation order: magic, version, length cap, verb, then (after the
/// payload is read) the checksum trailer — so the cheapest rejections
/// happen before any allocation.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<(Verb, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_section(r, &mut header, true)?;

    let magic: [u8; 4] = header[0..4].try_into().expect("slice length matches");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes(header[6..10].try_into().expect("slice length matches"));
    if len > max_frame {
        return Err(FrameError::Oversize { len, max: max_frame });
    }
    let verb = Verb::from_u8(header[5]).ok_or(FrameError::UnknownVerb(header[5]))?;

    let mut payload = vec![0u8; len as usize];
    read_section(r, &mut payload, false)?;

    let mut trailer = [0u8; TRAILER_LEN];
    read_section(r, &mut trailer, false)?;
    let observed = u64::from_le_bytes(trailer);
    let expected = payload_checksum(&payload);
    if observed != expected {
        return Err(FrameError::BadTrailer { expected, observed });
    }
    Ok((verb, payload))
}

/// Renders one complete v2 frame (header + payload + trailer).
///
/// Panics if `payload` exceeds `u32::MAX` bytes (no realistic payload
/// does; the read side additionally enforces its own cap).
pub fn encode_frame_v2(verb: Verb, req_id: u32, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload fits in a u32 length field");
    let mut buf = Vec::with_capacity(HEADER_LEN_V2 + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION_V2);
    buf.push(verb as u8);
    buf.extend_from_slice(&req_id.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    buf
}

/// Writes one v2 frame in a single `write_all`. Returns the number of
/// bytes put on the wire.
pub fn write_frame_v2(
    w: &mut impl Write,
    verb: Verb,
    req_id: u32,
    payload: &[u8],
) -> io::Result<usize> {
    let buf = encode_frame_v2(verb, req_id, payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len())
}

/// Validates a complete v2 header, returning `(verb, req_id, len)`.
///
/// Validation order matches [`read_frame`]: magic, version, length cap,
/// verb — the cheapest rejections first, all before any allocation.
fn parse_header_v2(
    header: &[u8; HEADER_LEN_V2],
    max_frame: u32,
) -> Result<(Verb, u32, u32), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("slice length matches");
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION_V2 {
        return Err(FrameError::BadVersion(header[4]));
    }
    let req_id = u32::from_le_bytes(header[6..10].try_into().expect("slice length matches"));
    let len = u32::from_le_bytes(header[10..14].try_into().expect("slice length matches"));
    if len > max_frame {
        return Err(FrameError::Oversize { len, max: max_frame });
    }
    let verb = Verb::from_u8(header[5]).ok_or(FrameError::UnknownVerb(header[5]))?;
    Ok((verb, req_id, len))
}

/// Reads one v2 frame from a blocking stream, returning its verb,
/// request ID, and payload. This is the client-side reader; the server
/// side uses [`FrameAssembler`] so partial reads never pin a thread.
pub fn read_frame_v2(
    r: &mut impl Read,
    max_frame: u32,
) -> Result<(Verb, u32, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN_V2];
    read_section(r, &mut header, true)?;
    let (verb, req_id, len) = parse_header_v2(&header, max_frame)?;

    let mut payload = vec![0u8; len as usize];
    read_section(r, &mut payload, false)?;

    let mut trailer = [0u8; TRAILER_LEN];
    read_section(r, &mut trailer, false)?;
    let observed = u64::from_le_bytes(trailer);
    let expected = payload_checksum(&payload);
    if observed != expected {
        return Err(FrameError::BadTrailer { expected, observed });
    }
    Ok((verb, req_id, payload))
}

/// Incremental v2 frame parser for the non-blocking server loop: feed
/// it whatever bytes a readiness pass produced, pull complete frames
/// out. Validation is identical to [`read_frame_v2`] (same order, same
/// typed errors) — the only difference is that "not enough bytes yet"
/// is `Ok(None)` instead of a blocked thread.
///
/// An error is terminal for the stream: past the first bad byte the
/// frame boundary is gone, so the caller must close the connection
/// (exactly the v1 one-strike contract).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames. Compacted
    /// lazily so a burst of small frames does not memmove per frame.
    pos: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing, once the dead prefix dominates.
        if self.pos > 0 && self.pos >= self.buf.len().saturating_sub(self.pos) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pulls the next complete frame, if the buffer holds one.
    pub fn next_frame(
        &mut self,
        max_frame: u32,
    ) -> Result<Option<(Verb, u32, Vec<u8>)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN_V2 {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN_V2] =
            avail[..HEADER_LEN_V2].try_into().expect("slice length matches");
        let (verb, req_id, len) = parse_header_v2(&header, max_frame)?;
        let total = HEADER_LEN_V2 + len as usize + TRAILER_LEN;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN_V2..HEADER_LEN_V2 + len as usize].to_vec();
        let observed = u64::from_le_bytes(
            avail[HEADER_LEN_V2 + len as usize..total].try_into().expect("slice length matches"),
        );
        let expected = payload_checksum(&payload);
        if observed != expected {
            return Err(FrameError::BadTrailer { expected, observed });
        }
        self.pos += total;
        Ok(Some((verb, req_id, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(verb: Verb, payload: &[u8]) {
        let bytes = encode_frame(verb, payload);
        let (v, p) = read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(v, verb);
        assert_eq!(p, payload);
    }

    #[test]
    fn all_verbs_roundtrip() {
        for verb in [
            Verb::Submit,
            Verb::Report,
            Verb::Error,
            Verb::Busy,
            Verb::Metrics,
            Verb::MetricsReport,
            Verb::Ping,
            Verb::Pong,
            Verb::Shutdown,
            Verb::PeerFetch,
            Verb::CachePayload,
        ] {
            assert_eq!(Verb::from_u8(verb as u8), Some(verb));
            roundtrip(verb, b"");
            roundtrip(verb, b"hello \x00\xff frame");
        }
    }

    #[test]
    fn clean_eof_is_closed_mid_frame_is_truncated() {
        assert!(matches!(
            read_frame(&mut [].as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
        let bytes = encode_frame(Verb::Ping, b"xy");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut], DEFAULT_MAX_FRAME).unwrap_err();
            assert!(matches!(err, FrameError::Truncated { .. }), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn bad_magic_version_verb_are_typed() {
        let mut bytes = encode_frame(Verb::Ping, b"");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic(_))
        ));

        let mut bytes = encode_frame(Verb::Ping, b"");
        bytes[4] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadVersion(99))
        ));

        let mut bytes = encode_frame(Verb::Ping, b"");
        bytes[5] = 0xEE;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::UnknownVerb(0xEE))
        ));
    }

    #[test]
    fn oversize_is_rejected_before_reading_the_payload() {
        // Header declares 1 GiB; only the header exists. The cap must
        // reject on the declared length, never try to read (or allocate)
        // the payload.
        let mut bytes = encode_frame(Verb::Submit, b"");
        bytes[6..10].copy_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(FrameError::Oversize { len, max: 1024 }) if len == 1 << 30
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_trailer() {
        let mut bytes = encode_frame(Verb::Submit, b"payload-bytes");
        bytes[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadTrailer { .. })
        ));
    }

    #[test]
    fn write_frame_reports_wire_bytes() {
        let mut sink = Vec::new();
        let n = write_frame(&mut sink, Verb::Pong, b"abc").unwrap();
        assert_eq!(n, sink.len());
        assert_eq!(n, HEADER_LEN + 3 + TRAILER_LEN);
    }

    #[test]
    fn v2_roundtrips_all_verbs_and_ids() {
        for verb in [Verb::Submit, Verb::Report, Verb::SubmitMany, Verb::ReportOne, Verb::Busy] {
            for req_id in [0u32, 1, 7, u32::MAX] {
                let bytes = encode_frame_v2(verb, req_id, b"v2 \x00 payload");
                let (v, id, p) = read_frame_v2(&mut bytes.as_slice(), DEFAULT_MAX_FRAME).unwrap();
                assert_eq!((v, id, p.as_slice()), (verb, req_id, b"v2 \x00 payload".as_slice()));
            }
        }
    }

    #[test]
    fn v2_reader_rejects_v1_frames_and_vice_versa() {
        let v1 = encode_frame(Verb::Ping, b"");
        assert!(matches!(
            read_frame_v2(&mut v1.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadVersion(1))
        ));
        let v2 = encode_frame_v2(Verb::Ping, 9, b"");
        assert!(matches!(
            read_frame(&mut v2.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadVersion(2))
        ));
    }

    #[test]
    fn assembler_yields_frames_across_arbitrary_chunking() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame_v2(Verb::Submit, 1, b"first"));
        wire.extend_from_slice(&encode_frame_v2(Verb::Ping, 2, b""));
        wire.extend_from_slice(&encode_frame_v2(Verb::SubmitMany, 3, b"third payload"));
        // Feed one byte at a time: the assembler must never yield a
        // frame early, and must yield all three in order.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            asm.feed(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME).unwrap() {
                got.push(f);
            }
        }
        assert_eq!(asm.pending(), 0);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (Verb::Submit, 1, b"first".to_vec()));
        assert_eq!(got[1], (Verb::Ping, 2, Vec::new()));
        assert_eq!(got[2], (Verb::SubmitMany, 3, b"third payload".to_vec()));
    }

    /// Every split point of a v2 frame — including each header-internal
    /// boundary (magic / version / verb / req-id / length) — must yield
    /// nothing before the final byte and exactly one frame after it.
    #[test]
    fn assembler_is_immune_to_header_boundary_splits() {
        let frame = encode_frame_v2(Verb::Submit, 0xDEAD_BEEF, b"split me");
        for cut in 0..frame.len() {
            let mut asm = FrameAssembler::new();
            asm.feed(&frame[..cut]);
            assert!(
                asm.next_frame(DEFAULT_MAX_FRAME).unwrap().is_none(),
                "cut at {cut}: no early frame"
            );
            asm.feed(&frame[cut..]);
            let got = asm.next_frame(DEFAULT_MAX_FRAME).unwrap().expect("complete after cut");
            assert_eq!(got, (Verb::Submit, 0xDEAD_BEEF, b"split me".to_vec()));
            assert!(asm.next_frame(DEFAULT_MAX_FRAME).unwrap().is_none());
            assert_eq!(asm.pending(), 0);
        }
    }

    /// Many connections, each with its own assembler, fed round-robin
    /// in adversarial chunk sizes (connection `c` always feeds
    /// `c + 1` bytes at a time, so connection 0 is a pure 1-byte drip).
    /// Interleaving must not leak bytes or frames between assemblers.
    #[test]
    fn assembler_interleaved_across_many_connections() {
        const CONNS: usize = 8;
        let streams: Vec<Vec<(Verb, u32, Vec<u8>)>> = (0..CONNS as u32)
            .map(|c| {
                vec![
                    (Verb::Submit, c * 100 + 1, vec![c as u8; (c as usize) * 37 + 1]),
                    (Verb::Ping, c * 100 + 2, Vec::new()),
                    (Verb::SubmitMany, c * 100 + 3, format!("conn-{c}-batch").into_bytes()),
                ]
            })
            .collect();
        let wires: Vec<Vec<u8>> = streams
            .iter()
            .map(|frames| {
                frames
                    .iter()
                    .flat_map(|(v, id, p)| encode_frame_v2(*v, *id, p))
                    .collect::<Vec<u8>>()
            })
            .collect();
        let mut asms: Vec<FrameAssembler> = (0..CONNS).map(|_| FrameAssembler::new()).collect();
        let mut offsets = [0usize; CONNS];
        let mut got: Vec<Vec<(Verb, u32, Vec<u8>)>> = vec![Vec::new(); CONNS];
        // Round-robin until every wire is fully fed and drained.
        while (0..CONNS).any(|c| offsets[c] < wires[c].len()) {
            for c in 0..CONNS {
                let chunk = (c + 1).min(wires[c].len() - offsets[c]);
                if chunk == 0 {
                    continue;
                }
                asms[c].feed(&wires[c][offsets[c]..offsets[c] + chunk]);
                offsets[c] += chunk;
                while let Some(f) = asms[c].next_frame(DEFAULT_MAX_FRAME).unwrap() {
                    got[c].push(f);
                }
            }
        }
        for c in 0..CONNS {
            assert_eq!(got[c], streams[c], "connection {c} frames in order, nothing leaked");
            assert_eq!(asms[c].pending(), 0);
        }
    }

    #[test]
    fn assembler_errors_match_the_blocking_reader() {
        // Oversize rejected on the header alone, before the payload
        // arrives.
        let mut bytes = encode_frame_v2(Verb::Submit, 1, b"");
        bytes[10..14].copy_from_slice(&(1u32 << 30).to_le_bytes());
        let mut asm = FrameAssembler::new();
        asm.feed(&bytes[..HEADER_LEN_V2]);
        assert!(matches!(
            asm.next_frame(1024),
            Err(FrameError::Oversize { len, max: 1024 }) if len == 1 << 30
        ));

        // Corrupt payload fails the trailer.
        let mut bytes = encode_frame_v2(Verb::Submit, 1, b"payload");
        bytes[HEADER_LEN_V2] ^= 0x01;
        let mut asm = FrameAssembler::new();
        asm.feed(&bytes);
        assert!(matches!(asm.next_frame(DEFAULT_MAX_FRAME), Err(FrameError::BadTrailer { .. })));
    }
}
