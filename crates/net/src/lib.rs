//! `tpi-net`: the [`tpi_serve::JobService`] over TCP, std-only.
//!
//! The container has no async runtime and no serialization crates, so
//! this crate is deliberately boring: blocking sockets, one thread per
//! connection (bounded — see below), and a hand-rolled binary protocol.
//!
//! # The `tpi-net/v1` frame
//!
//! Every message on the wire is one frame:
//!
//! | bytes | field | contents |
//! |------:|-------|----------|
//! | 4 | magic | `TPIN` |
//! | 1 | version | `1` |
//! | 1 | verb | see [`frame::Verb`] |
//! | 4 | length | payload length, u32 LE, capped at [`frame::DEFAULT_MAX_FRAME`] |
//! | n | payload | verb-specific bytes |
//! | 8 | trailer | FNV-1a 64 of the payload, u64 LE (same hasher as the cache keys) |
//!
//! The length is validated *before* the payload is read, so an
//! adversarial header cannot make the server allocate 4 GiB; the
//! trailer catches truncation and corruption with a typed error rather
//! than a garbage decode.
//!
//! # Backpressure, not queues
//!
//! [`server::NetServer`] admits at most
//! [`server::ServerConfig::max_connections`] concurrent connections.
//! Past the cap it answers a [`frame::Verb::Busy`] frame and closes —
//! the wait moves into the *client's* retry loop ([`client::Client`],
//! seeded-deterministic exponential backoff) instead of an unbounded
//! server-side queue. Inside a connection, job-level parallelism is
//! still the [`tpi_serve`] worker pool's business; the two layers
//! compose without knowing about each other.
//!
//! # Byte identity
//!
//! A job's `tpi-serve/v1` payload crosses the wire as the raw bytes
//! the service produced — the server never re-serializes it — so a
//! loopback round trip is byte-identical to calling
//! [`tpi_serve::JobService`] in-process. The integration tests assert
//! exactly that, at `--threads 1` and `--threads 0`.

pub mod cli;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use frame::{
    encode_frame, payload_checksum, read_frame, write_frame, FrameError, Verb, DEFAULT_MAX_FRAME,
};
pub use proto::{
    CacheAnswer, CacheLookup, ErrorCode, ErrorInfo, ProtoError, WireReport, WireRequest,
};
pub use server::{
    write_addr_file, FrameHandler, JobHandler, NetServer, ServerConfig, ServerHandle,
};
