//! `tpi-net`: the [`tpi_serve::JobService`] over TCP, std-only.
//!
//! The container has no async runtime and no serialization crates, so
//! this crate is deliberately boring: sockets, a hand-rolled binary
//! protocol, and — since `tpi-net/v2` — a single poll-based readiness
//! loop on the server instead of a thread per connection.
//!
//! # The frame: `tpi-net/v1` and `tpi-net/v2`
//!
//! Every message on the wire is one frame. v1 is strictly
//! request/response; v2 adds a request ID so many jobs can be in
//! flight on one connection and complete out of order:
//!
//! | bytes | field | v1 | v2 |
//! |------:|-------|----|----|
//! | 4 | magic | `TPIN` | `TPIN` |
//! | 1 | version | `1` | `2` |
//! | 1 | verb | see [`frame::Verb`] | same |
//! | 4 | request ID | — | u32 LE, echoed on the response |
//! | 4 | length | payload length, u32 LE, capped at [`frame::DEFAULT_MAX_FRAME`] | same |
//! | n | payload | verb-specific bytes | same |
//! | 8 | trailer | FNV-1a 64 of the payload, u64 LE (same hasher as the cache keys) | same |
//!
//! The length is validated *before* the payload is read, so an
//! adversarial header cannot make the server allocate 4 GiB; the
//! trailer catches truncation and corruption with a typed error rather
//! than a garbage decode. The server sniffs the first five bytes of
//! each connection to negotiate: `TPIN\x01` gets the v1 blocking path,
//! `TPIN\x02` the v2 readiness loop. v1 clients keep working unchanged.
//!
//! # Backpressure, not queues
//!
//! On v1 connections [`server::NetServer`] admits at most
//! [`server::ServerConfig::max_connections`] concurrent connections
//! and answers [`frame::Verb::Busy`] past the cap, closing the
//! connection. On v2 connections `Busy` is *per request*: a submit
//! past [`server::ServerConfig::max_inflight`] is refused with its
//! request ID while the connection stays open, and
//! [`session::Connection`] retries just that request with the same
//! seeded-deterministic exponential backoff [`client::Client`] uses
//! for connects. Either way the wait lives in the client, not in an
//! unbounded server-side queue; job-level parallelism is still the
//! [`tpi_serve`] worker pool's business.
//!
//! # Sessions
//!
//! [`session::Connection`] is the v2 client: open once, pipeline many
//! [`session::Connection::submit`]s, collect completions with
//! [`session::Connection::wait`] / [`session::Connection::wait_any`],
//! or ship a whole batch with [`session::Connection::submit_many`]
//! ([`frame::Verb::SubmitMany`]) and stream the per-item
//! [`frame::Verb::ReportOne`] answers back in index order. The v1
//! [`client::Client`] one-shot methods survive as deprecated
//! forwarders over a single-use session.
//!
//! # Byte identity
//!
//! A job's `tpi-serve/v1` payload crosses the wire as the raw bytes
//! the service produced — the server never re-serializes it — so a
//! loopback round trip is byte-identical to calling
//! [`tpi_serve::JobService`] in-process, on v1 and v2 alike. The
//! integration tests assert exactly that, at `--threads 1` and
//! `--threads 0`.

pub mod cli;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod session;

pub use cli::NetCliOpts;
pub use client::{Client, ClientConfig, ClientError, WireVersion};
pub use frame::{
    encode_frame, encode_frame_v2, payload_checksum, read_frame, read_frame_v2, write_frame,
    write_frame_v2, FrameAssembler, FrameError, Verb, DEFAULT_MAX_FRAME,
};
pub use proto::{
    CacheAnswer, CacheLookup, ErrorCode, ErrorInfo, ProtoError, ReportOne, SubmitMany, WireReport,
    WireRequest,
};
pub use server::{
    write_addr_file, FrameHandler, JobHandler, NetServer, ServerConfig, ServerHandle,
};
pub use session::{Connection, Pending, PendingBatch};
