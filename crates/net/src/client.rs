//! The retrying client for `tpi-netd`.
//!
//! Each call opens one connection, sends one request frame, reads one
//! response frame, and closes — no pipelining state to desynchronize,
//! and the server's per-connection slots churn fast enough for the
//! [`Verb::Busy`] backpressure loop to make progress.
//!
//! Retry policy: connection failures (refused / reset / timed out) and
//! `Busy` frames are retried with exponential backoff plus
//! **seeded-deterministic jitter** until [`ClientConfig::retry_budget`]
//! is spent. The jitter stream is a pure function of
//! [`ClientConfig::seed`], so two runs of a test (or a batch worker
//! with a fixed per-worker seed) back off identically — retries are
//! reproducible, not a new source of nondeterminism. Transport errors
//! *after* the request is written are **not** retried: the job may
//! already be running, and the caller decides whether resubmitting
//! (idempotent thanks to the content-addressed cache) is worth it.

use crate::frame::{read_frame, write_frame, FrameError, Verb, DEFAULT_MAX_FRAME};
use crate::proto::{CacheAnswer, CacheLookup, ErrorInfo, ProtoError, WireReport, WireRequest};
use crate::session::Connection;
use std::fmt;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which frame protocol a [`Client`] speaks on the wire.
///
/// The session API ([`crate::session::Connection`]) is v2-only; this
/// selector exists for the deprecated one-shot [`Client`] calls, whose
/// v2 default forwards each call over a single-use session. Pin
/// [`WireVersion::V1`] to hold a client on the legacy one-connection-
/// per-call protocol — the byte-identity gates in CI do exactly that
/// to prove v1 and v2 answers agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// Legacy `tpi-net/v1`: one connection, one request, one response.
    V1,
    /// `tpi-net/v2`: request IDs, pipelining, streaming batches.
    #[default]
    V2,
}

/// Tuning for one [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout once connected.
    pub io_timeout: Duration,
    /// Total time the client may spend retrying connect failures and
    /// `Busy` answers before giving up ([`Duration::ZERO`] disables
    /// retries entirely — the first refusal is final).
    pub retry_budget: Duration,
    /// Hard cap on retries regardless of the time budget: `Some(0)`
    /// makes the first refusal final (the scriptable `--retries 0`
    /// path), `None` leaves the budget in charge.
    pub max_retries: Option<u32>,
    /// First backoff step (doubles each retry).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Largest accepted response payload, in bytes.
    pub max_frame: u32,
    /// Which frame protocol to speak (deprecated one-shot calls only;
    /// sessions are v2 by construction).
    pub wire: WireVersion,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(120),
            retry_budget: Duration::from_secs(30),
            max_retries: None,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            seed: 0x0709_15EE_DD06_F00D,
            max_frame: DEFAULT_MAX_FRAME,
            wire: WireVersion::default(),
        }
    }
}

/// Every way a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// The address string did not resolve.
    BadAddr(String),
    /// Could not connect within the retry budget.
    Connect {
        /// Connection attempts made.
        attempts: u32,
        /// The final attempt's error.
        last: io::Error,
    },
    /// The server answered `Busy` until the retry budget ran out.
    Busy {
        /// Attempts that reached the server and were turned away.
        attempts: u32,
    },
    /// Transport error after connecting.
    Io(io::Error),
    /// The response frame was malformed.
    Frame(FrameError),
    /// The response payload did not decode.
    Proto(ProtoError),
    /// The server answered with a structured error frame.
    Remote(ErrorInfo),
    /// The server answered with a verb this call cannot use.
    UnexpectedVerb(Verb),
    /// The session's transport died; outstanding and future calls on
    /// that [`crate::session::Connection`] fail with the stored reason
    /// until the caller reopens.
    ConnectionLost(String),
    /// `wait_any` was handed an empty ticket set.
    NoPending,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::BadAddr(a) => write!(f, "cannot resolve {a:?}"),
            ClientError::Connect { attempts, last } => {
                write!(f, "connect failed after {attempts} attempt(s): {last}")
            }
            ClientError::Busy { attempts } => {
                write!(f, "server busy after {attempts} attempt(s)")
            }
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
            ClientError::Proto(e) => write!(f, "bad response payload: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedVerb(v) => {
                write!(f, "unexpected response verb {:?}", v.label())
            }
            ClientError::ConnectionLost(reason) => {
                write!(f, "connection lost: {reason}")
            }
            ClientError::NoPending => write!(f, "wait_any on an empty ticket set"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A `tpi-netd` client: an address plus retry configuration. Cheap to
/// construct; connections are per-call.
pub struct Client {
    addr: String,
    config: ClientConfig,
    /// xorshift64* state for the jitter stream.
    rng: Mutex<u64>,
}

impl Client {
    /// A client with default configuration.
    pub fn new(addr: impl Into<String>) -> Self {
        Client::with_config(addr, ClientConfig::default())
    }

    /// A client with explicit configuration.
    pub fn with_config(addr: impl Into<String>, config: ClientConfig) -> Self {
        let seed = if config.seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { config.seed };
        Client { addr: addr.into(), config, rng: Mutex::new(seed) }
    }

    /// The configured server address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Opens the single-use session a v2-mode one-shot call rides on.
    fn single_use(&self) -> Result<Connection, ClientError> {
        Connection::open_with(&self.addr, self.config.clone())
    }

    /// Submits a job and waits for its report.
    #[deprecated(
        since = "0.9.0",
        note = "open a session once with Connection::open, then submit()/wait(); \
                see the migration table in README.md"
    )]
    pub fn submit(&self, request: &WireRequest) -> Result<WireReport, ClientError> {
        if self.config.wire == WireVersion::V2 {
            let conn = self.single_use()?;
            let ticket = conn.submit(request)?;
            return conn.wait(ticket);
        }
        let (verb, payload) = self.call(Verb::Submit, &request.encode())?;
        match verb {
            Verb::Report => Ok(WireReport::decode(&payload)?),
            other => Err(self.classify(other, &payload)),
        }
    }

    /// Fetches the server's `tpi-netd-metrics/v1` JSON.
    #[deprecated(
        since = "0.9.0",
        note = "open a session once with Connection::open, then metrics_json(); \
                see the migration table in README.md"
    )]
    pub fn metrics_json(&self) -> Result<String, ClientError> {
        if self.config.wire == WireVersion::V2 {
            return self.single_use()?.metrics_json();
        }
        let (verb, payload) = self.call(Verb::Metrics, &[])?;
        match verb {
            Verb::MetricsReport => String::from_utf8(payload)
                .map_err(|_| ClientError::Proto(ProtoError::BadUtf8 { field: "metrics json" })),
            other => Err(self.classify(other, &payload)),
        }
    }

    /// Liveness probe.
    #[deprecated(
        since = "0.9.0",
        note = "open a session once with Connection::open, then ping(); \
                see the migration table in README.md"
    )]
    pub fn ping(&self) -> Result<(), ClientError> {
        if self.config.wire == WireVersion::V2 {
            return self.single_use()?.ping();
        }
        let (verb, payload) = self.call(Verb::Ping, &[])?;
        match verb {
            Verb::Pong => Ok(()),
            other => Err(self.classify(other, &payload)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    /// Not deprecated: a drain request is one-shot by nature.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        if self.config.wire == WireVersion::V2 {
            return self.single_use()?.shutdown_server();
        }
        let (verb, payload) = self.call(Verb::Shutdown, &[])?;
        match verb {
            Verb::Pong => Ok(()),
            other => Err(self.classify(other, &payload)),
        }
    }

    /// Looks a cached payload up on the server by its content-addressed
    /// key ([`crate::frame::Verb::PeerFetch`]). `Ok(None)` is a miss —
    /// a valid answer, not an error. This is what a backend calls on a
    /// sibling before recomputing a result it lost in a ring rebalance.
    #[deprecated(
        since = "0.9.0",
        note = "open a session once with Connection::open, then peer_fetch(); \
                see the migration table in README.md"
    )]
    pub fn peer_fetch(&self, key: u64) -> Result<Option<String>, ClientError> {
        if self.config.wire == WireVersion::V2 {
            return self.single_use()?.peer_fetch(key);
        }
        let (verb, payload) = self.call(Verb::PeerFetch, &CacheLookup { key }.encode())?;
        match verb {
            Verb::CachePayload => Ok(CacheAnswer::decode(&payload)?.payload),
            other => Err(self.classify(other, &payload)),
        }
    }

    /// Turns a non-success response into the matching error.
    fn classify(&self, verb: Verb, payload: &[u8]) -> ClientError {
        match verb {
            Verb::Error => match ErrorInfo::decode(payload) {
                Ok(info) => ClientError::Remote(info),
                Err(e) => ClientError::Proto(e),
            },
            other => ClientError::UnexpectedVerb(other),
        }
    }

    /// Whether a retry is still allowed after `attempt` tries: inside
    /// the time budget *and* under the hard retry cap (when set).
    fn may_retry(&self, attempt: u32, give_up: Instant) -> bool {
        Instant::now() < give_up && self.config.max_retries.is_none_or(|m| attempt <= m)
    }

    /// One request/response exchange with connect + `Busy` retry.
    fn call(&self, verb: Verb, payload: &[u8]) -> Result<(Verb, Vec<u8>), ClientError> {
        let addr = resolve(&self.addr)?;
        let give_up = Instant::now() + self.config.retry_budget;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let stream = match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(s) => s,
                Err(last) => {
                    if retriable_connect(&last) && self.may_retry(attempt, give_up) {
                        std::thread::sleep(self.backoff(attempt));
                        continue;
                    }
                    return Err(ClientError::Connect { attempts: attempt, last });
                }
            };
            let _ = stream.set_read_timeout(Some(self.config.io_timeout));
            let _ = stream.set_write_timeout(Some(self.config.io_timeout));
            let _ = stream.set_nodelay(true);
            let mut writer = stream.try_clone().map_err(ClientError::Io)?;
            let mut reader = BufReader::new(stream);

            write_frame(&mut writer, verb, payload).map_err(ClientError::Io)?;
            let (rverb, rpayload) = read_frame(&mut reader, self.config.max_frame)?;
            if rverb == Verb::Busy {
                if self.may_retry(attempt, give_up) {
                    std::thread::sleep(self.backoff(attempt));
                    continue;
                }
                return Err(ClientError::Busy { attempts: attempt });
            }
            return Ok((rverb, rpayload));
        }
    }

    /// Exponential backoff with deterministic jitter: step `k` sleeps
    /// `min(base · 2^(k-1), cap)` plus a jitter draw in `[0, base)`.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_micros(100));
        let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let step = exp.min(self.config.backoff_cap);
        let jitter_micros = self.next_rand() % (base.as_micros().max(1) as u64);
        step + Duration::from_micros(jitter_micros)
    }

    /// xorshift64*: tiny, seedable, and plenty for jitter.
    fn next_rand(&self) -> u64 {
        let mut s = self.rng.lock().expect("jitter lock never poisoned");
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

pub(crate) fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| ClientError::BadAddr(addr.to_string()))
}

/// Connect-phase errors worth retrying: the server may be starting, at
/// its accept backlog, or mid-restart.
pub(crate) fn retriable_connect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stream_is_deterministic_per_seed() {
        let a = Client::with_config("127.0.0.1:1", ClientConfig { seed: 7, ..Default::default() });
        let b = Client::with_config("127.0.0.1:1", ClientConfig { seed: 7, ..Default::default() });
        let c = Client::with_config("127.0.0.1:1", ClientConfig { seed: 8, ..Default::default() });
        let draw = |cl: &Client| (0..8).map(|_| cl.next_rand()).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b), "same seed, same stream");
        assert_ne!(draw(&a), draw(&c), "different seed, different stream");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            seed: 1,
            ..Default::default()
        };
        let c = Client::with_config("127.0.0.1:1", cfg);
        // Jitter is < base, so the deterministic part dominates.
        assert!(c.backoff(1) < Duration::from_millis(20));
        assert!(c.backoff(4) >= Duration::from_millis(80));
        assert!(c.backoff(30) < Duration::from_millis(90), "capped plus jitter");
    }

    #[test]
    fn zero_seed_is_replaced() {
        let c = Client::with_config("x:1", ClientConfig { seed: 0, ..Default::default() });
        assert_ne!(c.next_rand(), 0, "xorshift state must never be zero");
    }

    #[test]
    #[allow(deprecated)]
    fn zero_max_retries_makes_the_first_refusal_final() {
        // Port 1 refuses on any sane loopback; with a hard cap of zero
        // retries the refusal must surface as one attempt even though
        // the time budget would allow thirty seconds of backoff.
        let c = Client::with_config(
            "127.0.0.1:1",
            ClientConfig {
                max_retries: Some(0),
                retry_budget: Duration::from_secs(30),
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        match c.ping() {
            Err(ClientError::Connect { attempts: 1, .. }) => {}
            other => panic!("expected a single-attempt Connect error, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "no backoff loop may run");
    }

    #[test]
    #[allow(deprecated)]
    fn unresolvable_addr_is_typed() {
        let c = Client::new("definitely-not-a-host-name-7f3a:99999");
        match c.ping() {
            Err(ClientError::BadAddr(_)) => {}
            other => panic!("expected BadAddr, got {other:?}"),
        }
    }
}
