//! The session-oriented client: one persistent `tpi-net/v2` connection
//! carrying many in-flight requests.
//!
//! A [`Connection`] is the v2 counterpart of the one-shot [`Client`]
//! calls: open once, then [`Connection::submit`] returns a [`Pending`]
//! ticket immediately and [`Connection::wait`] /
//! [`Connection::wait_any`] collect completions — in whatever order the
//! server finishes them. Every request carries a connection-unique
//! `u32` request ID; a background reader thread routes each response
//! frame to its ticket, so any number of threads may share one
//! connection (`Connection` is `Send + Sync`).
//!
//! Retry policy matches [`Client`]: connect failures retry with
//! seeded-deterministic backoff inside [`ClientConfig::retry_budget`],
//! and a per-request [`Verb::Busy`] answer is re-submitted (same
//! request ID, same bytes) after a backoff draw from the same seeded
//! jitter stream. Transport errors are **not** retried: the connection
//! is declared dead, every outstanding ticket fails with
//! [`ClientError::ConnectionLost`], and the caller reopens.
//!
//! [`Client`]: crate::client::Client

use crate::client::{resolve, retriable_connect, ClientConfig, ClientError};
use crate::frame::{encode_frame_v2, read_frame_v2, FrameError, Verb};
use crate::proto::{
    CacheAnswer, CacheLookup, ErrorInfo, ProtoError, ReportOne, SubmitMany, WireReport,
};
use crate::WireRequest;
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A ticket for one in-flight request on a [`Connection`]. Redeem it
/// with [`Connection::wait`] (or hand a set to
/// [`Connection::wait_any`]). Dropping a ticket abandons the response:
/// the job still runs server-side (and lands in its cache), the bytes
/// are discarded on arrival.
#[derive(Debug)]
pub struct Pending {
    id: u32,
}

impl Pending {
    /// The request ID this ticket redeems (diagnostic; IDs are
    /// connection-scoped).
    pub fn id(&self) -> u32 {
        self.id
    }
}

/// A ticket for one in-flight [`Connection::submit_many`] batch.
#[derive(Debug)]
pub struct PendingBatch {
    id: u32,
    count: usize,
}

impl PendingBatch {
    /// The batch frame's request ID.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// How many reports the batch will produce.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the batch was empty (zero requests, zero reports).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// What one request ID is waiting for. The encoded request frame stays
/// in the slot so a [`Verb::Busy`] answer can be re-sent
/// byte-identically under the same ID (`busy` flags that one arrived;
/// the *waiter* performs the backoff and the re-send — the reader
/// thread never sleeps).
enum Slot {
    /// Single-response request, response not yet arrived.
    Waiting { frame: Vec<u8>, attempts: u32, busy: bool },
    /// Single-frame response arrived (Report, Pong, Error, ...).
    Done { verb: Verb, payload: Vec<u8> },
    /// A batch gathering its per-index reports.
    Gathering {
        frame: Vec<u8>,
        attempts: u32,
        busy: bool,
        reports: Vec<Option<WireReport>>,
        remaining: usize,
    },
    /// A batch whose reports all arrived, in index order.
    BatchDone { reports: Vec<WireReport> },
}

/// Shared connection state behind the reader thread and every caller.
struct SessionState {
    slots: HashMap<u32, Slot>,
    /// Why the connection died, once it has (sticky).
    dead: Option<String>,
}

struct Inner {
    config: ClientConfig,
    /// Write half; one lock per frame keeps writes atomic.
    writer: Mutex<TcpStream>,
    state: Mutex<SessionState>,
    completed: Condvar,
    next_id: AtomicU32,
    /// xorshift64* state for the jitter stream.
    rng: Mutex<u64>,
}

/// xorshift64*: tiny, seedable, and plenty for jitter.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Exponential backoff with deterministic jitter: step `k` sleeps
/// `min(base · 2^(k-1), cap)` plus a jitter draw in `[0, base)`.
fn backoff_step(config: &ClientConfig, attempt: u32, rand: u64) -> Duration {
    let base = config.backoff_base.max(Duration::from_micros(100));
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let step = exp.min(config.backoff_cap);
    let jitter_micros = rand % (base.as_micros().max(1) as u64);
    step + Duration::from_micros(jitter_micros)
}

impl Inner {
    fn backoff(&self, attempt: u32) -> Duration {
        let mut s = self.rng.lock().expect("jitter lock never poisoned");
        backoff_step(&self.config, attempt, xorshift(&mut s))
    }

    /// Whether a retry is still allowed after `attempt` tries: inside
    /// the time budget *and* under the hard retry cap (when set).
    fn may_retry(&self, attempt: u32, give_up: Instant) -> bool {
        Instant::now() < give_up && self.config.max_retries.is_none_or(|m| attempt <= m)
    }

    /// Sends one already-encoded frame.
    fn send_frame(&self, frame: &[u8]) -> Result<(), ClientError> {
        let mut w = self.writer.lock().expect("writer lock never poisoned");
        w.write_all(frame).map_err(ClientError::Io)?;
        w.flush().map_err(ClientError::Io)
    }

    fn dead_reason(&self) -> Option<String> {
        self.state.lock().expect("session lock never poisoned").dead.clone()
    }

    /// Marks the connection dead and wakes every waiter.
    fn declare_dead(&self, reason: String) {
        let mut st = self.state.lock().expect("session lock never poisoned");
        if st.dead.is_none() {
            st.dead = Some(reason);
        }
        drop(st);
        self.completed.notify_all();
    }
}

/// A persistent, pipelined session with one server. See the module
/// docs for the contract; see [`Client`] for the deprecated one-shot
/// calls this replaces.
///
/// [`Client`]: crate::client::Client
pub struct Connection {
    inner: Arc<Inner>,
    /// Clone of the stream, kept to unblock the reader on drop.
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Connection {
    /// Opens a session with default configuration.
    pub fn open(addr: impl AsRef<str>) -> Result<Connection, ClientError> {
        Connection::open_with(addr, ClientConfig::default())
    }

    /// Opens a session: resolves, connects (with the same seeded retry
    /// loop as the one-shot client), and starts the reader thread.
    pub fn open_with(
        addr: impl AsRef<str>,
        config: ClientConfig,
    ) -> Result<Connection, ClientError> {
        let mut rng = if config.seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { config.seed };
        let sockaddr = resolve(addr.as_ref())?;
        // Connect with the same retry/backoff/jitter discipline as the
        // one-shot client; the jitter state carries over into the
        // session's stream so the whole connection draws one sequence.
        let give_up = Instant::now() + config.retry_budget;
        let mut attempt: u32 = 0;
        let stream = loop {
            attempt += 1;
            match TcpStream::connect_timeout(&sockaddr, config.connect_timeout) {
                Ok(s) => break s,
                Err(last) => {
                    let may =
                        Instant::now() < give_up && config.max_retries.is_none_or(|m| attempt <= m);
                    if retriable_connect(&last) && may {
                        std::thread::sleep(backoff_step(&config, attempt, xorshift(&mut rng)));
                        continue;
                    }
                    return Err(ClientError::Connect { attempts: attempt, last });
                }
            }
        };
        let _ = stream.set_nodelay(true);
        // Writes are bounded; reads are not — a pipelined job may
        // legitimately take long, and idle sessions stay open forever.
        // Caller-side waits are bounded by `io_timeout` in the wait
        // calls instead.
        let _ = stream.set_write_timeout(Some(config.io_timeout));
        let reader_stream = stream.try_clone().map_err(ClientError::Io)?;
        let writer_stream = stream.try_clone().map_err(ClientError::Io)?;
        let max_frame = config.max_frame;
        let inner = Arc::new(Inner {
            config,
            writer: Mutex::new(writer_stream),
            state: Mutex::new(SessionState { slots: HashMap::new(), dead: None }),
            completed: Condvar::new(),
            next_id: AtomicU32::new(1),
            rng: Mutex::new(rng),
        });
        let reader_inner = Arc::clone(&inner);
        let reader = std::thread::Builder::new()
            .name("tpi-net-session".into())
            .spawn(move || reader_loop(reader_stream, &reader_inner, max_frame))
            .expect("spawning the session reader succeeds");
        Ok(Connection { inner, stream, reader: Some(reader) })
    }

    /// Submits a job without waiting: the returned ticket redeems the
    /// report via [`Connection::wait`].
    pub fn submit(&self, request: &WireRequest) -> Result<Pending, ClientError> {
        let id = self.start(Verb::Submit, &request.encode(), None)?;
        Ok(Pending { id })
    }

    /// Submits a whole batch in one frame ([`Verb::SubmitMany`]); the
    /// server streams one report per job back as it finishes. Admission
    /// is all-or-nothing: a `Busy` answer (retried under the budget
    /// like any other) means nothing from the batch ran.
    pub fn submit_many(&self, requests: &[WireRequest]) -> Result<PendingBatch, ClientError> {
        if requests.is_empty() {
            // Zero jobs produce zero frames in either direction; the
            // batch self-completes without touching the wire.
            let id = self.next_id();
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            st.slots.insert(id, Slot::BatchDone { reports: Vec::new() });
            return Ok(PendingBatch { id, count: 0 });
        }
        let payload = SubmitMany { requests: requests.to_vec() }.encode();
        let id = self.start(Verb::SubmitMany, &payload, Some(requests.len()))?;
        Ok(PendingBatch { id, count: requests.len() })
    }

    /// Blocks until a submitted job's report arrives. Busy answers are
    /// re-submitted under the retry budget; the wait itself is bounded
    /// by [`ClientConfig::io_timeout`].
    pub fn wait(&self, ticket: Pending) -> Result<WireReport, ClientError> {
        let (verb, payload) = self.redeem(ticket.id)?;
        match verb {
            Verb::Report => Ok(WireReport::decode(&payload)?),
            other => Err(classify(other, &payload)),
        }
    }

    /// Blocks until *one* of the given tickets completes; removes it
    /// from the set and returns it with its report. Order is completion
    /// order — the whole point of the v2 pipeline.
    pub fn wait_any(
        &self,
        tickets: &mut Vec<Pending>,
    ) -> Result<(Pending, WireReport), ClientError> {
        if tickets.is_empty() {
            return Err(ClientError::NoPending);
        }
        let give_up = Instant::now() + self.inner.config.io_timeout;
        let retry_until = Instant::now() + self.inner.config.retry_budget;
        loop {
            enum Found {
                Done(usize),
                Busy(usize),
                None,
            }
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            let mut found = Found::None;
            for (i, t) in tickets.iter().enumerate() {
                match st.slots.get(&t.id) {
                    Some(Slot::Done { .. }) => {
                        found = Found::Done(i);
                        break;
                    }
                    Some(Slot::Waiting { busy: true, .. }) => {
                        found = Found::Busy(i);
                        break;
                    }
                    _ => {}
                }
            }
            match found {
                Found::Done(i) => {
                    let ticket = tickets.remove(i);
                    let Some(Slot::Done { verb, payload }) = st.slots.remove(&ticket.id) else {
                        unreachable!("the scan just saw a Done slot");
                    };
                    drop(st);
                    return match verb {
                        Verb::Report => Ok((ticket, WireReport::decode(&payload)?)),
                        other => Err(classify(other, &payload)),
                    };
                }
                Found::Busy(i) => {
                    drop(st);
                    self.resend_after_busy(tickets[i].id, retry_until)?;
                    continue;
                }
                Found::None => {}
            }
            if let Some(reason) = st.dead.clone() {
                return Err(ClientError::ConnectionLost(reason));
            }
            let now = Instant::now();
            if now >= give_up {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no completion within io_timeout",
                )));
            }
            let (guard, _t) = self
                .inner
                .completed
                .wait_timeout(st, give_up - now)
                .expect("session lock never poisoned");
            drop(guard);
        }
    }

    /// Blocks until every report of a batch arrived, returned in batch
    /// index order (completion order is not observable here; use
    /// individual [`Connection::submit`] calls plus
    /// [`Connection::wait_any`] when it matters).
    pub fn wait_batch(&self, batch: PendingBatch) -> Result<Vec<WireReport>, ClientError> {
        let give_up = Instant::now() + self.inner.config.io_timeout;
        let retry_until = Instant::now() + self.inner.config.retry_budget;
        loop {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            match st.slots.get(&batch.id) {
                Some(Slot::BatchDone { .. }) => {
                    let Some(Slot::BatchDone { reports }) = st.slots.remove(&batch.id) else {
                        unreachable!("the probe just saw BatchDone");
                    };
                    return Ok(reports);
                }
                Some(Slot::Gathering { busy: true, .. }) => {
                    drop(st);
                    self.resend_after_busy(batch.id, retry_until)?;
                    continue;
                }
                // A whole-batch error answer replaces the slot.
                Some(Slot::Done { .. }) => {
                    let Some(Slot::Done { verb, payload }) = st.slots.remove(&batch.id) else {
                        unreachable!("the probe just saw Done");
                    };
                    return Err(classify(verb, &payload));
                }
                _ => {}
            }
            if let Some(reason) = st.dead.clone() {
                return Err(ClientError::ConnectionLost(reason));
            }
            let now = Instant::now();
            if now >= give_up {
                st.slots.remove(&batch.id);
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "batch incomplete within io_timeout",
                )));
            }
            let (guard, _t) = self
                .inner
                .completed
                .wait_timeout(st, give_up - now)
                .expect("session lock never poisoned");
            drop(guard);
        }
    }

    /// Liveness probe over this session.
    pub fn ping(&self) -> Result<(), ClientError> {
        let (verb, payload) = self.call(Verb::Ping, &[])?;
        match verb {
            Verb::Pong => Ok(()),
            other => Err(classify(other, &payload)),
        }
    }

    /// Fetches the server's metrics JSON over this session.
    pub fn metrics_json(&self) -> Result<String, ClientError> {
        let (verb, payload) = self.call(Verb::Metrics, &[])?;
        match verb {
            Verb::MetricsReport => String::from_utf8(payload)
                .map_err(|_| ClientError::Proto(ProtoError::BadUtf8 { field: "metrics json" })),
            other => Err(classify(other, &payload)),
        }
    }

    /// Looks a cached payload up on the server by its content-addressed
    /// key. `Ok(None)` is a miss — a valid answer, not an error.
    pub fn peer_fetch(&self, key: u64) -> Result<Option<String>, ClientError> {
        let (verb, payload) = self.call(Verb::PeerFetch, &CacheLookup { key }.encode())?;
        match verb {
            Verb::CachePayload => Ok(CacheAnswer::decode(&payload)?.payload),
            other => Err(classify(other, &payload)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        let (verb, payload) = self.call(Verb::Shutdown, &[])?;
        match verb {
            Verb::Pong => Ok(()),
            other => Err(classify(other, &payload)),
        }
    }

    /// Whether the connection has died (a submit would fail). A live
    /// answer is advisory: the peer can vanish right after.
    pub fn is_dead(&self) -> bool {
        self.inner.dead_reason().is_some()
    }

    /// One full request/response exchange on this session.
    fn call(&self, verb: Verb, payload: &[u8]) -> Result<(Verb, Vec<u8>), ClientError> {
        let id = self.start(verb, payload, None)?;
        self.redeem(id)
    }

    /// Registers a slot and writes the request frame.
    fn start(&self, verb: Verb, payload: &[u8], batch: Option<usize>) -> Result<u32, ClientError> {
        if let Some(reason) = self.inner.dead_reason() {
            return Err(ClientError::ConnectionLost(reason));
        }
        let id = self.next_id();
        let frame = encode_frame_v2(verb, id, payload);
        {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            let slot = match batch {
                None => Slot::Waiting { frame: frame.clone(), attempts: 0, busy: false },
                Some(count) => Slot::Gathering {
                    frame: frame.clone(),
                    attempts: 0,
                    busy: false,
                    reports: std::iter::repeat_with(|| None).take(count).collect(),
                    remaining: count,
                },
            };
            st.slots.insert(id, slot);
        }
        if let Err(e) = self.inner.send_frame(&frame) {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            st.slots.remove(&id);
            return Err(e);
        }
        Ok(id)
    }

    /// Allocates the next request ID, skipping 0 (reserved for
    /// server-side frame-level errors) and any ID still in flight (so
    /// IDs can never alias, even after the 2^32 wrap).
    fn next_id(&self) -> u32 {
        loop {
            let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            if id == 0 {
                continue;
            }
            let st = self.inner.state.lock().expect("session lock never poisoned");
            if !st.slots.contains_key(&id) {
                return id;
            }
        }
    }

    /// Blocks until `id`'s single-frame response arrives, retrying Busy
    /// answers under the budget.
    fn redeem(&self, id: u32) -> Result<(Verb, Vec<u8>), ClientError> {
        let give_up = Instant::now() + self.inner.config.io_timeout;
        let retry_until = Instant::now() + self.inner.config.retry_budget;
        loop {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            match st.slots.get(&id) {
                Some(Slot::Done { .. }) => {
                    let Some(Slot::Done { verb, payload }) = st.slots.remove(&id) else {
                        unreachable!("the probe just saw a Done slot");
                    };
                    return Ok((verb, payload));
                }
                Some(Slot::Waiting { busy: true, .. }) => {
                    drop(st);
                    self.resend_after_busy(id, retry_until)?;
                    continue;
                }
                _ => {}
            }
            if let Some(reason) = st.dead.clone() {
                return Err(ClientError::ConnectionLost(reason));
            }
            let now = Instant::now();
            if now >= give_up {
                st.slots.remove(&id);
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "no response within io_timeout",
                )));
            }
            let (guard, _t) = self
                .inner
                .completed
                .wait_timeout(st, give_up - now)
                .expect("session lock never poisoned");
            drop(guard);
        }
    }

    /// After a Busy answer on `id`: count the attempt, wait out a
    /// backoff draw, and re-send the stored frame under the same ID.
    /// Fails with [`ClientError::Busy`] once the budget is spent.
    fn resend_after_busy(&self, id: u32, retry_until: Instant) -> Result<(), ClientError> {
        let (frame, attempts) = {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            match st.slots.get_mut(&id) {
                Some(
                    Slot::Waiting { frame, attempts, busy }
                    | Slot::Gathering { frame, attempts, busy, .. },
                ) => {
                    *attempts += 1;
                    *busy = false;
                    (frame.clone(), *attempts)
                }
                _ => return Err(ClientError::Busy { attempts: 1 }),
            }
        };
        if !self.inner.may_retry(attempts, retry_until) {
            let mut st = self.inner.state.lock().expect("session lock never poisoned");
            st.slots.remove(&id);
            return Err(ClientError::Busy { attempts });
        }
        std::thread::sleep(self.inner.backoff(attempts));
        self.inner.send_frame(&frame)
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Unblock the reader (its read carries no timeout), then
        // collect it.
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Routes every incoming frame to its slot until the stream dies.
fn reader_loop(stream: TcpStream, inner: &Inner, max_frame: u32) {
    let mut reader = BufReader::new(stream);
    loop {
        let (verb, req_id, payload) = match read_frame_v2(&mut reader, max_frame) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => {
                inner.declare_dead("connection closed by server".into());
                return;
            }
            Err(e) => {
                inner.declare_dead(format!("session read failed: {e}"));
                return;
            }
        };
        if req_id == 0 && verb == Verb::Error {
            // Frame-level server error: the stream is desynchronized
            // from the server's point of view and it will close.
            let reason = match ErrorInfo::decode(&payload) {
                Ok(info) => format!("server error: {info}"),
                Err(_) => "server reported a frame-level error".into(),
            };
            inner.declare_dead(reason);
            return;
        }
        let mut st = inner.state.lock().expect("session lock never poisoned");
        match st.slots.get_mut(&req_id) {
            Some(Slot::Waiting { busy, .. }) => {
                if verb == Verb::Busy {
                    *busy = true;
                } else {
                    st.slots.insert(req_id, Slot::Done { verb, payload });
                }
            }
            Some(Slot::Gathering { busy, reports, remaining, .. }) => match verb {
                Verb::Busy => *busy = true,
                Verb::ReportOne => {
                    if let Ok(one) = ReportOne::decode(&payload) {
                        let idx = one.index as usize;
                        if idx < reports.len() && reports[idx].is_none() {
                            reports[idx] = Some(one.report);
                            *remaining -= 1;
                        }
                    }
                    if matches!(st.slots.get(&req_id), Some(Slot::Gathering { remaining: 0, .. })) {
                        let Some(Slot::Gathering { reports, .. }) = st.slots.remove(&req_id) else {
                            unreachable!("the probe just saw Gathering");
                        };
                        let reports =
                            reports.into_iter().map(|r| r.expect("remaining == 0")).collect();
                        st.slots.insert(req_id, Slot::BatchDone { reports });
                    }
                }
                // A whole-batch error answer replaces the slot.
                _ => {
                    st.slots.insert(req_id, Slot::Done { verb, payload });
                }
            },
            // Unknown ID: a ticket abandoned by a timed-out wait, or a
            // dropped Pending. The job ran; the bytes are discarded.
            _ => {}
        }
        drop(st);
        inner.completed.notify_all();
    }
}

/// Turns a non-success response into the matching error.
fn classify(verb: Verb, payload: &[u8]) -> ClientError {
    match verb {
        Verb::Error => match ErrorInfo::decode(payload) {
            Ok(info) => ClientError::Remote(info),
            Err(e) => ClientError::Proto(e),
        },
        Verb::Busy => ClientError::Busy { attempts: 1 },
        other => ClientError::UnexpectedVerb(other),
    }
}
