//! The recorder: a span tree with monotonic timings, named counters,
//! and latency histograms.
//!
//! # Determinism quarantine
//!
//! Everything a [`Recorder`] collects falls on one of two sides of a
//! hard line:
//!
//! * **Deterministic** — the span *structure* (names, nesting, order),
//!   the named counters, and the static-analysis values recorded via
//!   [`Recorder::add_analysis`]. These must be pure functions of the
//!   input and configuration: byte-identical at every `threads`
//!   setting, on every machine, on every run.
//!   [`FlowMetrics::deterministic_json`] renders exactly this side and
//!   nothing else.
//! * **Non-deterministic** — span durations, histograms, and counters
//!   recorded through [`Recorder::add_nd`] (e.g. speculative work that
//!   grows with the worker count). These live in the quarantined
//!   `timings` section of [`FlowMetrics::to_json`] and never leak into
//!   the deterministic rendering.
//!
//! The split is what lets cached payloads and CI gates `cmp` the
//! deterministic section while wall-clock numbers still ride along for
//! humans and dashboards.
//!
//! # Threading
//!
//! Counters and histograms may be recorded from any thread. **Spans
//! must be opened and closed by one thread at a time** (in practice:
//! the thread driving a flow); interleaved spans from racing threads
//! would nest arbitrarily, which breaks the deterministic-structure
//! promise (never memory safety — everything is behind one mutex).

use crate::json::{JsonArray, JsonObject};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets per histogram: bucket `i`
/// counts observations with `micros < 2^i` (the last bucket also
/// absorbs everything larger).
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A fixed-bucket log₂ latency histogram (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts observations in `[2^(i-1), 2^i)` µs
    /// (`buckets[0]`: `< 1` µs; the last bucket also counts overflow).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in µs.
    pub sum_micros: u64,
    /// Largest observed value, in µs.
    pub max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one observation of `micros`.
    pub fn observe_micros(&mut self, micros: u64) {
        let idx = (64 - u64::leading_zeros(micros) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Mean observation in µs (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// JSON rendering (non-deterministic side only — timings are always
    /// quarantined).
    pub fn to_json_object(&self) -> JsonObject {
        let mut buckets = JsonArray::new();
        for &b in &self.buckets {
            buckets.push_u64(b);
        }
        let mut o = JsonObject::new();
        o.field_u64("count", self.count)
            .field_u64("sum_micros", self.sum_micros)
            .field_u64("max_micros", self.max_micros)
            .field_array("buckets_log2_micros", buckets);
        o
    }
}

/// One node of a finished span tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Phase name.
    pub name: String,
    /// Wall-clock duration in µs (0 if the span never closed).
    pub micros: u64,
    /// Child spans, in open order.
    pub children: Vec<SpanSnapshot>,
}

#[derive(Debug)]
struct Node {
    name: String,
    micros: u64,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct Inner {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Open-span stack (indices into `nodes`).
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    analysis: BTreeMap<String, u64>,
    nd_counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Collects spans, counters and histograms for one (or more) runs.
///
/// Cheap to share behind an `Arc`; see the module docs for the
/// determinism quarantine and the threading rules.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

/// RAII guard for one open span: created by [`Recorder::span`], closes
/// (and records the elapsed wall time) on drop.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct Span<'a> {
    rec: &'a Recorder,
    idx: usize,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.rec.close(self.idx, self.start.elapsed());
    }
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Opens a span named `name`, nested under the innermost open span
    /// (or as a new root). The returned guard closes it on drop.
    pub fn span(&self, name: &str) -> Span<'_> {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        let idx = g.nodes.len();
        g.nodes.push(Node { name: name.to_string(), micros: 0, children: Vec::new() });
        match g.stack.last().copied() {
            Some(parent) => g.nodes[parent].children.push(idx),
            None => g.roots.push(idx),
        }
        g.stack.push(idx);
        drop(g);
        Span { rec: self, idx, start: Instant::now() }
    }

    fn close(&self, idx: usize, elapsed: Duration) {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        g.nodes[idx].micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        // Guards normally drop innermost-first; tolerate stragglers.
        g.stack.retain(|&i| i != idx);
    }

    /// Adds `n` to the **deterministic** counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        *g.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the **deterministic** static-analysis value `name`. These
    /// live in their own `analysis` section of the deterministic
    /// rendering (rendered only when at least one value was recorded)
    /// and carry the same contract as deterministic counters:
    /// thread-count-independent pure functions of the input. Last write
    /// wins — analysis values are facts about a snapshot, not tallies.
    pub fn add_analysis(&self, name: &str, value: u64) {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        g.analysis.insert(name.to_string(), value);
    }

    /// Adds `n` to the **non-deterministic** counter `name` (quarantined
    /// into the timings section — use for anything that may vary with
    /// the worker count, like speculative planning attempts).
    pub fn add_nd(&self, name: &str, n: u64) {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        *g.nd_counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Records one duration into histogram `name` (quarantined).
    pub fn observe(&self, name: &str, d: Duration) {
        self.observe_micros(name, d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one observation of `micros` into histogram `name`
    /// (quarantined).
    pub fn observe_micros(&self, name: &str, micros: u64) {
        let mut g = self.inner.lock().expect("recorder lock never poisoned");
        g.histograms.entry(name.to_string()).or_default().observe_micros(micros);
    }

    /// Current value of deterministic counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        let g = self.inner.lock().expect("recorder lock never poisoned");
        g.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of quarantined counter `name` (0 if never
    /// touched). The nondeterminism caveat of [`Recorder::add_nd`]
    /// applies: fine for dashboards and traffic stats, excluded from
    /// byte-stability contracts.
    pub fn nd_counter(&self, name: &str) -> u64 {
        let g = self.inner.lock().expect("recorder lock never poisoned");
        g.nd_counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of histogram `name`, if it has any observations.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let g = self.inner.lock().expect("recorder lock never poisoned");
        g.histograms.get(name).copied()
    }

    /// Snapshots everything recorded so far into a [`FlowMetrics`].
    /// Spans still open at this point report 0 µs (their structure is
    /// already in the tree).
    pub fn finish(&self) -> FlowMetrics {
        let g = self.inner.lock().expect("recorder lock never poisoned");
        fn build(nodes: &[Node], idx: usize) -> SpanSnapshot {
            SpanSnapshot {
                name: nodes[idx].name.clone(),
                micros: nodes[idx].micros,
                children: nodes[idx].children.iter().map(|&c| build(nodes, c)).collect(),
            }
        }
        FlowMetrics {
            spans: g.roots.iter().map(|&r| build(&g.nodes, r)).collect(),
            counters: g.counters.clone(),
            analysis: g.analysis.clone(),
            nd_counters: g.nd_counters.clone(),
            histograms: g.histograms.clone(),
        }
    }
}

/// A finished metrics snapshot: span tree, counters, and quarantined
/// timings. Attached to flow results and job reports; renderable as
/// byte-stable JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowMetrics {
    /// Root spans in open order (usually exactly one per run).
    pub spans: Vec<SpanSnapshot>,
    /// Deterministic counters (thread-count-independent by contract).
    pub counters: BTreeMap<String, u64>,
    /// Static-analysis values ([`Recorder::add_analysis`]) — facts
    /// about the input netlist, deterministic by contract.
    pub analysis: BTreeMap<String, u64>,
    /// Non-deterministic counters (may vary with worker count).
    pub nd_counters: BTreeMap<String, u64>,
    /// Latency histograms (always non-deterministic).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl FlowMetrics {
    /// The **deterministic section**: span structure (names + nesting,
    /// no durations) and deterministic counters. Byte-identical across
    /// `threads` settings for the same input — CI `cmp`s this.
    pub fn deterministic_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_array("spans", spans_structure(&self.spans));
        o.field_object("counters", counters_object(&self.counters));
        if !self.analysis.is_empty() {
            o.field_object("analysis", counters_object(&self.analysis));
        }
        o.finish()
    }

    /// The quarantined **timings section**: span durations, histograms,
    /// and non-deterministic counters. Varies run to run; never `cmp`
    /// this.
    pub fn timings_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_array("spans", spans_timed(&self.spans));
        o.field_object("nd_counters", counters_object(&self.nd_counters));
        let mut hists = JsonObject::new();
        for (name, h) in &self.histograms {
            hists.field_object(name, h.to_json_object());
        }
        o.field_object("histograms", hists);
        o.finish()
    }

    /// Full export: `{"schema":"tpi-obs/v1","deterministic":…,
    /// "timings":…}`. The two sections are the same strings
    /// [`FlowMetrics::deterministic_json`] and
    /// [`FlowMetrics::timings_json`] return.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"schema":"tpi-obs/v1","deterministic":{},"timings":{}}}"#,
            self.deterministic_json(),
            self.timings_json()
        )
    }

    /// Every span name in the tree, preorder.
    pub fn span_names(&self) -> Vec<&str> {
        fn walk<'a>(s: &'a SpanSnapshot, out: &mut Vec<&'a str>) {
            out.push(&s.name);
            for c in &s.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for s in &self.spans {
            walk(s, &mut out);
        }
        out
    }

    /// How many spans in the tree carry `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.span_names().iter().filter(|&&n| n == name).count()
    }

    /// Value of deterministic counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of static-analysis entry `name` (0 if absent).
    pub fn analysis_value(&self, name: &str) -> u64 {
        self.analysis.get(name).copied().unwrap_or(0)
    }
}

fn counters_object(counters: &BTreeMap<String, u64>) -> JsonObject {
    let mut o = JsonObject::new();
    for (name, &v) in counters {
        o.field_u64(name, v);
    }
    o
}

fn spans_structure(spans: &[SpanSnapshot]) -> JsonArray {
    let mut a = JsonArray::new();
    for s in spans {
        let mut o = JsonObject::new();
        o.field_str("name", &s.name);
        if !s.children.is_empty() {
            o.field_array("children", spans_structure(&s.children));
        }
        a.push_object(o);
    }
    a
}

fn spans_timed(spans: &[SpanSnapshot]) -> JsonArray {
    let mut a = JsonArray::new();
    for s in spans {
        let mut o = JsonObject::new();
        o.field_str("name", &s.name).field_u64("micros", s.micros);
        if !s.children.is_empty() {
            o.field_array("children", spans_timed(&s.children));
        }
        a.push_object(o);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let rec = Recorder::new();
        {
            let _root = rec.span("root");
            {
                let _a = rec.span("a");
            }
            let _b = rec.span("b");
        }
        let m = rec.finish();
        assert_eq!(m.span_names(), vec!["root", "a", "b"]);
        assert_eq!(m.spans.len(), 1);
        assert_eq!(m.spans[0].children.len(), 2);
        assert_eq!(m.span_count("a"), 1);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let rec = Recorder::new();
        rec.add("x", 2);
        rec.add("x", 3);
        rec.add_nd("spec", 7);
        let m = rec.finish();
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.nd_counters.get("spec"), Some(&7));
    }

    #[test]
    fn deterministic_json_has_no_timings() {
        let rec = Recorder::new();
        {
            let _s = rec.span("phase");
            rec.add("n", 1);
        }
        rec.observe_micros("lat", 1500);
        rec.add_nd("spec", 1);
        let det = rec.finish().deterministic_json();
        assert_eq!(det, r#"{"spans":[{"name":"phase"}],"counters":{"n":1}}"#);
        assert!(!det.contains("micros"));
        assert!(!det.contains("spec"));
    }

    #[test]
    fn analysis_values_render_deterministically_and_last_write_wins() {
        let rec = Recorder::new();
        {
            let _s = rec.span("phase");
            rec.add("n", 1);
        }
        rec.add_analysis("scoap_cc_max", 7);
        rec.add_analysis("dom_max_cone", 3);
        rec.add_analysis("scoap_cc_max", 9); // re-analysis overwrites
        let m = rec.finish();
        assert_eq!(
            m.deterministic_json(),
            r#"{"spans":[{"name":"phase"}],"counters":{"n":1},"analysis":{"dom_max_cone":3,"scoap_cc_max":9}}"#
        );
        assert_eq!(m.analysis_value("scoap_cc_max"), 9);
        assert_eq!(m.analysis_value("absent"), 0);
    }

    #[test]
    fn timings_json_quarantines_durations_and_histograms() {
        let rec = Recorder::new();
        {
            let _s = rec.span("phase");
        }
        rec.observe_micros("lat", 3);
        rec.add_nd("spec", 2);
        let t = rec.finish().timings_json();
        assert!(t.contains(r#""name":"phase","micros":"#), "{t}");
        assert!(t.contains(r#""spec":2"#), "{t}");
        assert!(t.contains(r#""lat":{"count":1,"sum_micros":3"#), "{t}");
    }

    #[test]
    fn full_json_wraps_both_sections() {
        let rec = Recorder::new();
        rec.add("c", 1);
        let m = rec.finish();
        let j = m.to_json();
        assert!(j.starts_with(r#"{"schema":"tpi-obs/v1","deterministic":{"#), "{j}");
        assert!(j.contains(r#""timings":{"#), "{j}");
        assert!(j.contains(&m.deterministic_json()), "sections are verbatim");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = HistogramSnapshot::default();
        h.observe_micros(0); // bucket 0
        h.observe_micros(1); // bucket 1 (< 2)
        h.observe_micros(1023); // bucket 10 (< 1024)
        h.observe_micros(u64::MAX); // clamped to last bucket
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.max_micros, u64::MAX);
    }

    #[test]
    fn histogram_mean() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.mean_micros(), 0.0);
        h.observe_micros(10);
        h.observe_micros(20);
        assert!((h.mean_micros() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_is_shareable_across_threads_for_counters() {
        let rec = std::sync::Arc::new(Recorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.add("hits", 1);
                        rec.observe_micros("lat", 5);
                    }
                });
            }
        });
        let m = rec.finish();
        assert_eq!(m.counter("hits"), 400);
        assert_eq!(m.histograms["lat"].count, 400);
    }
}
