//! `tpi-obs` — deterministic tracing and metrics for the scanpath DFT
//! flows.
//!
//! Zero-dependency observability substrate shared by every crate in the
//! workspace:
//!
//! * [`Recorder`] — collects a span tree (phase timings), named
//!   counters, and log₂ latency histograms for one run.
//! * [`FlowMetrics`] — the finished snapshot attached to flow results
//!   and job reports, exportable as byte-stable JSON.
//! * [`json`] — the explicit-field-order JSON writer (moved here from
//!   `tpi-serve`; re-exported there for compatibility).
//!
//! # The determinism quarantine
//!
//! Span *structure* and [`Recorder::add`] counters must be byte-identical
//! across thread counts and runs ([`FlowMetrics::deterministic_json`]).
//! Durations, histograms, and [`Recorder::add_nd`] counters are
//! quarantined in a separate `timings` section
//! ([`FlowMetrics::timings_json`]). See [`metrics`] for the full
//! contract.
//!
//! ```
//! use tpi_obs::Recorder;
//!
//! let rec = Recorder::new();
//! {
//!     let _phase = rec.span("enumerate_paths");
//!     rec.add("paths_enumerated", 42);
//! }
//! let m = rec.finish();
//! assert_eq!(
//!     m.deterministic_json(),
//!     r#"{"spans":[{"name":"enumerate_paths"}],"counters":{"paths_enumerated":42}}"#
//! );
//! ```

pub mod json;
pub mod metrics;

pub use json::{JsonArray, JsonObject};
pub use metrics::{
    FlowMetrics, HistogramSnapshot, Recorder, Span, SpanSnapshot, HISTOGRAM_BUCKETS,
};
