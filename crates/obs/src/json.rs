//! A minimal deterministic JSON writer.
//!
//! Observability output must be byte-identical across runs and thread
//! counts, so serialization is explicit: fields appear exactly in the
//! order they are pushed, floats use Rust's shortest-roundtrip
//! formatting, and there is no map iteration anywhere. (No `serde` in
//! the offline container — and none needed for write-only JSON.)
//!
//! This module started life inside `tpi-serve` (whose cached payloads
//! have the same byte-identity contract) and moved here so every crate
//! that renders metrics shares one writer; `tpi_serve::json` re-exports
//! it for compatibility.

use std::fmt::Write as _;

/// Builder for one JSON object; nests via [`JsonObject::field_object`].
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Starts an object (`{`).
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), empty: true }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field; non-finite values become `null` (JSON has no
    /// NaN/Inf).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a finished object as a nested field.
    pub fn field_object(&mut self, key: &str, value: JsonObject) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.finish());
        self
    }

    /// Adds a finished array as a nested field.
    pub fn field_array(&mut self, key: &str, value: JsonArray) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.finish());
        self
    }

    /// Adds already-rendered JSON verbatim as a nested field. The
    /// caller vouches that `json` is one complete JSON value; this is
    /// how a snapshot rendered elsewhere (for example the service
    /// metrics inside the netd metrics) is embedded without a parse →
    /// re-serialize round trip that could disturb byte stability.
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Builder for one JSON array; elements appear in push order.
#[derive(Debug)]
pub struct JsonArray {
    buf: String,
    empty: bool,
}

impl JsonArray {
    /// Starts an array (`[`).
    pub fn new() -> Self {
        JsonArray { buf: String::from("["), empty: true }
    }

    fn sep(&mut self) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
    }

    /// Appends a finished object.
    pub fn push_object(&mut self, value: JsonObject) -> &mut Self {
        self.sep();
        self.buf.push_str(&value.finish());
        self
    }

    /// Appends a string (escaped).
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Appends an unsigned integer.
    pub fn push_u64(&mut self, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Closes the array and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        JsonArray::new()
    }
}

/// Escapes `s` per RFC 8259 into `out`.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_in_push_order() {
        let mut o = JsonObject::new();
        o.field_str("b", "x").field_u64("a", 7).field_bool("c", true);
        assert_eq!(o.finish(), r#"{"b":"x","a":7,"c":true}"#);
    }

    #[test]
    fn nested_and_escaped() {
        let mut inner = JsonObject::new();
        inner.field_f64("v", 1.5);
        let mut o = JsonObject::new();
        o.field_str("q", "say \"hi\"\n").field_object("in", inner);
        assert_eq!(o.finish(), r#"{"q":"say \"hi\"\n","in":{"v":1.5}}"#);
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut o = JsonObject::new();
        o.field_f64("x", f64::NAN).field_f64("y", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn arrays_nest_in_objects() {
        let mut a = JsonArray::new();
        let mut el = JsonObject::new();
        el.field_str("n", "x");
        a.push_object(el).push_u64(3).push_str("s");
        let mut o = JsonObject::new();
        o.field_array("items", a);
        assert_eq!(o.finish(), r#"{"items":[{"n":"x"},3,"s"]}"#);
    }

    #[test]
    fn empty_array() {
        assert_eq!(JsonArray::new().finish(), "[]");
    }
}
