//! Embedded public ISCAS89 benchmark: `s27`.
//!
//! The full ISCAS89/MCNC91 suites the paper evaluates are substituted by
//! the calibrated synthetic generators in [`crate::synth`] (see
//! `DESIGN.md` §3); `s27` is small enough to embed verbatim and anchors
//! the `.bench` parser and the flows against a real, well-known circuit.

use tpi_netlist::{parse_bench, Netlist};

/// The canonical ISCAS89 `s27.bench` text: 4 inputs, 1 output, 3 D
/// flip-flops, 10 gates.
pub const S27_BENCH: &str = "\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parses the embedded `s27` into a validated netlist.
///
/// ```
/// let n = tpi_workloads::iscas::s27();
/// assert_eq!(n.dffs().len(), 3);
/// assert_eq!(n.inputs().len(), 4);
/// ```
pub fn s27() -> Netlist {
    parse_bench("s27", S27_BENCH).expect("embedded s27 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_structure_matches_the_published_circuit() {
        let n = s27();
        assert_eq!(n.inputs().len(), 4);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.dffs().len(), 3);
        assert_eq!(n.comb_gates().len(), 10);
        n.validate().unwrap();
    }

    #[test]
    fn s27_has_sequential_feedback() {
        // G11 feeds G10 which feeds G5 which feeds G11: the s-graph has
        // cycles — that is why s27 is a partial-scan benchmark.
        let n = s27();
        let g5 = n.find("G5").unwrap();
        let g11 = n.find("G11").unwrap();
        assert!(n.fanin(g11).contains(&g5));
    }
}
