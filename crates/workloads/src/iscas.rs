//! Embedded public ISCAS89 benchmark: `s27`.
//!
//! The full ISCAS89/MCNC91 suites the paper evaluates are substituted by
//! the calibrated synthetic generators in [`crate::synth`] (see
//! `DESIGN.md` §3); `s27` is small enough to embed verbatim and anchors
//! the `.bench` parser and the flows against a real, well-known circuit.

use std::path::{Path, PathBuf};
use tpi_netlist::{parse_bench, Netlist, ParseBenchError};

/// The canonical ISCAS89 `s27.bench` text: 4 inputs, 1 output, 3 D
/// flip-flops, 10 gates.
pub const S27_BENCH: &str = "\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parses the embedded `s27` into a validated netlist.
///
/// ```
/// let n = tpi_workloads::iscas::s27();
/// assert_eq!(n.dffs().len(), 3);
/// assert_eq!(n.inputs().len(), 4);
/// ```
pub fn s27() -> Netlist {
    parse_bench("s27", S27_BENCH).expect("embedded s27 is valid")
}

/// Why a `.bench` directory load failed. Every variant names the file,
/// so a bad entry in a 300-circuit suite is a one-line diagnosis.
#[derive(Debug)]
pub enum BenchDirError {
    /// The directory itself (or one file in it) could not be read.
    Io {
        /// The directory or file the operation failed on.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// A `.bench` file did not parse or validate.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The parser's diagnosis.
        error: ParseBenchError,
    },
}

impl std::fmt::Display for BenchDirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchDirError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            BenchDirError::Parse { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for BenchDirError {}

/// Loads every `*.bench` file in `dir` (non-recursive), in sorted
/// file-name order so suites iterate identically on every filesystem.
/// Each netlist is named after its file stem. The first unreadable or
/// unparseable file aborts the load with a [`BenchDirError`] naming it.
///
/// ```no_run
/// let suite = tpi_workloads::iscas::load_bench_dir("bench/iscas89").unwrap();
/// for n in &suite {
///     println!("{}: {} gates", n.name(), n.gate_count());
/// }
/// ```
pub fn load_bench_dir(dir: impl AsRef<Path>) -> Result<Vec<Netlist>, BenchDirError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir)
        .map_err(|error| BenchDirError::Io { path: dir.to_path_buf(), error })?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bench"))
        .collect();
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|error| BenchDirError::Io { path: path.clone(), error })?;
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("bench").to_string();
        let n = parse_bench(&name, &text).map_err(|error| BenchDirError::Parse { path, error })?;
        out.push(n);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpi-bench-dir-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn load_bench_dir_sorted_and_named() {
        let d = scratch("ok");
        std::fs::write(d.join("b.bench"), S27_BENCH).unwrap();
        std::fs::write(d.join("a.bench"), "INPUT(x)\ng = NOT(x)\nOUTPUT(g)\n").unwrap();
        std::fs::write(d.join("ignored.blif"), ".model no\n.end\n").unwrap();
        let suite = load_bench_dir(&d).unwrap();
        let names: Vec<&str> = suite.iter().map(|n| n.name()).collect();
        assert_eq!(names, ["a", "b"], "file-stem names in sorted order, non-bench skipped");
        assert_eq!(suite[1].dffs().len(), 3, "b is s27");
    }

    #[test]
    fn load_bench_dir_errors_name_the_file() {
        let d = scratch("bad");
        std::fs::write(d.join("broken.bench"), "INPUT(x)\ng = FROB(x)\n").unwrap();
        let err = load_bench_dir(&d).unwrap_err();
        assert!(
            matches!(&err, BenchDirError::Parse { path, .. } if path.ends_with("broken.bench"))
        );
        assert!(err.to_string().contains("broken.bench"), "{err}");

        let missing = load_bench_dir(d.join("nope")).unwrap_err();
        assert!(matches!(missing, BenchDirError::Io { .. }));
    }

    #[test]
    fn s27_structure_matches_the_published_circuit() {
        let n = s27();
        assert_eq!(n.inputs().len(), 4);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.dffs().len(), 3);
        assert_eq!(n.comb_gates().len(), 10);
        n.validate().unwrap();
    }

    #[test]
    fn s27_has_sequential_feedback() {
        // G11 feeds G10 which feeds G5 which feeds G11: the s-graph has
        // cycles — that is why s27 is a partial-scan benchmark.
        let n = s27();
        let g5 = n.find("G5").unwrap();
        let g11 = n.find("G11").unwrap();
        assert!(n.fanin(g11).contains(&g5));
    }
}
