//! Industrial-scale synthetic workloads: 100k–1M-gate sequential designs.
//!
//! The calibrated generators in [`crate::synth`] reproduce the *paper's*
//! circuits — a few thousand gates each. Everything the service layer
//! claims (sharded caching, pipelined sessions, the 64-lane implication
//! engine) only means something on circuits two to three orders of
//! magnitude larger. This module builds them.
//!
//! ## Structure
//!
//! An [`IndustrialSpec`] describes a **pipelined datapath** — `stages`
//! register ranks of `width` bits with a small combinational cloud per
//! bit between ranks — steered by a shared **control FSM** whose decoded
//! enables fan out across the datapath. Each cloud mixes a bit with its
//! lane neighbours (XOR/NAND), gates the result through stage enables,
//! and reconverges the two arms (the classic reconvergent-fanout shape
//! that makes testability analysis non-trivial); a seeded fraction of
//! bits get a hold mux (`MUX(en, next, prev)`), the dominant register
//! idiom in real RTL. A parity reduction tree over the last rank gives
//! the outputs wide observation cones.
//!
//! ## Why not reuse `synth::generate`?
//!
//! The calibrated generator runs an STA pass *per critical ring* during
//! construction and validates against per-circuit interface statistics —
//! super-linear work that is pointless at 1M gates. This generator is
//! **streaming**: gates are appended in one forward pass, every
//! `connect` is O(1), names are pre-sized, and the only whole-netlist
//! work is the final linear [`Netlist::validate`]. Generation time
//! scales linearly in `target_gates` (gated by `tpi-bench --gen-scale`).
//!
//! ```
//! use tpi_workloads::industrial::{generate_industrial, IndustrialSpec};
//! let n = generate_industrial(&IndustrialSpec::sized("tiny", 2_000, 7));
//! assert!(n.gate_count() >= 2_000);
//! n.validate().unwrap();
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpi_netlist::{GateId, GateKind, Netlist};

/// Parameters for one industrial-scale design.
///
/// `target_gates` counts *all* gates (ports, FFs, combinational); the
/// generated circuit lands within a few percent above the target, never
/// below. Auto-sized fields (`0`) are derived from `target_gates`.
#[derive(Debug, Clone)]
pub struct IndustrialSpec {
    /// Design name.
    pub name: String,
    /// Total gate budget (ports + FFs + combinational). Minimum ~500.
    pub target_gates: usize,
    /// Datapath width in bits (`0` = auto: 64 below 200k gates, 128
    /// below 600k, 256 at or above).
    pub width: usize,
    /// Pipeline depth in register ranks (`0` = auto from the budget).
    pub stages: usize,
    /// Control-FSM state bits (`0` = auto: 16).
    pub control_ffs: usize,
    /// Fraction of datapath bits (per mille) that get a hold mux.
    /// Default presets use 300 (≈30%).
    pub hold_per_mille: u32,
    /// RNG seed; the netlist is a pure function of the spec.
    pub seed: u64,
}

impl IndustrialSpec {
    /// A spec with every structural knob on auto.
    pub fn sized(name: impl Into<String>, target_gates: usize, seed: u64) -> Self {
        IndustrialSpec {
            name: name.into(),
            target_gates,
            width: 0,
            stages: 0,
            control_ffs: 0,
            hold_per_mille: 300,
            seed,
        }
    }

    fn resolved_width(&self) -> usize {
        if self.width != 0 {
            return self.width.max(4);
        }
        if self.target_gates < 200_000 {
            64
        } else if self.target_gates < 600_000 {
            128
        } else {
            256
        }
    }

    fn resolved_control_ffs(&self) -> usize {
        if self.control_ffs != 0 {
            self.control_ffs.max(2)
        } else {
            16
        }
    }
}

/// The ~100k-gate preset.
pub fn gen100k() -> IndustrialSpec {
    IndustrialSpec::sized("ind100k", 100_000, 0xDAC96)
}

/// The ~250k-gate preset (the soak acceptance design).
pub fn gen250k() -> IndustrialSpec {
    IndustrialSpec::sized("ind250k", 250_000, 0xDAC96 + 1)
}

/// The ~1M-gate preset.
pub fn gen1m() -> IndustrialSpec {
    IndustrialSpec::sized("ind1m", 1_000_000, 0xDAC96 + 2)
}

/// Gates appended per datapath bit per stage, in thousandths: the
/// mixing pair (XOR + NAND), two enable gates, the reconvergence gate,
/// the FF — six — plus the expected hold-mux share.
fn milli_gates_per_bit_stage(hold_per_mille: u32) -> usize {
    6_000 + hold_per_mille.min(1000) as usize
}

/// Builds the design described by `spec`. Deterministic: equal specs
/// yield byte-identical netlists.
///
/// # Panics
/// Panics if the constructed netlist fails validation — that is a bug in
/// the generator, not an input error.
pub fn generate_industrial(spec: &IndustrialSpec) -> Netlist {
    let width = spec.resolved_width();
    let ctrl_bits = spec.resolved_control_ffs();
    let target = spec.target_gates.max(500);
    let n_enables = (width / 8).max(4);
    let stages = if spec.stages != 0 {
        spec.stages.max(2)
    } else {
        // Everything outside the pipeline loop is a fixed overhead:
        // ports, the control FSM and decode, and the parity tree.
        let fixed = (width + 4)                      // inputs
            + ctrl_bits * 4                          // FSM state + next-state
            + n_enables * 2                          // enable decode
            + (width + 2)                            // output ports
            + width.saturating_sub(1); // parity tree
        let per_stage = width * milli_gates_per_bit_stage(spec.hold_per_mille) / 1000;
        (target.saturating_sub(fixed)).div_ceil(per_stage).max(2)
    };
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x1D0_57A6E5);

    let mut n = Netlist::new(spec.name.clone());
    n.reserve(target + target / 8);

    // Primary inputs: one data bit per lane plus a few control pins.
    let data_in: Vec<GateId> = (0..width).map(|i| n.add_input(format!("di{i}"))).collect();
    let ctrl_in: Vec<GateId> = (0..4).map(|i| n.add_input(format!("ci{i}"))).collect();

    // Control FSM: `ctrl_bits` state FFs with reconvergent next-state
    // logic over (state, control inputs), then `n_enables` decoded
    // enable nets shared across the datapath.
    let mut state: Vec<GateId> = Vec::with_capacity(ctrl_bits);
    for i in 0..ctrl_bits {
        state.push(n.add_gate(GateKind::Dff, format!("st{i}")));
    }
    for i in 0..ctrl_bits {
        let a = state[(i + 1) % ctrl_bits];
        let b = state[(i + ctrl_bits - 1) % ctrl_bits];
        let c = ctrl_in[i % ctrl_in.len()];
        let g1 = n.add_gate(GateKind::And, format!("cna{i}"));
        n.connect(a, g1).unwrap();
        n.connect(c, g1).unwrap();
        let g2 = n.add_gate(GateKind::Or, format!("cno{i}"));
        n.connect(b, g2).unwrap();
        n.connect(state[i], g2).unwrap();
        let nx = n.add_gate(GateKind::Xor, format!("cnx{i}"));
        n.connect(g1, nx).unwrap();
        n.connect(g2, nx).unwrap();
        n.connect(nx, state[i]).unwrap();
    }
    let mut enables: Vec<GateId> = Vec::with_capacity(n_enables);
    for e in 0..n_enables {
        let a = state[(2 * e) % ctrl_bits];
        let b = state[(2 * e + 3) % ctrl_bits];
        let c = ctrl_in[e % ctrl_in.len()];
        let g1 = n.add_gate(GateKind::Nand, format!("ed{e}"));
        n.connect(a, g1).unwrap();
        n.connect(b, g1).unwrap();
        let en = n.add_gate(GateKind::Or, format!("en{e}"));
        n.connect(g1, en).unwrap();
        n.connect(c, en).unwrap();
        enables.push(en);
    }

    // Pipeline: per stage, per bit, a reconvergent cloud into a rank FF.
    let hold = u64::from(spec.hold_per_mille.min(1000));
    let mut prev: Vec<GateId> = data_in.clone();
    let mut cur: Vec<GateId> = Vec::with_capacity(width);
    for s in 0..stages {
        cur.clear();
        for i in 0..width {
            let left = prev[(i + 1) % width];
            let right = prev[(i + width - 1) % width];
            let ea = enables[(s + i) % n_enables];
            let eb = enables[(s + i + 1) % n_enables];
            // Two arms from the same source bit…
            let mix = n.add_gate(GateKind::Xor, format!("s{s}x{i}"));
            n.connect(prev[i], mix).unwrap();
            n.connect(left, mix).unwrap();
            let carry = n.add_gate(GateKind::Nand, format!("s{s}c{i}"));
            n.connect(prev[i], carry).unwrap();
            n.connect(right, carry).unwrap();
            // …gated by shared enables…
            let ga = n.add_gate(GateKind::And, format!("s{s}a{i}"));
            n.connect(mix, ga).unwrap();
            n.connect(ea, ga).unwrap();
            let gb = n.add_gate(GateKind::Or, format!("s{s}o{i}"));
            n.connect(carry, gb).unwrap();
            n.connect(eb, gb).unwrap();
            // …and reconverged.
            let next = n.add_gate(GateKind::Xor, format!("s{s}r{i}"));
            n.connect(ga, next).unwrap();
            n.connect(gb, next).unwrap();
            let ff = n.add_gate(GateKind::Dff, format!("s{s}q{i}"));
            let d = if rng.gen_range(0..1000u64) < hold {
                // Hold register: MUX(sel=en, a, b) keeps the old value
                // unless the stage enable fires.
                let m = n.add_gate(GateKind::Mux, format!("s{s}m{i}"));
                n.connect(enables[(s + 2 * i) % n_enables], m).unwrap();
                n.connect(next, m).unwrap();
                n.connect(ff, m).unwrap();
                m
            } else {
                next
            };
            n.connect(d, ff).unwrap();
            cur.push(ff);
        }
        std::mem::swap(&mut prev, &mut cur);
    }

    // Outputs: every last-rank bit, plus a parity reduction tree (wide
    // observation cone) and one FSM state bit for observability.
    for (i, &ff) in prev.iter().enumerate() {
        n.add_output(format!("do{i}"), ff).unwrap();
    }
    let mut layer: Vec<GateId> = prev.clone();
    let mut depth = 0usize;
    while layer.len() > 1 {
        let mut nextl = Vec::with_capacity(layer.len().div_ceil(2));
        for (j, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                let x = n.add_gate(GateKind::Xor, format!("p{depth}_{j}"));
                n.connect(pair[0], x).unwrap();
                n.connect(pair[1], x).unwrap();
                nextl.push(x);
            } else {
                nextl.push(pair[0]);
            }
        }
        layer = nextl;
        depth += 1;
    }
    n.add_output("parity", layer[0]).unwrap();
    n.add_output("state0", state[0]).unwrap();

    n.validate().unwrap_or_else(|e| panic!("industrial generator bug: {e}"));
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_budget() {
        let spec = IndustrialSpec::sized("d", 5_000, 11);
        let a = generate_industrial(&spec);
        let b = generate_industrial(&spec);
        assert_eq!(a, b, "equal specs must give identical netlists");
        assert!(a.gate_count() >= 5_000, "got {}", a.gate_count());
        assert!(a.gate_count() < 5_000 + 5_000 / 4, "got {}", a.gate_count());
    }

    #[test]
    fn seeds_differ() {
        let a = generate_industrial(&IndustrialSpec::sized("d", 3_000, 1));
        let b = generate_industrial(&IndustrialSpec::sized("d", 3_000, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn realistic_ff_ratio() {
        let n = generate_industrial(&IndustrialSpec::sized("r", 20_000, 3));
        let ffs = n.dffs().len();
        let total = n.gate_count();
        let ratio = total as f64 / ffs as f64;
        assert!((4.0..=14.0).contains(&ratio), "FF:gate 1:{ratio:.1}");
    }

    #[test]
    fn has_reconvergence_and_validates() {
        let n = generate_industrial(&IndustrialSpec::sized("v", 2_000, 4));
        n.validate().unwrap();
        // Every datapath source bit fans out to at least two sinks
        // (mix + carry arms), the signature of reconvergent fanout.
        let di = n.find("di0").unwrap();
        assert!(n.fanout(di).len() >= 2);
    }

    #[test]
    fn presets_scale() {
        // Presets themselves are exercised at full size by
        // `tpi-bench --gen-scale`; here just check the sizing math.
        assert!(gen100k().target_gates < gen250k().target_gates);
        assert!(gen250k().target_gates < gen1m().target_gates);
    }
}
