//! Benchmark workloads for the DAC'96 test-point-insertion reproduction.
//!
//! Three families:
//!
//! * [`figures`] — the exact circuits of the paper's Figures 1–4, 6, 7,
//!   used by the `figures` harness binary and the figure tests;
//! * [`iscas`] — the genuinely tiny public ISCAS89 benchmark `s27`,
//!   embedded verbatim in `.bench` form;
//! * [`synth`] — seeded synthetic circuit generators calibrated per
//!   benchmark circuit to the interface statistics the paper publishes
//!   (Table II: #I, #O, #FF) and to each circuit's *structural class*
//!   (regular datapaths vs. random control logic vs. multiplier chains),
//!   which is what determines the shape of the paper's results. See
//!   `DESIGN.md` §3 for the substitution argument.

pub mod figures;
pub mod industrial;
pub mod iscas;
pub mod synth;

pub use synth::{
    generate, large_suite, smoke_suite, suite, table1_workloads, CircuitSpec, StructureClass,
};
