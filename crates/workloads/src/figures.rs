//! The circuits of the paper's illustrative figures, transliterated.
//!
//! Each constructor returns the circuit exactly as the figure draws it
//! (up to gate polarities the paper leaves implicit, which are chosen so
//! that the figure's described transformation works verbatim). The
//! `figures` binary in `tpi-bench` replays each transformation and
//! prints the before/after netlists; the tests in this module and in the
//! repository-level `tests/figures.rs` assert the claimed outcomes.

use tpi_netlist::{GateId, GateKind, Netlist, NetlistBuilder};

/// Figure 1: a partial scan chain `F1 -> F2 -> F3` through functional
/// logic, enabled by `x = 0` at a primary input and one AND test point at
/// the output of `F4` — versus two multiplexers for conventional scan.
///
/// Returns the netlist and `(x, f1, f2, f3, f4)`.
pub fn fig1() -> (Netlist, [GateId; 5]) {
    let mut b = NetlistBuilder::new("fig1");
    b.input("x");
    b.input("d1");
    b.input("d4");
    b.dff("f1", "d1");
    b.dff("f4", "d4");
    // F1 -> g1 -> F2, side input x (OR: sensitizing value 0).
    b.gate(GateKind::Or, "g1", &["f1", "x"]);
    b.dff("f2", "g1");
    // F2 -> g2 -> F3, side input F4 (OR: sensitizing value 0, produced by
    // an AND test point at F4's output).
    b.gate(GateKind::Or, "g2", &["f2", "f4"]);
    b.dff("f3", "g2");
    b.output("o", "f3");
    let n = b.finish().expect("figure 1 is well-formed");
    let ids = [
        n.find("x").unwrap(),
        n.find("f1").unwrap(),
        n.find("f2").unwrap(),
        n.find("f3").unwrap(),
        n.find("f4").unwrap(),
    ];
    (n, ids)
}

/// Figure 2: two desired test-point constants, of which exactly one can
/// be produced for free by a primary-input assignment: `t1 = OR(a, b)`
/// must be 0 (needs `a = 0, b = 0`) while `t2 = AND(a, c)` must be 1
/// (needs `a = 1, c = 1`) — the requirements conflict on `a`, so one
/// constant is set up for free and the other still needs a physical gate.
///
/// Returns the netlist and `(a, b, c, t1, t2)`.
pub fn fig2() -> (Netlist, [GateId; 5]) {
    let mut b = NetlistBuilder::new("fig2");
    b.input("a");
    b.input("b");
    b.input("c");
    b.input("d1");
    b.input("d3");
    b.gate(GateKind::Or, "t1", &["a", "b"]);
    b.gate(GateKind::And, "t2", &["a", "c"]);
    b.dff("f1", "d1");
    b.gate(GateKind::Or, "g1", &["f1", "t1"]); // wants t1 = 0
    b.dff("f2", "g1");
    b.dff("f3", "d3");
    b.gate(GateKind::And, "g2", &["f3", "t2"]); // wants t2 = 1
    b.dff("f4", "g2");
    b.output("o1", "f2");
    b.output("o2", "f4");
    let n = b.finish().expect("figure 2 is well-formed");
    let ids = [
        n.find("a").unwrap(),
        n.find("b").unwrap(),
        n.find("c").unwrap(),
        n.find("t1").unwrap(),
        n.find("t2").unwrap(),
    ];
    (n, ids)
}

/// Figure 3: the bold critical path runs into `F2`, so a mux directly at
/// `F2`'s D input would degrade the clock. The combinational path
/// `F1 -> g1 -> g2 -> F2` can instead be sensitized by an OR test point
/// at side input `a` and an AND test point at `b` (which *implies* the
/// sensitizing 0 at `c`, whose own slack is insufficient).
///
/// Returns the netlist and `(f1, f2, a, b, c)` where `a`, `b`, `c` are
/// the nets the paper labels.
pub fn fig3() -> (Netlist, [GateId; 5]) {
    let mut b = NetlistBuilder::new("fig3");
    b.input("pi_a");
    b.input("pi_b");
    b.input("crit");
    b.input("d1");
    b.dff("f1", "d1");
    // The critical chain: a long inverter ladder.
    b.gate(GateKind::Inv, "k1", &["crit"]);
    b.gate(GateKind::Inv, "k2", &["k1"]);
    b.gate(GateKind::Inv, "k3", &["k2"]);
    b.gate(GateKind::Inv, "k4", &["k3"]);
    b.gate(GateKind::Inv, "k5", &["k4"]);
    b.gate(GateKind::Inv, "k6", &["k5"]);
    // c = AND(k6, b): on the critical path; forcing b = 0 implies c = 0.
    b.gate(GateKind::Buf, "b", &["pi_b"]);
    b.gate(GateKind::And, "c", &["k6", "b"]);
    // a: the OR-gate side input of g1.
    b.gate(GateKind::Buf, "a", &["pi_a"]);
    b.gate(GateKind::Or, "g1", &["f1", "a"]); // sensitize with a = ... OR needs 0; the
                                              // paper inserts an OR test point *at a* because the figure's gate
                                              // polarity differs; both polarities are exercised by the tests.
    b.gate(GateKind::Or, "g2", &["g1", "c"]); // c = 0 sensitizes
    b.dff("f2", "g2");
    b.output("o", "f2");
    let n = b.finish().expect("figure 3 is well-formed");
    let ids = [
        n.find("f1").unwrap(),
        n.find("f2").unwrap(),
        n.find("a").unwrap(),
        n.find("b").unwrap(),
        n.find("c").unwrap(),
    ];
    (n, ids)
}

/// Figure 4: the scan multiplexer need not sit directly behind the
/// flip-flop — it can be inserted at any connection `a` with enough
/// slack, with a test point at side input `b` sensitizing the rest of
/// the path into `F2`. The predecessor of `F2` in the chain can then be
/// *any* flip-flop, not `F1`.
///
/// Returns the netlist and `(f2, a, b)`.
pub fn fig4() -> (Netlist, [GateId; 3]) {
    let mut b = NetlistBuilder::new("fig4");
    b.input("pi_a");
    b.input("pi_b");
    b.input("crit");
    b.input("d1");
    b.dff("f1", "d1");
    // a: a slack-rich net upstream of the tight gate g1.
    b.gate(GateKind::Buf, "a", &["f1"]);
    b.gate(GateKind::Buf, "b", &["pi_b"]);
    b.gate(GateKind::And, "g1", &["a", "b"]); // heavy: extra fanouts below
    b.dff("f2", "g1");
    // Load g1 so a mux cannot be inserted at g1's own output.
    b.gate(GateKind::Inv, "l1", &["g1"]);
    b.gate(GateKind::Inv, "l2", &["g1"]);
    b.gate(GateKind::Inv, "l3", &["g1"]);
    b.gate(GateKind::Inv, "l4", &["g1"]);
    // Critical ladder fixing the clock.
    b.gate(GateKind::Inv, "k1", &["crit"]);
    b.gate(GateKind::Inv, "k2", &["k1"]);
    b.gate(GateKind::Inv, "k3", &["k2"]);
    b.gate(GateKind::Inv, "k4", &["k3"]);
    b.gate(GateKind::Inv, "k5", &["k4"]);
    b.gate(GateKind::Inv, "k6", &["k5"]);
    b.gate(GateKind::Inv, "k7", &["k6"]);
    b.gate(GateKind::Inv, "k8", &["k7"]);
    b.gate(GateKind::Inv, "k9", &["k8"]);
    b.gate(GateKind::Inv, "k10", &["k9"]);
    b.dff("f3", "k10");
    b.output("o", "f2");
    b.output("o2", "f3");
    b.output("o3", "pi_a");
    let n = b.finish().expect("figure 4 is well-formed");
    let ids = [n.find("f2").unwrap(), n.find("a").unwrap(), n.find("b").unwrap()];
    (n, ids)
}

/// Figure 6: desired versus side-effect constants. To make `c = 0`, the
/// only slack-feasible test point is an OR gate at `a` (forcing `a = 1`),
/// which implies the *desired* chain `a = 1, b = 0, c = 0` and the
/// *side-effect* constant `e = 1`.
///
/// Returns the netlist and `(a, b, c, e)`.
pub fn fig6() -> (Netlist, [GateId; 4]) {
    let mut b = NetlistBuilder::new("fig6");
    b.input("pi_a");
    b.input("y");
    b.input("z");
    b.gate(GateKind::Buf, "a", &["pi_a"]);
    b.gate(GateKind::Inv, "b", &["a"]); // a = 1 -> b = 0
    b.gate(GateKind::And, "c", &["b", "z"]); // b = 0 -> c = 0
    b.gate(GateKind::Or, "e", &["a", "y"]); // a = 1 -> e = 1 (side effect)
    b.input("d1");
    b.dff("f1", "d1");
    b.gate(GateKind::Or, "g", &["f1", "c"]); // scan path wants c = 0
    b.dff("f2", "g");
    b.output("o", "f2");
    b.output("oe", "e");
    let n = b.finish().expect("figure 6 is well-formed");
    let ids =
        [n.find("a").unwrap(), n.find("b").unwrap(), n.find("c").unwrap(), n.find("e").unwrap()];
    (n, ids)
}

/// Figure 7: the non-reconvergent fanin region of connection `c`
/// contains `a`, `b`, `d` but not `j`, `k` (gate `g3` reaches `c` along
/// two paths) nor `e` (it leaves the cone).
///
/// Returns the netlist and `(c_net, g1, g3, gd)` — see
/// [`tpi_core::region::Region`](https://docs.rs) for the analysis.
pub fn fig7() -> (Netlist, [GateId; 4]) {
    let mut b = NetlistBuilder::new("fig7");
    b.input("i1");
    b.input("i2");
    b.input("i3");
    b.gate(GateKind::And, "g3", &["i1", "i2"]); // fanins are j, k
    b.gate(GateKind::Inv, "p1", &["g3"]);
    b.gate(GateKind::Inv, "p2", &["g3"]);
    b.gate(GateKind::And, "gb", &["p1", "p2"]); // reconvergence of g3
    b.gate(GateKind::And, "g1", &["i3", "i1"]);
    b.gate(GateKind::Inv, "ga", &["g1"]); // connection a
    b.gate(GateKind::Inv, "ge", &["g1"]); // connection e (leaves cone)
    b.gate(GateKind::And, "gd", &["ga", "gb"]); // connection d
    b.gate(GateKind::And, "gc", &["gd", "i2"]); // target c
    b.output("oc", "gc");
    b.output("oe", "ge");
    let n = b.finish().expect("figure 7 is well-formed");
    let ids = [
        n.find("gc").unwrap(),
        n.find("g1").unwrap(),
        n.find("g3").unwrap(),
        n.find("gd").unwrap(),
    ];
    (n, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_validate() {
        fig1().0.validate().unwrap();
        fig2().0.validate().unwrap();
        fig3().0.validate().unwrap();
        fig4().0.validate().unwrap();
        fig6().0.validate().unwrap();
        fig7().0.validate().unwrap();
    }

    #[test]
    fn fig1_has_four_ffs_and_the_drawn_paths() {
        let (n, [x, f1, f2, f3, f4]) = fig1();
        assert_eq!(n.dffs().len(), 4);
        // x is a side input of g1; f4 of g2.
        let g1 = n.find("g1").unwrap();
        let g2 = n.find("g2").unwrap();
        assert!(n.fanin(g1).contains(&x));
        assert!(n.fanin(g1).contains(&f1));
        assert!(n.fanin(g2).contains(&f4));
        assert!(n.fanin(g2).contains(&f2));
        assert_eq!(n.fanin(f3), &[g2]);
    }

    #[test]
    fn fig6_implication_classifies_constants() {
        use tpi_sim::{Implication, Trit};
        let (n, [a, b, c, e]) = fig6();
        let mut imp = Implication::new(&n);
        imp.force(a, Trit::One);
        assert_eq!(imp.value(b), Trit::Zero, "desired");
        assert_eq!(imp.value(c), Trit::Zero, "desired");
        assert_eq!(imp.value(e), Trit::One, "side effect");
    }

    #[test]
    fn fig3_critical_path_reaches_f2() {
        use tpi_sta::{ClockConstraint, Sta};
        let (n, [_f1, f2, a, b, _c]) = fig3();
        let lib = tpi_netlist::TechLibrary::paper();
        let sta = Sta::analyze(&n, &lib, ClockConstraint::LongestPath);
        // f2's D endpoint is critical; a and b have slack.
        assert!(sta.endpoint_slack(&n, f2) < lib.cell(GateKind::Mux).delay(1.0));
        assert!(sta.slack(a) > lib.cell(GateKind::Or).delay(1.0));
        assert!(sta.slack(b) > lib.cell(GateKind::And).delay(1.0));
    }
}
