//! Seeded synthetic circuit generation, calibrated to the paper's suite.
//!
//! The paper evaluates on SIS-optimized ISCAS89/MCNC91 netlists that are
//! not reproducible bit-for-bit here; what TPGREED/TPTIME actually
//! consume is the mapped gate-level *structure* — how many FF-to-FF
//! paths exist, how many side inputs they carry, how shared their
//! sensitization is, and how slack is distributed. The generator
//! controls exactly those properties:
//!
//! * **register chains** through single-side-input gates whose side
//!   inputs are driven by a small number of *enable* nets — one test
//!   point per enable sensitizes a whole group of hops (this is the
//!   regular-datapath structure that gives `s35932`/`dsip`/`s38584`
//!   their 75–83% overhead reductions);
//! * **control cones** with 3-input gates and reconvergence — their
//!   paths carry many unknown side inputs (≥ 2 per level), so the
//!   `gain_bound` correctly refuses to chase them (the `s38417`-style
//!   low reductions);
//! * **rings** (cyclic chains) for the partial-scan experiments,
//!   including **critical rings** built on the paper's Figure-3 pattern:
//!   every hop's side input is dominated by a deep (critical) net, so a
//!   conventional mux at any ring flip-flop would stretch the clock,
//!   while the ride branch and the side input's own control pin keep
//!   enough slack for TPTIME's mux-plus-test-point plan;
//! * **free enables** that are plain primary-input buffers, reproducing
//!   the paper's small `#free` column.
//!
//! Everything is deterministic per (spec, seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpi_netlist::{GateId, GateKind, Netlist};

/// Structural parameters of a synthetic circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureClass {
    /// Fraction of flip-flops arranged in shift chains.
    pub chain_fraction: f64,
    /// Flip-flops per chain.
    pub chain_len: usize,
    /// Number of distinct enable nets shared by the chain hops.
    pub enable_groups: usize,
    /// How many enables are plain PI buffers (freely assignable).
    pub free_enables: usize,
    /// Fraction of chains closed into rings (s-graph cycles).
    pub ring_fraction: f64,
    /// Depth of the D cones of non-chain flip-flops.
    pub cone_depth: usize,
    /// Number of Figure-3-style *critical rings* (see module docs).
    pub critical_rings: usize,
    /// Flip-flops per critical ring.
    pub critical_ring_len: usize,
    /// Give each critical ring one shallow (timing-safe) hop, so TD-CB
    /// can break it without degradation; without it only TPTIME can.
    pub critical_ring_shallow: bool,
    /// Fraction of filler-cone levels that are single-input rail links
    /// (Inv/Buf), modeling the buffer/inverter rails of mapped netlists.
    /// Rails always propagate implications, so filler built with a high
    /// fraction has deep forward-implication cones. `0.0` (all legacy
    /// classes) keeps the original 4-level 3-input filler and draws no
    /// extra RNG values, so existing suite circuits are bit-identical.
    pub rail_fraction: f64,
}

impl StructureClass {
    /// Regular datapath: long chains, few shared enables. Every chain is
    /// closed into a ring — real datapath registers (counters, LFSRs,
    /// rotators) feed back, which is what gives the paper's Table III its
    /// large selected-FF counts on these circuits. A ring of `L`
    /// flip-flops still contributes exactly `L - 1` usable scan paths
    /// (the chain-acyclicity rule drops one hop), so Table I's `D` is
    /// unchanged relative to open chains.
    pub fn datapath(chain_len: usize, enable_groups: usize, free_enables: usize) -> Self {
        StructureClass {
            chain_fraction: 1.0,
            chain_len,
            enable_groups,
            free_enables,
            ring_fraction: 1.0,
            cone_depth: 3,
            critical_rings: 1,
            critical_ring_len: 4,
            critical_ring_shallow: true,
            rail_fraction: 0.0,
        }
    }

    /// Mixed datapath + random control logic.
    pub fn mixed(
        chain_fraction: f64,
        chain_len: usize,
        enable_groups: usize,
        free_enables: usize,
    ) -> Self {
        StructureClass {
            chain_fraction,
            chain_len,
            enable_groups,
            free_enables,
            ring_fraction: 0.15,
            cone_depth: 3,
            critical_rings: 2,
            critical_ring_len: 4,
            critical_ring_shallow: true,
            rail_fraction: 0.0,
        }
    }

    /// One long shift-add style chain with per-stage side inputs, closed
    /// into a hard critical ring (the `mult32` circuits: every method but
    /// TPTIME degrades the clock).
    pub fn multiplier(chain_len: usize) -> Self {
        StructureClass {
            chain_fraction: 1.0,
            chain_len,
            enable_groups: chain_len.saturating_sub(1).max(1),
            free_enables: 1,
            ring_fraction: 0.0,
            cone_depth: 4,
            critical_rings: 1,
            critical_ring_len: 3,
            critical_ring_shallow: false,
            rail_fraction: 0.0,
        }
    }

    /// Mixed control + deep mapped-logic filler: like
    /// [`StructureClass::mixed`], but the filler cones are `cone_depth`
    /// levels deep and `rail_fraction` of the levels are inverter/buffer
    /// rail links. Forcing a net inside such filler implies a long
    /// forward cascade — the regime where per-candidate implication
    /// previews dominate TPGREED's gain sweep.
    pub fn deep_logic(
        chain_fraction: f64,
        chain_len: usize,
        enable_groups: usize,
        free_enables: usize,
        cone_depth: usize,
        rail_fraction: f64,
    ) -> Self {
        StructureClass {
            chain_fraction,
            chain_len,
            enable_groups,
            free_enables,
            ring_fraction: 0.15,
            cone_depth,
            critical_rings: 2,
            critical_ring_len: 4,
            critical_ring_shallow: true,
            rail_fraction,
        }
    }

    /// Sets the number of hard (no shallow hop) critical rings.
    pub fn with_hard_rings(mut self, rings: usize, len: usize) -> Self {
        self.critical_rings = rings;
        self.critical_ring_len = len;
        self.critical_ring_shallow = false;
        self
    }
}

/// A complete circuit specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSpec {
    /// Circuit name (reused from the paper's suite).
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// Approximate combinational gate budget (filler logic pads to it).
    pub target_gates: usize,
    /// Structure parameters.
    pub structure: StructureClass,
    /// RNG seed (fixed per suite entry for reproducibility).
    pub seed: u64,
}

/// Generates the circuit for `spec`. The result is validated: proper
/// arities, no combinational cycles, every flip-flop driven.
///
/// # Example
///
/// ```
/// use tpi_workloads::{generate, CircuitSpec, StructureClass};
/// let spec = CircuitSpec {
///     name: "tiny".into(),
///     inputs: 4,
///     outputs: 2,
///     ffs: 12,
///     target_gates: 60,
///     structure: StructureClass::datapath(4, 2, 1),
///     seed: 7,
/// };
/// let n = generate(&spec);
/// assert_eq!(n.dffs().len(), 12);
/// ```
pub fn generate(spec: &CircuitSpec) -> Netlist {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5ca1ab1e);
    let mut n = Netlist::new(spec.name.clone());
    let st = spec.structure;

    // --- Ports and state elements ---------------------------------
    let pis: Vec<GateId> = (0..spec.inputs.max(1)).map(|i| n.add_input(format!("pi{i}"))).collect();
    let ffs: Vec<GateId> =
        (0..spec.ffs).map(|i| n.add_gate(GateKind::Dff, format!("f{i}"))).collect();
    let mut driven = vec![false; spec.ffs];

    // --- Enables ---------------------------------------------------
    let mut enables: Vec<GateId> = Vec::new();
    let mut enable_invs: Vec<GateId> = Vec::new();
    for g in 0..st.enable_groups.max(1) {
        let pi = pis[rng.gen_range(0..pis.len())];
        let e = if g < st.free_enables {
            // Freely assignable: a plain buffer of a primary input.
            let e = n.add_gate(GateKind::Buf, format!("en{g}"));
            n.connect(pi, e).expect("buf takes one fanin");
            e
        } else {
            // Unjustifiable from the PIs: XOR with a flip-flop output.
            let ff = ffs[rng.gen_range(0..spec.ffs.max(1))];
            let e = n.add_gate(GateKind::Xor, format!("en{g}"));
            n.connect(pi, e).expect("xor pin 0");
            n.connect(ff, e).expect("xor pin 1");
            e
        };
        let ei = n.add_gate(GateKind::Inv, format!("en{g}_b"));
        n.connect(e, ei).expect("inv takes one fanin");
        enables.push(e);
        enable_invs.push(ei);
    }

    // --- Budget split ----------------------------------------------
    let crit_ff_count = (st.critical_rings * st.critical_ring_len).min(spec.ffs);
    let rest = spec.ffs - crit_ff_count;
    let chain_ffs = (((rest) as f64) * st.chain_fraction).round() as usize;
    let chain_ffs = chain_ffs.min(rest);

    // --- Filler / deep logic first, so flip-flop cones can stack on
    //     it and FF endpoints actually own the clock. ---------------
    let mut pool: Vec<GateId> = Vec::new();
    // Nets with pure primary-input ancestry (no flip-flop anywhere in
    // their cone). Critical-ring side inputs draw on these, so the rings
    // are timing-critical without acquiring FF->ring s-graph edges.
    let mut pure_pool: Vec<GateId> = Vec::new();
    let mut filler_roots: Vec<GateId> = Vec::new();
    let mut comb_count = n.comb_gates().len();
    let mut salt = 100_000;
    let filler_depth = if st.rail_fraction > 0.0 { st.cone_depth.max(1) } else { 4 };
    while comb_count + 4 * (rest - chain_ffs) < spec.target_gates {
        let root = if salt % 4 == 0 {
            let limit = pure_pool.len();
            build_cone(&mut n, &mut rng, &pis, &[], &mut pure_pool, filler_depth, salt, limit, 0.0)
        } else {
            let limit = pool.len();
            build_cone(
                &mut n,
                &mut rng,
                &pis,
                &ffs,
                &mut pool,
                filler_depth,
                salt,
                limit,
                st.rail_fraction,
            )
        };
        comb_count += filler_depth;
        filler_roots.push(root);
        salt += 1;
        if filler_roots.len() > spec.target_gates {
            break; // safety
        }
    }

    // Flip-flop cones may only stack on the shallower half of the pool,
    // so primary outputs (not every state cone) own the clock and cyclic
    // control flip-flops retain escape slack, as real control logic does.
    let ff_pool_limit = pool.len() / 2;

    // --- Critical rings (Figure-3 pattern): flip-flops reserved now,
    //     wired after the rest of the circuit exists so the ring's deep
    //     anchor can be sized from measured timing. Temporarily driven
    //     from a primary input so the netlist stays analyzable. --------
    let mut crit_members: Vec<Vec<usize>> = Vec::new();
    let mut crit_idx = 0;
    for _ring in 0..st.critical_rings {
        let len = st.critical_ring_len.max(2);
        if crit_idx + len > crit_ff_count {
            break;
        }
        let members: Vec<usize> = (crit_idx..crit_idx + len).collect();
        crit_idx += len;
        for &m in &members {
            let pi = pis[rng.gen_range(0..pis.len())];
            n.connect(pi, ffs[m]).expect("dff takes one fanin");
            driven[m] = true;
        }
        crit_members.push(members);
    }
    // Any critical-ring budget not consumed becomes ordinary state FFs.

    // --- Chains ------------------------------------------------------
    let chain_start = crit_ff_count;
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let chain_len = st.chain_len.max(2);
    let mut idx = chain_start;
    while idx < chain_start + chain_ffs {
        let len = chain_len.min(chain_start + chain_ffs - idx);
        if len < 2 {
            break;
        }
        chains.push((idx..idx + len).collect());
        idx += len;
    }
    let ring_count = ((chains.len() as f64) * st.ring_fraction).round() as usize;
    // Enable groups rotate over *hops* (not chains): with few groups the
    // sharing is unchanged, and per-stage-side circuits (mult32) get one
    // enable per hop as the paper's counts imply.
    let mut hop_counter = 0usize;
    for (ci, chain) in chains.iter().enumerate() {
        for w in chain.windows(2) {
            let group = hop_counter % enables.len().max(1);
            hop_counter += 1;
            let (src, dst) = (ffs[w[0]], ffs[w[1]]);
            let hop = build_hop(&mut n, &mut rng, src, enables[group], enable_invs[group], w[0]);
            n.connect(hop, dst).expect("dff takes one fanin");
            driven[w[1]] = true;
        }
        let head = chain[0];
        let tail = *chain.last().expect("chains have length >= 2");
        if ci < ring_count {
            let group = hop_counter % enables.len().max(1);
            hop_counter += 1;
            let hop =
                build_hop(&mut n, &mut rng, ffs[tail], enables[group], enable_invs[group], tail);
            n.connect(hop, ffs[head]).expect("dff takes one fanin");
        } else {
            let pi = pis[rng.gen_range(0..pis.len())];
            n.connect(pi, ffs[head]).expect("dff takes one fanin");
        }
        driven[head] = true;
    }

    // --- Control cones for the remaining flip-flops ------------------
    for i in 0..spec.ffs {
        if driven[i] {
            continue;
        }
        let cone = build_cone(
            &mut n,
            &mut rng,
            &pis,
            &ffs,
            &mut pool,
            st.cone_depth,
            i,
            ff_pool_limit,
            0.0,
        );
        n.connect(cone, ffs[i]).expect("dff takes one fanin");
        driven[i] = true;
    }

    // --- Wire the critical rings against measured timing -------------
    if !crit_members.is_empty() {
        let lib = tpi_netlist::TechLibrary::paper();
        let sta = tpi_sta::Sta::analyze(&n, &lib, tpi_sta::ClockConstraint::LongestPath);
        let max_arrival = sta.circuit_delay();
        // Anchor: a pure-PI inverter ladder whose arrival exceeds every
        // existing endpoint by a margin, so the rings own the clock and
        // every non-ring flip-flop keeps mux-sized slack.
        let base = pure_pool.last().copied().unwrap_or_else(|| pis[rng.gen_range(0..pis.len())]);
        let inv_delay = lib.cell(GateKind::Inv).delay(lib.cell(GateKind::And).input_load);
        let need = (max_arrival + 3.0 - sta.arrival(base)).max(0.0);
        let rungs = (need / inv_delay).ceil() as usize + 1;
        let mut anchor = base;
        for l in 0..rungs {
            let inv = n.add_gate(GateKind::Inv, format!("anchor{l}"));
            n.connect(anchor, inv).expect("inv takes one fanin");
            anchor = inv;
        }
        for (ring, members) in crit_members.iter().enumerate() {
            let len = members.len();
            // Shared, PI-unjustifiable control pin; its state input comes
            // from a non-critical flip-flop so the control never closes an
            // all-critical cycle.
            let ctl = {
                let pi = pis[rng.gen_range(0..pis.len())];
                let ff = if rest > 0 {
                    ffs[crit_ff_count + rng.gen_range(0..rest)]
                } else {
                    ffs[rng.gen_range(0..spec.ffs)]
                };
                let x = n.add_gate(GateKind::Xor, format!("rctl{ring}"));
                n.connect(pi, x).expect("xor pin 0");
                n.connect(ff, x).expect("xor pin 1");
                x
            };
            for (k, &m) in members.iter().enumerate() {
                let prev = members[(k + len - 1) % len];
                let dst = ffs[m];
                let ride = ffs[prev];
                let shallow = st.critical_ring_shallow && k == 0;
                let side = if shallow {
                    // One timing-safe hop: plain enable side input.
                    enable_invs[ring % enable_invs.len()]
                } else {
                    // Deep, critical side input: AND(anchor, ctl). Forcing
                    // ctl = 0 sensitizes the OR hop without touching the
                    // deep branch (the paper's b -> c trick, Fig. 3).
                    let sgate = n.add_gate(GateKind::And, format!("rside{ring}_{k}"));
                    n.connect(anchor, sgate).expect("and pin 0");
                    n.connect(ctl, sgate).expect("and pin 1");
                    sgate
                };
                let hop = n.add_gate(GateKind::Or, format!("rhop{ring}_{k}"));
                n.connect(ride, hop).expect("hop pin 0");
                n.connect(side, hop).expect("hop pin 1");
                n.replace_fanin(dst, 0, hop).expect("ring FFs have a temp D");
            }
        }
    }

    // --- Primary outputs ----------------------------------------------
    let mut sources: Vec<GateId> = Vec::new();
    sources.extend(filler_roots.iter().copied());
    sources.extend(ffs.iter().copied());
    sources.extend(pool.iter().copied());
    for o in 0..spec.outputs.max(1) {
        let src = sources[o % sources.len()];
        n.add_output(format!("po{o}"), src).expect("sources are valid");
    }

    n.validate().expect("generated circuits are valid by construction");
    n
}

/// One chain hop: `gate(ride, enable-or-its-complement)`. Gate polarity
/// rotates so the suite exercises AND/NAND/OR/NOR hops; the side input
/// always sensitizes when the group's enable is forced to 1.
fn build_hop(
    n: &mut Netlist,
    rng: &mut StdRng,
    ride_from: GateId,
    enable: GateId,
    enable_inv: GateId,
    salt: usize,
) -> GateId {
    let kind = match rng.gen_range(0..4) {
        0 => GateKind::And,
        1 => GateKind::Nand,
        2 => GateKind::Or,
        _ => GateKind::Nor,
    };
    // Enable = 1 sensitizes AND/NAND directly; OR/NOR take the inverted
    // enable so a single test point (enable = 1) serves the whole group.
    let side = match kind {
        GateKind::And | GateKind::Nand => enable,
        _ => enable_inv,
    };
    let hop = n.add_gate(kind, format!("hop{salt}"));
    n.connect(ride_from, hop).expect("hop pin 0");
    n.connect(side, hop).expect("hop pin 1");
    hop
}

/// A random fanin cone of the given depth over existing nets. Uses
/// 3-input gates, and samples flip-flop outputs only at the deepest
/// level, so every FF-to-FF path through a cone carries at least
/// `2 * depth` unknown side inputs — beyond what `gain_bound = 0.5`
/// will chase, exactly as the paper intends for irregular logic.
#[allow(clippy::too_many_arguments)] // an internal builder, not API
fn build_cone(
    n: &mut Netlist,
    rng: &mut StdRng,
    pis: &[GateId],
    ffs: &[GateId],
    pool: &mut Vec<GateId>,
    depth: usize,
    salt: usize,
    pool_limit: usize,
    rail_fraction: f64,
) -> GateId {
    let mut last = if !ffs.is_empty() && rng.gen_bool(0.7) {
        ffs[rng.gen_range(0..ffs.len())]
    } else {
        pis[rng.gen_range(0..pis.len())]
    };
    for d in 0..depth.max(1) {
        // Rail link: a single-input Inv/Buf stage (mapped-netlist
        // buffer/inverter rails). Guarded so legacy classes
        // (`rail_fraction == 0`) draw no extra RNG values.
        if rail_fraction > 0.0 && rng.gen_bool(rail_fraction) {
            let kind = if rng.gen_bool(0.5) { GateKind::Inv } else { GateKind::Buf };
            let g = n.add_gate(kind, format!("rail{salt}_{d}"));
            n.connect(last, g).expect("rail takes one fanin");
            pool.push(g);
            last = g;
            continue;
        }
        let kind = match rng.gen_range(0..5) {
            0 => GateKind::Nand,
            1 => GateKind::Nor,
            2 => GateKind::And,
            3 => GateKind::Or,
            _ => GateKind::Nand,
        };
        let g = n.add_gate(kind, format!("cone{salt}_{d}"));
        n.connect(last, g).expect("cone pin 0");
        for _ in 0..2 {
            let src = select_source(rng, pis, ffs, &pool[..pool_limit.min(pool.len())], d == 0);
            n.connect(src, g).expect("cone pins");
        }
        pool.push(g);
        last = g;
    }
    last
}

fn select_source(
    rng: &mut StdRng,
    pis: &[GateId],
    ffs: &[GateId],
    pool: &[GateId],
    allow_ff: bool,
) -> GateId {
    // Mapped logic exposes few primary-input-adjacent side inputs; keep
    // cone sources dominated by internal nets so backward justification
    // behaves like the paper's circuits (small `#free` column).
    let r = rng.gen_range(0..100);
    if allow_ff && r < 35 && !ffs.is_empty() {
        ffs[rng.gen_range(0..ffs.len())]
    } else if r < 90 && !pool.is_empty() {
        pool[rng.gen_range(0..pool.len())]
    } else {
        pis[rng.gen_range(0..pis.len())]
    }
}

/// The 11-circuit suite of the paper's Tables I–III, with interface
/// statistics (#I, #O, #FF) from Table II and structure calibrated from
/// Table I (see module docs). Gate budgets are scaled-down stand-ins for
/// the SIS-mapped sizes; absolute areas are not comparable, shapes are.
pub fn suite() -> Vec<CircuitSpec> {
    let spec = |name: &str,
                inputs: usize,
                outputs: usize,
                ffs: usize,
                target_gates: usize,
                structure: StructureClass,
                seed: u64| CircuitSpec {
        name: name.into(),
        inputs,
        outputs,
        ffs,
        target_gates,
        structure,
        seed,
    };
    vec![
        spec("s5378", 35, 49, 152, 1400, StructureClass::mixed(0.58, 4, 28, 3), 11),
        spec("s9234", 36, 39, 135, 1200, StructureClass::mixed(0.60, 4, 35, 1), 12),
        spec("s13207", 31, 121, 453, 2800, StructureClass::mixed(0.60, 4, 120, 2), 13),
        spec("s15850", 14, 87, 540, 4400, StructureClass::mixed(0.62, 4, 137, 2), 14),
        spec("s35932", 35, 320, 1728, 9000, StructureClass::datapath(6, 3, 3), 15),
        spec(
            "s38417",
            28,
            106,
            1636,
            9000,
            StructureClass::mixed(0.42, 3, 169, 8).with_hard_rings(2, 4),
            16,
        ),
        spec("s38584", 12, 278, 1294, 8000, StructureClass::datapath(8, 164, 1), 17),
        spec(
            "bigkey",
            262,
            197,
            224,
            2200,
            StructureClass::mixed(1.0, 2, 112, 3).with_hard_rings(2, 4),
            18,
        ),
        spec("dsip", 228, 197, 224, 1600, StructureClass::datapath(4, 4, 3), 19),
        spec("mult32a", 33, 1, 32, 500, StructureClass::multiplier(29), 20),
        spec(
            "mult32b",
            32,
            1,
            61,
            450,
            {
                let mut s = StructureClass::multiplier(29);
                s.chain_fraction = 29.0 / 58.0;
                s
            },
            21,
        ),
    ]
}

/// Generates the whole Table-I workload set.
pub fn table1_workloads() -> Vec<Netlist> {
    suite().iter().map(generate).collect()
}

/// Two small circuits (one mixed, one datapath) for smoke tests and CI:
/// they exercise both flow families in well under a second, unlike the
/// full [`suite`].
pub fn smoke_suite() -> Vec<CircuitSpec> {
    vec![
        CircuitSpec {
            name: "smoke_mixed".into(),
            inputs: 8,
            outputs: 6,
            ffs: 24,
            target_gates: 140,
            structure: StructureClass::mixed(0.5, 4, 5, 1),
            seed: 101,
        },
        CircuitSpec {
            name: "smoke_dp".into(),
            inputs: 6,
            outputs: 4,
            ffs: 16,
            target_gates: 100,
            structure: StructureClass::datapath(4, 2, 1),
            seed: 102,
        },
    ]
}

/// One ~50k-gate circuit for performance validation: the scale where the
/// TPGREED gain sweep dominates wall time and the word-parallel lane
/// engine's advantage is measured (see `tpi-bench --large` and
/// EXPERIMENTS.md). Deep-cone, rail-heavy structure (~52k gates as
/// generated): forcing a net implies a long forward cascade, so a
/// scalar gain sweep re-propagates tens of thousands of nets per
/// candidate — the regime the word-parallel lane engine compresses by
/// batching 64 cone-mate candidates into one wave.
pub fn large_suite() -> Vec<CircuitSpec> {
    vec![CircuitSpec {
        name: "gen50k".into(),
        inputs: 40,
        outputs: 40,
        ffs: 484,
        target_gates: 15_500,
        structure: StructureClass::deep_logic(0.5, 4, 48, 6, 128, 0.7),
        seed: 606,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CircuitSpec {
        CircuitSpec {
            name: "small".into(),
            inputs: 6,
            outputs: 4,
            ffs: 24,
            target_gates: 120,
            structure: StructureClass::mixed(0.5, 4, 4, 1),
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(
            tpi_netlist::write_bench(&a),
            tpi_netlist::write_bench(&b),
            "same spec + seed must give identical netlists"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = small_spec();
        s2.seed = 43;
        let a = generate(&small_spec());
        let b = generate(&s2);
        assert_ne!(tpi_netlist::write_bench(&a), tpi_netlist::write_bench(&b));
    }

    #[test]
    fn interface_counts_match_spec() {
        let spec = small_spec();
        let n = generate(&spec);
        assert_eq!(n.inputs().len(), spec.inputs);
        assert_eq!(n.outputs().len(), spec.outputs);
        assert_eq!(n.dffs().len(), spec.ffs);
    }

    #[test]
    fn every_ff_is_driven_and_netlist_validates() {
        let n = generate(&small_spec());
        for ff in n.dffs() {
            assert_eq!(n.fanin(ff).len(), 1);
        }
        n.validate().unwrap();
    }

    #[test]
    fn gate_budget_is_respected_within_slack() {
        let spec = CircuitSpec { target_gates: 400, ..small_spec() };
        let n = generate(&spec);
        let got = n.comb_gates().len();
        assert!(got >= 380, "budget under-filled: {got}");
    }

    #[test]
    fn datapath_class_creates_single_side_hops() {
        let spec = CircuitSpec {
            name: "dp".into(),
            inputs: 4,
            outputs: 2,
            ffs: 16,
            target_gates: 0,
            structure: StructureClass::datapath(4, 2, 1),
            seed: 1,
        };
        let n = generate(&spec);
        let hops = n.gate_ids().filter(|&g| n.gate_name(g).starts_with("hop")).count();
        assert!(hops >= 8, "expected chain hops, got {hops}");
    }

    #[test]
    fn critical_rings_exist_and_close_cycles() {
        let spec = CircuitSpec {
            name: "crit".into(),
            inputs: 6,
            outputs: 2,
            ffs: 20,
            target_gates: 80,
            structure: StructureClass::mixed(0.4, 4, 3, 1).with_hard_rings(1, 4),
            seed: 9,
        };
        let n = generate(&spec);
        // ring hops exist
        let rhops = n.gate_ids().filter(|&g| n.gate_name(g).starts_with("rhop")).count();
        assert_eq!(rhops, 4);
        // the ring members feed each other: f0 -> rhop -> f1 (mod 4)
        let f0 = n.find("f0").unwrap();
        assert!(n.fanout(f0).iter().any(|&(s, _)| n.gate_name(s).starts_with("rhop")));
    }

    #[test]
    fn suite_has_the_papers_eleven_circuits() {
        let s = suite();
        assert_eq!(s.len(), 11);
        let names: Vec<&str> = s.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"s35932"));
        assert!(names.contains(&"mult32b"));
        let s35932 = s.iter().find(|c| c.name == "s35932").unwrap();
        assert_eq!((s35932.inputs, s35932.outputs, s35932.ffs), (35, 320, 1728));
        let bigkey = s.iter().find(|c| c.name == "bigkey").unwrap();
        assert_eq!((bigkey.inputs, bigkey.outputs, bigkey.ffs), (262, 197, 224));
    }

    #[test]
    fn all_suite_circuits_generate_and_validate() {
        for spec in suite() {
            let n = generate(&spec);
            assert_eq!(n.dffs().len(), spec.ffs, "{}", spec.name);
            n.validate().unwrap();
        }
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    /// The structural contract behind the Table I calibration: a pure
    /// datapath spec yields exactly (chain_len - 1) hops per open chain
    /// and chain_len per ring, all single-side-input.
    #[test]
    fn datapath_hop_budget_matches_formula() {
        let spec = CircuitSpec {
            name: "cal".into(),
            inputs: 6,
            outputs: 2,
            ffs: 24,
            target_gates: 0,
            structure: StructureClass {
                ring_fraction: 0.0,
                critical_rings: 0,
                ..StructureClass::datapath(6, 2, 1)
            },
            seed: 3,
        };
        let n = generate(&spec);
        let hops: Vec<_> = n.gate_ids().filter(|&g| n.gate_name(g).starts_with("hop")).collect();
        // 24 FFs in chains of 6 -> 4 chains x 5 hops.
        assert_eq!(hops.len(), 20);
        for &h in &hops {
            assert_eq!(n.fanin(h).len(), 2, "hops carry exactly one side input");
        }
    }

    /// Free enables are PI buffers; the rest are XORs with state inputs
    /// (the `#free` column contract).
    #[test]
    fn enable_kinds_match_free_budget() {
        let spec = CircuitSpec {
            name: "en".into(),
            inputs: 6,
            outputs: 2,
            ffs: 16,
            target_gates: 0,
            structure: StructureClass::datapath(4, 5, 2),
            seed: 8,
        };
        let n = generate(&spec);
        let mut bufs = 0;
        let mut xors = 0;
        for g in n.gate_ids() {
            if n.gate_name(g).starts_with("en") && !n.gate_name(g).ends_with("_b") {
                match n.kind(g) {
                    GateKind::Buf => bufs += 1,
                    GateKind::Xor => xors += 1,
                    other => panic!("unexpected enable kind {other:?}"),
                }
            }
        }
        assert_eq!(bufs, 2);
        assert_eq!(xors, 3);
    }

    /// Critical rings own the clock: the deepest endpoint is a ring FF's
    /// D net, and every non-ring FF keeps mux-sized slack.
    #[test]
    fn critical_rings_own_the_clock() {
        use tpi_netlist::TechLibrary;
        use tpi_sta::{ClockConstraint, Sta};
        let spec = CircuitSpec {
            name: "crit".into(),
            inputs: 6,
            outputs: 4,
            ffs: 24,
            target_gates: 200,
            structure: StructureClass::mixed(0.4, 4, 3, 1).with_hard_rings(1, 4),
            seed: 12,
        };
        let n = generate(&spec);
        let lib = TechLibrary::paper();
        let sta = Sta::analyze(&n, &lib, ClockConstraint::LongestPath);
        let t_mux = lib.cell(GateKind::Mux).delay(1.0);
        // Ring members occupy indices 0..4.
        let ring: Vec<_> = (0..4).map(|i| n.find(&format!("f{i}")).unwrap()).collect();
        let critical_ring_members =
            ring.iter().filter(|&&ff| sta.endpoint_slack(&n, ff) < t_mux).count();
        assert!(
            critical_ring_members >= 3,
            "hard-ring members must be timing-critical: {critical_ring_members}/4"
        );
        for ff in n.dffs() {
            if ring.contains(&ff) {
                continue;
            }
            assert!(
                sta.endpoint_slack(&n, ff) > t_mux,
                "non-ring FF {} lacks escape slack",
                n.gate_name(ff)
            );
        }
    }
}
