//! The job service: worker pool + queue + cache + metrics.

use crate::cache::{CacheSource, ResultCache};
use crate::job::{FlowKind, JobSpec};
use crate::json::JsonObject;
use crate::key::{cache_key, netlist_fingerprint, CacheKey};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tpi_core::{
    CancelKind, CounterSnapshot, FlowError, FlowOptions, FullScanFlow, PartialScanFlow, Progress,
};
use tpi_lint::{has_errors, lint_netlist, Diagnostic, LintCode, LintConfig};
use tpi_obs::{FlowMetrics, HistogramSnapshot, Recorder};
use tpi_par::{Threads, WorkerPool};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (`0` = all hardware threads). Payloads are
    /// byte-identical at every setting; this only changes throughput.
    pub threads: usize,
    /// In-memory LRU capacity, in payloads.
    pub cache_capacity: usize,
    /// Optional on-disk cache directory (shared across service
    /// lifetimes — this is what makes re-runs warm).
    pub cache_dir: Option<PathBuf>,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { threads: 0, cache_capacity: 256, cache_dir: None, default_deadline: None }
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The flow ran (or was served from cache) and produced a payload.
    Completed,
    /// The job's deadline expired before the flow finished; the partial
    /// work was discarded at an iteration boundary.
    TimedOut,
    /// [`JobHandle::cancel`] stopped the job.
    Canceled,
    /// The job itself was bad: unparsable netlist, a flow panic, or a
    /// chain that failed the §V flush test. The message is
    /// human-readable and specific (for flush failures it carries the
    /// gate and expected/observed trits).
    Failed(String),
}

impl JobStatus {
    /// Short label for logs and filenames.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::TimedOut => "timed-out",
            JobStatus::Canceled => "canceled",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// Everything the service reports about one finished job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission-ordered job id (unique per service).
    pub id: u64,
    /// Flow label (`full-scan`, `cb`, `td-cb`, `tptime`).
    pub flow: &'static str,
    /// Terminal state.
    pub status: JobStatus,
    /// The content-addressed key (`None` when the netlist never
    /// parsed, so no identity exists).
    pub key: Option<CacheKey>,
    /// The deterministic payload (`None` unless `Completed`).
    pub payload: Option<Arc<str>>,
    /// Where the payload came from.
    pub cache: CacheSource,
    /// Wall-clock time from dequeue to finish (cache hits included —
    /// this is what the cold/warm comparison measures).
    pub wall: Duration,
    /// Per-phase counters from this job's live run (all zero for cache
    /// hits: nothing ran).
    pub counters: CounterSnapshot,
    /// `true` iff the job completed *and* its result passed the
    /// independent post-flow verifier (`tpi-lint`). Cache hits are
    /// verified by construction: a payload is only ever cached after a
    /// checked run.
    pub verified: bool,
    /// Lint findings for this job: pre-flight structural warnings, and
    /// — when the job failed verification — the verifier's findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-phase spans and counters recorded by this job's live run
    /// (empty for cache hits and pre-run failures: nothing ran).
    pub metrics: FlowMetrics,
    /// Aggregate service metrics — jobs, cache hit/miss counts, queue
    /// latency histogram — snapshotted when this job finished.
    pub service: MetricsSnapshot,
}

/// Handle to one submitted job.
pub struct JobHandle {
    id: u64,
    rx: mpsc::Receiver<JobReport>,
    progress: Arc<Progress>,
}

impl JobHandle {
    /// The job's id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation; the flow stops at its next checkpoint.
    /// Idempotent, and a no-op once the job finished.
    pub fn cancel(&self) {
        self.progress.cancel();
    }

    /// Blocks until the job finishes and returns its report.
    pub fn wait(self) -> JobReport {
        self.rx.recv().unwrap_or_else(|_| JobReport {
            id: self.id,
            flow: "unknown",
            status: JobStatus::Failed("worker disappeared before reporting".into()),
            key: None,
            payload: None,
            cache: CacheSource::Cold,
            wall: Duration::ZERO,
            counters: CounterSnapshot::default(),
            verified: false,
            diagnostics: Vec::new(),
            metrics: FlowMetrics::default(),
            service: MetricsSnapshot::default(),
        })
    }
}

/// A lightweight receipt for a job submitted with
/// [`JobService::submit_with`]: enough to identify and cancel the job,
/// but no channel — the completion callback is how the report comes
/// back. Dropping the ticket does not cancel anything.
pub struct JobTicket {
    id: u64,
    progress: Arc<Progress>,
}

impl JobTicket {
    /// The job's id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation; the flow stops at its next checkpoint.
    /// Idempotent, and a no-op once the job finished.
    pub fn cancel(&self) {
        self.progress.cancel();
    }
}

/// Monotonic service counters.
#[derive(Debug, Default)]
struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits_memory: AtomicU64,
    cache_hits_disk: AtomicU64,
    cache_misses: AtomicU64,
    timed_out: AtomicU64,
    canceled: AtomicU64,
    failed: AtomicU64,
    peer_seeds: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs accepted by [`JobService::submit`].
    pub submitted: u64,
    /// Jobs that produced a payload (cold or cached).
    pub completed: u64,
    /// Payloads served from the in-memory LRU.
    pub cache_hits_memory: u64,
    /// Payloads served from the disk directory.
    pub cache_hits_disk: u64,
    /// Jobs whose flow actually ran.
    pub cache_misses: u64,
    /// Jobs stopped by their deadline.
    pub timed_out: u64,
    /// Jobs stopped by [`JobHandle::cancel`].
    pub canceled: u64,
    /// Bad jobs (parse errors, flow panics, flush failures).
    pub failed: u64,
    /// Payloads seeded into the cache from a sibling backend via
    /// [`JobService::seed`] (the PeerFetch protocol) rather than a
    /// local run.
    pub peer_seeds: u64,
    /// Time jobs spent queued before a worker picked them up (log₂-µs
    /// buckets).
    pub queue_latency: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Fraction of completed lookups served from a cache (memory or
    /// disk); `0.0` before any lookup resolved.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits_memory + self.cache_hits_disk;
        let total = hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as JSON (`tpi-serve-metrics/v1`). Counters
    /// and the hit rate are deterministic for a deterministic job
    /// sequence; the queue-latency histogram is wall-clock data and
    /// belongs to no byte-stability contract.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("schema", "tpi-serve-metrics/v1")
            .field_u64("submitted", self.submitted)
            .field_u64("completed", self.completed)
            .field_u64("cache_hits_memory", self.cache_hits_memory)
            .field_u64("cache_hits_disk", self.cache_hits_disk)
            .field_u64("cache_misses", self.cache_misses)
            .field_u64("timed_out", self.timed_out)
            .field_u64("canceled", self.canceled)
            .field_u64("failed", self.failed)
            .field_u64("peer_seeds", self.peer_seeds)
            .field_f64("cache_hit_rate", self.cache_hit_rate())
            .field_object("queue_latency", self.queue_latency.to_json_object());
        o.finish()
    }
}

struct Shared {
    cache: Mutex<ResultCache>,
    metrics: Metrics,
    /// Service-level observability: queue-latency and job-wall
    /// histograms (per-job span trees live in per-job recorders).
    obs: Recorder,
    threads: usize,
}

/// A long-lived DFT job service.
///
/// Submit [`JobSpec`]s from any thread; a fixed pool of workers (see
/// [`tpi_par::WorkerPool`]) executes them concurrently. Results are
/// content-addressed: resubmitting the same netlist + config returns
/// the cached payload byte-for-byte. Dropping the service drains the
/// queue (already-submitted jobs finish) and joins the workers.
///
/// # Example
///
/// ```
/// use tpi_serve::{JobService, JobSpec, ServiceConfig};
/// use tpi_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("tiny");
/// b.input("d");
/// b.dff("f0", "d");
/// b.output("o", "f0");
/// let n = b.finish().unwrap();
///
/// let service = JobService::new(ServiceConfig::default());
/// let report = service.submit(JobSpec::full_scan(n)).wait();
/// assert!(report.payload.is_some());
/// ```
pub struct JobService {
    pool: WorkerPool,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    default_deadline: Option<Duration>,
}

impl JobService {
    /// Starts the workers (idle until jobs arrive).
    pub fn new(config: ServiceConfig) -> Self {
        let ServiceConfig { threads, cache_capacity, cache_dir, default_deadline } = config;
        let shared = Arc::new(Shared {
            cache: Mutex::new(ResultCache::new(cache_capacity, cache_dir)),
            metrics: Metrics::default(),
            obs: Recorder::new(),
            threads,
        });
        JobService {
            pool: WorkerPool::new(Threads::from_knob(threads)),
            shared,
            next_id: AtomicU64::new(0),
            default_deadline,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Enqueues a job. The deadline clock starts *now* (queue time
    /// counts — a deadline is a promise to the caller, not to the CPU).
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let (tx, rx) = mpsc::channel();
        let ticket = self.submit_with(spec, move |report| {
            let _ = tx.send(report); // receiver may have been dropped
        });
        let JobTicket { id, progress } = ticket;
        JobHandle { id, rx, progress }
    }

    /// Enqueues a job and delivers its report through `notify` instead
    /// of a handle: the callback runs on the worker thread the moment
    /// the job finishes, which is what lets a poll-loop server keep
    /// zero threads parked per in-flight request. `notify` must not
    /// block for long — it runs on a `tpi-par` worker, and every
    /// millisecond it holds is a millisecond no other job runs there.
    /// [`JobService::submit`] is this plus a channel.
    pub fn submit_with(
        &self,
        spec: JobSpec,
        notify: impl FnOnce(JobReport) + Send + 'static,
    ) -> JobTicket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        // An explicit progress token in the job's options wins (its own
        // deadline, if any, governs); otherwise arm a fresh token from
        // the per-job or service-default deadline — built *now* so queue
        // time counts against it.
        let progress = match spec.options.progress() {
            Some(p) => Arc::clone(p),
            None => Arc::new(match spec.options.deadline().or(self.default_deadline) {
                Some(d) => Progress::with_deadline(d),
                None => Progress::new(),
            }),
        };
        let submitted_at = Instant::now();
        let shared = Arc::clone(&self.shared);
        let worker_progress = Arc::clone(&progress);
        self.pool.spawn(move || {
            let report = execute(&shared, id, spec, &worker_progress, submitted_at);
            notify(report);
        });
        JobTicket { id, progress }
    }

    /// Submits every spec, then waits for all of them; reports come
    /// back in submission order (execution is concurrent regardless).
    pub fn run_batch(&self, specs: Vec<JobSpec>) -> Vec<JobReport> {
        let handles: Vec<JobHandle> = specs.into_iter().map(|s| self.submit(s)).collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }

    /// Looks up a cached payload by content-addressed key without
    /// running anything: the serving half of the PeerFetch protocol.
    /// Disk hits are promoted into the in-memory LRU exactly as a
    /// submitted job's lookup would, but no job counters move — a peer
    /// asking is not a job.
    pub fn lookup(&self, key: CacheKey) -> Option<(Arc<str>, CacheSource)> {
        self.shared.cache.lock().expect("cache lock never poisoned").get(key)
    }

    /// Seeds the cache with a payload fetched from a sibling backend,
    /// so the next submission of that job is a memory hit instead of a
    /// cold run. Only ever call this with payloads that came out of
    /// another service's cache — insertion implies "verified", and that
    /// promise is kept transitively because siblings only cache checked
    /// runs.
    pub fn seed(&self, key: CacheKey, payload: Arc<str>) {
        self.shared.metrics.peer_seeds.fetch_add(1, Ordering::Relaxed);
        self.shared.cache.lock().expect("cache lock never poisoned").insert(key, payload);
    }

    /// Current counters (plus the queue-latency histogram).
    pub fn metrics(&self) -> MetricsSnapshot {
        metrics_snapshot(&self.shared)
    }

    /// The aggregate service metrics as JSON (`tpi-serve-metrics/v1`).
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// Shuts the service down by consuming it: the worker pool drains
    /// (every already-submitted job runs to completion) and the workers
    /// are joined before the final metrics snapshot is returned. This
    /// is what plain `drop` does too; the method exists so callers that
    /// *orchestrate* a shutdown — `tpi-netd` draining on a `Shutdown`
    /// frame — get a synchronization point and the closing numbers
    /// instead of a silent drop.
    pub fn shutdown(self) -> MetricsSnapshot {
        let JobService { pool, shared, .. } = self;
        drop(pool); // joins the workers after the queue drains
        metrics_snapshot(&shared)
    }
}

/// Builds a [`MetricsSnapshot`] from the shared state.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let m = &shared.metrics;
    MetricsSnapshot {
        submitted: m.submitted.load(Ordering::Relaxed),
        completed: m.completed.load(Ordering::Relaxed),
        cache_hits_memory: m.cache_hits_memory.load(Ordering::Relaxed),
        cache_hits_disk: m.cache_hits_disk.load(Ordering::Relaxed),
        cache_misses: m.cache_misses.load(Ordering::Relaxed),
        timed_out: m.timed_out.load(Ordering::Relaxed),
        canceled: m.canceled.load(Ordering::Relaxed),
        failed: m.failed.load(Ordering::Relaxed),
        peer_seeds: m.peer_seeds.load(Ordering::Relaxed),
        queue_latency: shared.obs.histogram("queue_latency").unwrap_or_default(),
    }
}

/// Runs one job on a worker thread. Never panics outward: flow panics
/// are caught and reported as [`JobStatus::Failed`] so one bad job
/// cannot take a pool thread down.
fn execute(
    shared: &Shared,
    id: u64,
    spec: JobSpec,
    progress: &Arc<Progress>,
    submitted_at: Instant,
) -> JobReport {
    let t0 = Instant::now();
    shared.obs.observe("queue_latency", t0.duration_since(submitted_at));
    let flow_label = spec.flow.label();
    // The job's recorder: the caller's (when attached via options) or a
    // private one; either way its snapshot rides on the report.
    let rec = spec.options.metrics().cloned().unwrap_or_default();
    let report = |status: JobStatus,
                  key: Option<CacheKey>,
                  payload: Option<Arc<str>>,
                  cache: CacheSource,
                  verified: bool,
                  diagnostics: Vec<Diagnostic>| {
        let m = &shared.metrics;
        match &status {
            JobStatus::Completed => m.completed.fetch_add(1, Ordering::Relaxed),
            JobStatus::TimedOut => m.timed_out.fetch_add(1, Ordering::Relaxed),
            JobStatus::Canceled => m.canceled.fetch_add(1, Ordering::Relaxed),
            JobStatus::Failed(_) => m.failed.fetch_add(1, Ordering::Relaxed),
        };
        shared.obs.observe("job_wall", t0.elapsed());
        JobReport {
            id,
            flow: flow_label,
            status,
            key,
            payload,
            cache,
            wall: t0.elapsed(),
            counters: progress.snapshot(),
            verified,
            diagnostics,
            metrics: rec.finish(),
            service: metrics_snapshot(shared),
        }
    };

    // Deadline check *before* any work, including the cache lookup: an
    // already-expired job times out deterministically whether or not
    // its result happens to be cached.
    if let Err(c) = progress.checkpoint() {
        return report(status_for(c.kind), None, None, CacheSource::Cold, false, Vec::new());
    }

    let netlist = match spec.source.resolve() {
        Ok(n) => n,
        Err(e) => {
            let diag = Diagnostic::new(
                LintCode::ParseError,
                "<input>",
                format!("netlist parse error: {e}"),
                Vec::new(),
            );
            return report(
                JobStatus::Failed(format!("netlist parse error: {e}")),
                None,
                None,
                CacheSource::Cold,
                false,
                vec![diag],
            );
        }
    };

    // Pre-flight structural lint, deliberately *before* the cache
    // lookup so a job's diagnostics are identical on cold and warm
    // runs. Error-severity findings (combinational cycles, undriven
    // gates) reject the job here — these are exactly the inputs that
    // would otherwise panic or wedge a flow. Warnings ride along in
    // the report without blocking.
    let preflight = lint_netlist(&netlist, &LintConfig::default());
    if has_errors(&preflight) {
        let first = preflight
            .iter()
            .find(|d| d.severity == tpi_lint::Severity::Error)
            .expect("has_errors implies an error diagnostic");
        return report(
            JobStatus::Failed(format!("pre-flight lint failed: {}", first.render_text())),
            None,
            None,
            CacheSource::Cold,
            false,
            preflight,
        );
    }

    let key = cache_key(netlist_fingerprint(&netlist), &spec.flow);

    let hit = shared.cache.lock().expect("cache lock never poisoned").get(key);
    if let Some((payload, src)) = hit {
        let m = &shared.metrics;
        match src {
            CacheSource::Memory => m.cache_hits_memory.fetch_add(1, Ordering::Relaxed),
            CacheSource::Disk => m.cache_hits_disk.fetch_add(1, Ordering::Relaxed),
            CacheSource::Cold => unreachable!("cache lookups never report Cold"),
        };
        // Cached payloads were verified when produced (only checked
        // runs are inserted), so the hit inherits `verified`.
        return report(JobStatus::Completed, Some(key), Some(payload), src, true, preflight);
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    let ran =
        catch_unwind(AssertUnwindSafe(|| run_flow(shared, &spec.flow, &netlist, progress, &rec)));
    let payload = match ran {
        Ok(Ok(payload)) => payload,
        Ok(Err(FlowError::Canceled(kind))) => {
            return report(status_for(kind), Some(key), None, CacheSource::Cold, false, preflight)
        }
        Ok(Err(FlowError::Verification(mut diags))) => {
            let n_errors = diags.iter().filter(|d| d.severity == tpi_lint::Severity::Error).count();
            let msg = match diags.first() {
                Some(first) => format!(
                    "post-flow verification failed ({n_errors} error(s)): {}",
                    first.render_text()
                ),
                None => "post-flow verification failed".to_string(),
            };
            let mut all = preflight;
            all.append(&mut diags);
            return report(JobStatus::Failed(msg), Some(key), None, CacheSource::Cold, false, all);
        }
        Ok(Err(e @ (FlowError::FlushFailed(_) | FlowError::NoFlipFlops))) => {
            return report(
                JobStatus::Failed(e.to_string()),
                Some(key),
                None,
                CacheSource::Cold,
                false,
                preflight,
            )
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "flow panicked".into());
            return report(
                JobStatus::Failed(format!("flow panicked: {msg}")),
                Some(key),
                None,
                CacheSource::Cold,
                false,
                preflight,
            );
        }
    };

    let payload: Arc<str> = payload.into();
    shared.cache.lock().expect("cache lock never poisoned").insert(key, Arc::clone(&payload));
    report(JobStatus::Completed, Some(key), Some(payload), CacheSource::Cold, true, preflight)
}

fn status_for(kind: CancelKind) -> JobStatus {
    match kind {
        CancelKind::Canceled => JobStatus::Canceled,
        CancelKind::DeadlineExceeded => JobStatus::TimedOut,
    }
}

/// Runs the requested flow and renders its deterministic payload.
fn run_flow(
    shared: &Shared,
    flow: &FlowKind,
    netlist: &tpi_netlist::Netlist,
    progress: &Arc<Progress>,
    rec: &Arc<Recorder>,
) -> Result<String, FlowError> {
    let opts = FlowOptions::new().with_progress(Arc::clone(progress)).with_metrics(Arc::clone(rec));
    match flow {
        FlowKind::FullScan(cfg) => {
            let mut cfg = cfg.clone();
            if cfg.threads == 1 {
                // An unset per-job knob inherits the service's.
                cfg.threads = shared.threads;
            }
            let r =
                FullScanFlow { config: cfg, ..FullScanFlow::default() }.run_with(netlist, &opts)?;
            let mut o = JsonObject::new();
            o.field_str("schema", "tpi-serve/v1")
                .field_str("circuit", &r.row.circuit)
                .field_str("flow", "full-scan")
                .field_u64("ffs", r.row.ff_count as u64)
                .field_u64("insertions", r.row.insertions as u64)
                .field_u64("free", r.row.free as u64)
                .field_u64("scan_paths", r.row.scan_paths as u64)
                .field_f64("mux_reduction_pct", r.row.reduction())
                .field_u64("chain_len", r.chain.len() as u64)
                .field_bool("flush_passed", r.flush.passed())
                // `run_with` re-derived every claim through tpi-lint's
                // verifier before returning, so a payload existing at all
                // means the result verified.
                .field_bool("verified", true)
                .field_object("counters", counters_object(progress.snapshot()));
            Ok(o.finish())
        }
        FlowKind::Partial(method) => {
            let r = PartialScanFlow::new(*method)
                .run_with(netlist, &opts.with_threads(shared.threads))?;
            let mut o = JsonObject::new();
            o.field_str("schema", "tpi-serve/v1")
                .field_str("circuit", &r.row.circuit)
                .field_str("flow", flow.label())
                .field_u64("selected_ffs", r.row.selected_ffs as u64)
                .field_f64("area", r.row.area)
                .field_f64("area_pct", r.row.area_pct)
                .field_f64("delay", r.row.delay)
                .field_f64("delay_pct", r.row.delay_pct)
                .field_bool("acyclic", r.acyclic)
                .field_u64("chain_len", r.chain.as_ref().map_or(0, |c| c.len()) as u64)
                .field_bool("flush_passed", r.flush.as_ref().is_none_or(|f| f.passed()))
                .field_bool("verified", true)
                .field_object("counters", counters_object(progress.snapshot()));
            Ok(o.finish())
        }
    }
}

/// The counter block embedded in payloads. `plans_attempted` is
/// deliberately absent: it is the one counter that may vary with the
/// worker count (TPTIME's speculative planning), and payloads promise
/// byte-identity across `threads` settings.
fn counters_object(c: CounterSnapshot) -> JsonObject {
    let mut o = JsonObject::new();
    o.field_u64("paths_enumerated", c.paths_enumerated)
        .field_u64("candidates_evaluated", c.candidates_evaluated)
        .field_u64("test_points_placed", c.test_points_placed)
        .field_u64("rounds", c.rounds);
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_core::PartialScanMethod;
    use tpi_netlist::NetlistBuilder;

    fn ring() -> tpi_netlist::Netlist {
        let mut b = NetlistBuilder::new("ring");
        b.input("d");
        b.gate(tpi_netlist::GateKind::Inv, "r0", &["f0"]);
        b.dff("f1", "r0");
        b.gate(tpi_netlist::GateKind::Inv, "r1", &["f1"]);
        b.dff("f0", "r1");
        b.dff("f2", "d");
        b.output("o", "f0");
        b.output("o2", "f2");
        b.finish().unwrap()
    }

    #[test]
    fn combinational_only_design_fails_cleanly() {
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.gate(tpi_netlist::GateKind::Buf, "y", &["a"]);
        b.output("o", "y");
        let s = JobService::new(ServiceConfig { threads: 1, ..ServiceConfig::default() });
        let r = s.submit(JobSpec::full_scan(b.finish().unwrap())).wait();
        match &r.status {
            JobStatus::Failed(msg) => assert!(msg.contains("no flip-flops"), "{msg}"),
            other => panic!("expected a clean failure, got {other:?}"),
        }
    }

    #[test]
    fn completed_job_has_payload_and_key() {
        let s = JobService::new(ServiceConfig { threads: 2, ..ServiceConfig::default() });
        let r = s.submit(JobSpec::full_scan(ring())).wait();
        assert_eq!(r.status, JobStatus::Completed);
        assert_eq!(r.cache, CacheSource::Cold);
        assert!(r.key.is_some());
        assert!(r.verified, "checked flows mark their reports verified");
        let p = r.payload.expect("completed jobs carry payloads");
        assert!(p.starts_with(r#"{"schema":"tpi-serve/v1""#), "{p}");
        assert!(p.contains(r#""verified":true"#), "{p}");
        let m = s.metrics();
        assert_eq!((m.submitted, m.completed, m.cache_misses), (1, 1, 1));
    }

    #[test]
    fn resubmission_hits_memory_cache_byte_identically() {
        let s = JobService::new(ServiceConfig::default());
        let cold = s.submit(JobSpec::partial(ring(), PartialScanMethod::TpTime)).wait();
        let warm = s.submit(JobSpec::partial(ring(), PartialScanMethod::TpTime)).wait();
        assert_eq!(warm.cache, CacheSource::Memory);
        assert!(warm.verified, "cache hits inherit verification");
        assert_eq!(cold.diagnostics, warm.diagnostics, "pre-flight lint runs on hits too");
        assert_eq!(cold.payload, warm.payload);
        assert_eq!(cold.key, warm.key);
        assert_eq!(s.metrics().cache_hits_memory, 1);
    }

    #[test]
    fn bad_blif_fails_without_poisoning_the_queue() {
        let s = JobService::new(ServiceConfig::default());
        let bad = s
            .submit(JobSpec::full_scan(ring()).with_flow(FlowKind::FullScan(Default::default())))
            .id();
        let r = s
            .submit(JobSpec {
                source: crate::NetlistSource::Blif(".model broken\n.nonsense\n".into()),
                flow: FlowKind::FullScan(Default::default()),
                options: FlowOptions::new(),
            })
            .wait();
        assert!(matches!(&r.status, JobStatus::Failed(m) if m.contains("parse")));
        // Queue still works afterwards.
        let ok = s.submit(JobSpec::full_scan(ring())).wait();
        assert_eq!(ok.status, JobStatus::Completed);
        let _ = bad;
    }

    #[test]
    fn cyclic_netlist_is_rejected_by_preflight_lint() {
        // A combinational cycle would panic the implication engine; the
        // pre-flight lint must turn that into a clean Failed report.
        let mut n = tpi_netlist::Netlist::new("cyc");
        let a = n.add_input("a");
        let g1 = n.add_gate(tpi_netlist::GateKind::And, "g1");
        let g2 = n.add_gate(tpi_netlist::GateKind::Or, "g2");
        n.connect(a, g1).unwrap();
        n.connect(g2, g1).unwrap();
        n.connect(g1, g2).unwrap();
        n.add_output("o", g2).unwrap();

        let s = JobService::new(ServiceConfig::default());
        let r = s.submit(JobSpec::full_scan(n)).wait();
        assert!(
            matches!(&r.status, JobStatus::Failed(m) if m.contains("pre-flight lint")),
            "{:?}",
            r.status
        );
        assert!(!r.verified);
        assert!(r.diagnostics.iter().any(|d| d.code == LintCode::CombCycle), "{:?}", r.diagnostics);
        assert_eq!(s.metrics().failed, 1);
    }

    #[test]
    fn job_report_carries_flow_metrics_and_service_snapshot() {
        let s = JobService::new(ServiceConfig::default());
        let cold = s.submit(JobSpec::full_scan(ring())).wait();
        assert_eq!(cold.metrics.span_count("full_scan"), 1, "one root span per live run");
        assert!(cold.metrics.counter("paths_enumerated") > 0);
        assert_eq!(cold.service.cache_misses, 1);
        let warm = s.submit(JobSpec::full_scan(ring())).wait();
        assert!(warm.metrics.spans.is_empty(), "cache hits run no flow");
        assert_eq!(warm.service.cache_hits_memory, 1);
        assert!(warm.service.queue_latency.count >= 2, "every executed job is observed");
        let j = s.metrics_json();
        assert!(j.starts_with(r#"{"schema":"tpi-serve-metrics/v1""#), "{j}");
        assert!(j.contains(r#""cache_hit_rate":0.5"#), "{j}");
    }

    #[test]
    fn seed_makes_the_next_submission_a_memory_hit() {
        let a = JobService::new(ServiceConfig::default());
        let cold = a.submit(JobSpec::full_scan(ring())).wait();
        let key = cold.key.expect("completed jobs carry keys");
        let payload = cold.payload.clone().expect("completed jobs carry payloads");
        assert_eq!(a.lookup(key).map(|(p, _)| p), Some(Arc::clone(&payload)));
        assert!(a.lookup(CacheKey(key.0 ^ 1)).is_none(), "lookup is exact, not fuzzy");

        // A second service that never ran the job serves it from memory
        // after being seeded with the first service's payload.
        let b = JobService::new(ServiceConfig::default());
        b.seed(key, Arc::clone(&payload));
        let warm = b.submit(JobSpec::full_scan(ring())).wait();
        assert_eq!(warm.cache, CacheSource::Memory);
        assert_eq!(warm.payload, Some(payload));
        let m = b.metrics();
        assert_eq!((m.peer_seeds, m.cache_hits_memory, m.cache_misses), (1, 1, 0));
        assert!(b.metrics_json().contains(r#""peer_seeds":1"#));
    }

    #[test]
    fn job_options_deadline_times_out() {
        let s = JobService::new(ServiceConfig::default());
        let r = s
            .submit(
                JobSpec::full_scan(ring())
                    .with_options(FlowOptions::new().with_deadline(Duration::ZERO)),
            )
            .wait();
        assert_eq!(r.status, JobStatus::TimedOut);
        assert_eq!(s.metrics().timed_out, 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_deadline_forwards_to_options() {
        let s = JobService::new(ServiceConfig::default());
        let r = s.submit(JobSpec::full_scan(ring()).with_deadline(Duration::ZERO)).wait();
        assert_eq!(r.status, JobStatus::TimedOut);
    }

    #[test]
    fn cancellation_surfaces_as_canceled() {
        let s = JobService::new(ServiceConfig { threads: 1, ..ServiceConfig::default() });
        // Occupy the single worker so the canceled job is still queued
        // when we cancel it.
        let blocker = s.submit(JobSpec::full_scan(ring()));
        let victim = s.submit(JobSpec::full_scan(ring()));
        victim.cancel();
        let r = victim.wait();
        assert_eq!(r.status, JobStatus::Canceled);
        assert_eq!(blocker.wait().status, JobStatus::Completed);
        assert_eq!(s.metrics().canceled, 1);
    }
}
