//! Job descriptions: what to run, on what, with how much time.

use std::time::Duration;
use tpi_core::{FlowOptions, PartialScanMethod, TpGreedConfig};
use tpi_netlist::{parse_blif, Netlist, ParseBlifError};

/// Where the job's netlist comes from.
///
/// BLIF sources are parsed on the worker, so a malformed file fails
/// *that job* (as [`crate::JobStatus::Failed`]) without touching the
/// queue.
#[derive(Debug, Clone)]
pub enum NetlistSource {
    /// BLIF text, parsed when the job runs.
    Blif(String),
    /// An already-built netlist.
    Netlist(Netlist),
}

impl NetlistSource {
    /// Produces the netlist, parsing if necessary.
    pub fn resolve(&self) -> Result<Netlist, ParseBlifError> {
        match self {
            NetlistSource::Blif(text) => parse_blif(text),
            NetlistSource::Netlist(n) => Ok(n.clone()),
        }
    }
}

impl From<Netlist> for NetlistSource {
    fn from(n: Netlist) -> Self {
        NetlistSource::Netlist(n)
    }
}

/// Which flow to run (and its result-relevant configuration).
#[derive(Debug, Clone, PartialEq)]
pub enum FlowKind {
    /// §III full scan: TPGREED with the given config.
    FullScan(TpGreedConfig),
    /// §IV partial scan with the given method.
    Partial(PartialScanMethod),
}

impl FlowKind {
    /// Short label used in payloads, filenames and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FlowKind::FullScan(_) => "full-scan",
            FlowKind::Partial(PartialScanMethod::Cb) => "cb",
            FlowKind::Partial(PartialScanMethod::TdCb) => "td-cb",
            FlowKind::Partial(PartialScanMethod::TpTime) => "tptime",
        }
    }
}

/// One unit of work for the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The circuit.
    pub source: NetlistSource,
    /// The flow to run on it.
    pub flow: FlowKind,
    /// Per-job run options — the same [`FlowOptions`] the flows take
    /// directly. A deadline is measured from *submission* (queue time
    /// counts); when unset it falls back to the service default. An
    /// attached metrics recorder receives the job's phase spans in
    /// addition to the per-job [`crate::JobReport::metrics`]. A thread
    /// override takes precedence over the service-level knob.
    pub options: FlowOptions,
}

impl JobSpec {
    /// Full-scan job with the default TPGREED config.
    pub fn full_scan(source: impl Into<NetlistSource>) -> Self {
        JobSpec {
            source: source.into(),
            flow: FlowKind::FullScan(TpGreedConfig::default()),
            options: FlowOptions::new(),
        }
    }

    /// Partial-scan job with the given method.
    pub fn partial(source: impl Into<NetlistSource>, method: PartialScanMethod) -> Self {
        JobSpec {
            source: source.into(),
            flow: FlowKind::Partial(method),
            options: FlowOptions::new(),
        }
    }

    /// Sets an explicit deadline.
    #[deprecated(
        since = "0.2.0",
        note = "use `with_options(FlowOptions::new().with_deadline(..))`"
    )]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.with_deadline(deadline);
        self
    }

    /// Replaces the job's run options wholesale.
    pub fn with_options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the flow config/kind.
    pub fn with_flow(mut self, flow: FlowKind) -> Self {
        self.flow = flow;
        self
    }
}
