//! A long-lived job service wrapping the DAC'96 flows.
//!
//! The flows in `tpi-core` ([`tpi_core::FullScanFlow`],
//! [`tpi_core::PartialScanFlow`]) are one-shot: build, run, drop. Batch
//! DFT exploration wants something longer-lived — sweep a directory of
//! netlists through several methods, re-run with tweaked configs, and
//! never pay twice for work already done. This crate provides that as a
//! std-only service:
//!
//! * [`JobService`] — a fixed pool of workers (built on
//!   [`tpi_par::WorkerPool`]) draining a queue of [`JobSpec`]s and
//!   returning structured [`JobReport`]s through per-job handles;
//! * [`key`] — content-addressed cache keys: an FNV-64 fingerprint of
//!   the *canonicalized* netlist (internal combinational gate names and
//!   BLIF formatting do not matter) combined with the flow kind and its
//!   determinism-relevant config;
//! * [`cache`] — an in-memory LRU of rendered result payloads, with an
//!   optional on-disk spill directory that survives service restarts;
//! * deadlines and cancellation — every job carries a
//!   [`tpi_core::Progress`] token the flows checkpoint at iteration
//!   boundaries, so an expired deadline surfaces as
//!   [`JobStatus::TimedOut`] without poisoning the queue.
//!
//! Payloads are deterministic by construction: they contain only
//! thread-count-independent counters and results, so a cold run, a warm
//! cache hit, and a run at any `threads` setting produce byte-identical
//! bytes for the same netlist + config.
//!
//! Observability (PR 4): jobs carry their run knobs as a
//! [`tpi_core::FlowOptions`] (threads / progress / deadline / metrics in
//! one builder), every live run's phase spans and counters ride on
//! [`JobReport::metrics`] as a [`tpi_obs::FlowMetrics`], and each report
//! also snapshots the aggregate service metrics — job counts, cache hit
//! rate, queue-latency histogram — as [`MetricsSnapshot`]
//! ([`JobService::metrics_json`] renders the same snapshot on demand).

pub mod cache;
pub mod job;
pub mod json;
pub mod key;
pub mod service;

pub use cache::{CacheSource, ResultCache};
pub use job::{FlowKind, JobSpec, NetlistSource};
pub use key::{cache_key, netlist_fingerprint, CacheKey, Fnv64};
pub use service::{
    JobHandle, JobReport, JobService, JobStatus, JobTicket, MetricsSnapshot, ServiceConfig,
};
pub use tpi_core::FlowOptions;
