//! Content-addressed cache keys.
//!
//! A job's key must identify *what would be computed*: the circuit's
//! structure plus the flow and the config fields that influence its
//! result. Two properties matter:
//!
//! * **Stability** — re-parsing the same circuit from a differently
//!   formatted BLIF file (reordered covers, extra whitespace, different
//!   internal net names from the parser's gate decomposition) must hash
//!   identically, or the cache never hits across runs.
//! * **Sensitivity** — any change to the structure, the interface
//!   names, or a result-relevant config field must change the key.
//!
//! The fingerprint therefore ignores *internal combinational gate
//! names* entirely (the BLIF decomposition invents them order-
//! dependently) and hashes the circuit as a DAG: each combinational
//! gate is the hash of its kind and its fanin hashes (sorted for
//! commutative kinds), grounded at primary inputs, flip-flops and
//! constants; the circuit is then the hash of its interface — model
//! name, input names, (name, driver-hash) pairs for flip-flops, and
//! driver hashes for outputs (port names excluded: the BLIF parser
//! invents them), each list sorted.

use crate::job::FlowKind;
use std::fmt;
use tpi_core::tpgreed::{GainModel, GainUpdate};
use tpi_core::PartialScanMethod;
use tpi_netlist::{GateId, GateKind, Netlist};

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty for cache
/// addressing (keys identify jobs, they are not a security boundary).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` and
    /// `("a","bc")` cannot collide by concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by bit pattern (exact, not approximate).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A content-addressed job identity; displays as 16 hex digits (also
/// the on-disk cache file stem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Structural fingerprint of a netlist, invariant under internal
/// combinational gate renaming and gate creation order.
///
/// Grounding: primary inputs and flip-flops hash by *name* (they are
/// the circuit's stable interface and state), constants by kind.
/// Combinational gates hash by kind + fanin hashes — sorted for
/// commutative kinds (AND/OR/NAND/NOR/XOR/XNOR), in pin order for the
/// rest (BUF/INV/MUX) — so the parser's invented names never matter.
pub fn netlist_fingerprint(n: &Netlist) -> u64 {
    let mut memo: Vec<Option<u64>> = vec![None; n.gate_count()];

    // Iterative post-order DFS: combinational chains can be tens of
    // thousands of gates deep (shift-register-like structures), which
    // would overflow the call stack recursively.
    let mut hash_of = |root: GateId| -> u64 { gate_hash(n, root, &mut memo) };

    let mut inputs: Vec<&str> = n.inputs().iter().map(|&g| n.gate_name(g)).collect();
    inputs.sort_unstable();

    let mut dffs: Vec<(String, u64)> = n
        .dffs()
        .iter()
        .map(|&ff| {
            let d = n.fanin(ff).first().map(|&src| hash_of(src)).unwrap_or(0);
            (n.gate_name(ff).to_string(), d)
        })
        .collect();
    dffs.sort_unstable();

    // Output *ports* are hashed by driver cone only, not by port name:
    // `parse_blif` names ports after their driver signal and the builder
    // uniquifies collisions with a gate-count-dependent suffix, so port
    // names are not stable across parses. The driven functions are.
    let mut outputs: Vec<u64> = n
        .outputs()
        .iter()
        .map(|&o| n.fanin(o).first().map(|&src| hash_of(src)).unwrap_or(0))
        .collect();
    outputs.sort_unstable();

    let mut h = Fnv64::new();
    h.write_str("tpi-fingerprint-v1");
    h.write_str(n.name());
    h.write_u64(inputs.len() as u64);
    for name in inputs {
        h.write_str(name);
    }
    h.write_u64(dffs.len() as u64);
    for (name, d) in dffs {
        h.write_str(&name);
        h.write_u64(d);
    }
    h.write_u64(outputs.len() as u64);
    for d in outputs {
        h.write_u64(d);
    }
    h.finish()
}

/// DAG hash of the cone rooted at `g`, memoized in `memo`.
fn gate_hash(n: &Netlist, root: GateId, memo: &mut [Option<u64>]) -> u64 {
    // Explicit two-phase stack: `(gate, expanded)`; a gate is hashed
    // once all its fanins are.
    let mut stack: Vec<(GateId, bool)> = vec![(root, false)];
    while let Some((g, expanded)) = stack.pop() {
        if memo[g.index()].is_some() {
            continue;
        }
        let kind = n.kind(g);
        if let Some(leaf) = leaf_hash(n, g, kind) {
            memo[g.index()] = Some(leaf);
            continue;
        }
        if !expanded {
            stack.push((g, true));
            for &f in n.fanin(g) {
                if memo[f.index()].is_none() {
                    stack.push((f, false));
                }
            }
            continue;
        }
        let mut fanin_hashes: Vec<u64> = n
            .fanin(g)
            .iter()
            .map(|&f| memo[f.index()].expect("post-order: fanins hashed first"))
            .collect();
        // A buffer is a wire: hash through it. The BLIF parser inserts a
        // fresh Buf layer around single-cube covers on every roundtrip,
        // so keeping Buf in the hash would deny the fingerprint a fixed
        // point under write_blif/parse_blif.
        if kind == GateKind::Buf && fanin_hashes.len() == 1 {
            memo[g.index()] = Some(fanin_hashes[0]);
            continue;
        }
        if commutative(kind) {
            fanin_hashes.sort_unstable();
        }
        let mut h = Fnv64::new();
        h.write_str("gate");
        h.write_str(&kind.to_string());
        h.write_u64(fanin_hashes.len() as u64);
        for fh in fanin_hashes {
            h.write_u64(fh);
        }
        memo[g.index()] = Some(h.finish());
    }
    memo[root.index()].expect("root hashed by the loop above")
}

/// Hash for grounding gates (those whose identity is their name or
/// kind, not their cone); `None` for combinational gates.
fn leaf_hash(n: &Netlist, g: GateId, kind: GateKind) -> Option<u64> {
    let mut h = Fnv64::new();
    match kind {
        GateKind::Input => h.write_str("input"),
        GateKind::Dff => h.write_str("dff"),
        GateKind::Const0 => {
            h.write_str("const0");
            return Some(h.finish());
        }
        GateKind::Const1 => {
            h.write_str("const1");
            return Some(h.finish());
        }
        _ => return None,
    }
    h.write_str(n.gate_name(g));
    Some(h.finish())
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

/// Combines a netlist fingerprint with the flow kind and its
/// result-relevant config into the job's cache key.
///
/// The `threads` knob is deliberately **excluded**: the flows guarantee
/// identical results at every worker count, so runs differing only in
/// parallelism must share a cache slot.
pub fn cache_key(fingerprint: u64, flow: &FlowKind) -> CacheKey {
    let mut h = Fnv64::new();
    h.write_str("tpi-cache-key-v1");
    h.write_u64(fingerprint);
    match flow {
        FlowKind::FullScan(cfg) => {
            h.write_str("full-scan");
            h.write_u64(cfg.k_bound as u64);
            h.write_f64(cfg.gain_bound);
            h.write_str(match cfg.gain_update {
                GainUpdate::Full => "full",
                GainUpdate::Incremental => "incremental",
            });
            h.write_u64(cfg.max_paths as u64);
            // The gain model changes selections, so it must split the
            // cache. Hashed as a marker only for non-default models:
            // every key minted before the knob existed stays valid.
            if cfg.gain_model != GainModel::PathCount {
                h.write_str("gain-model");
                h.write_str(cfg.gain_model.label());
            }
            // cfg.threads intentionally not hashed.
        }
        FlowKind::Partial(method) => {
            h.write_str("partial");
            h.write_str(match method {
                PartialScanMethod::Cb => "cb",
                PartialScanMethod::TdCb => "td-cb",
                PartialScanMethod::TpTime => "tptime",
            });
        }
    }
    CacheKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_core::TpGreedConfig;
    use tpi_netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "g1", &["a", "b"]);
        b.dff("f0", "g1");
        b.output("o", "f0");
        b.finish().unwrap()
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Well-known FNV-1a 64 test vector.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fingerprint_ignores_commutative_fanin_order() {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "g1", &["b", "a"]); // swapped
        b.dff("f0", "g1");
        b.output("o", "f0");
        let swapped = b.finish().unwrap();
        assert_eq!(netlist_fingerprint(&sample()), netlist_fingerprint(&swapped));
    }

    #[test]
    fn fingerprint_ignores_internal_gate_names() {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate(GateKind::And, "totally_different_name", &["a", "b"]);
        b.dff("f0", "totally_different_name");
        b.output("o", "f0");
        let renamed = b.finish().unwrap();
        assert_eq!(netlist_fingerprint(&sample()), netlist_fingerprint(&renamed));
    }

    #[test]
    fn fingerprint_sees_structural_changes() {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate(GateKind::Or, "g1", &["a", "b"]); // AND -> OR
        b.dff("f0", "g1");
        b.output("o", "f0");
        let or = b.finish().unwrap();
        assert_ne!(netlist_fingerprint(&sample()), netlist_fingerprint(&or));
    }

    #[test]
    fn fingerprint_sees_interface_renames() {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("c"); // input renamed
        b.gate(GateKind::And, "g1", &["a", "c"]);
        b.dff("f0", "g1");
        b.output("o", "f0");
        let renamed = b.finish().unwrap();
        assert_ne!(netlist_fingerprint(&sample()), netlist_fingerprint(&renamed));
    }

    #[test]
    fn ordered_kinds_keep_pin_order() {
        // MUX(sel, a, b) vs MUX(sel, b, a) are different circuits.
        let mk = |flip: bool| {
            let mut b = NetlistBuilder::new("m");
            b.input("s");
            b.input("a");
            b.input("b");
            let pins: [&str; 3] = if flip { ["s", "b", "a"] } else { ["s", "a", "b"] };
            b.gate(GateKind::Mux, "m1", &pins);
            b.output("o", "m1");
            b.finish().unwrap()
        };
        assert_ne!(netlist_fingerprint(&mk(false)), netlist_fingerprint(&mk(true)));
    }

    #[test]
    fn cache_key_ignores_threads_but_sees_config() {
        let fp = netlist_fingerprint(&sample());
        let base = TpGreedConfig::default();
        let mut threaded = base.clone();
        threaded.threads = 8;
        assert_eq!(
            cache_key(fp, &FlowKind::FullScan(base.clone())),
            cache_key(fp, &FlowKind::FullScan(threaded))
        );
        let mut kb = base.clone();
        kb.k_bound += 1;
        assert_ne!(
            cache_key(fp, &FlowKind::FullScan(base)),
            cache_key(fp, &FlowKind::FullScan(kb))
        );
        assert_ne!(
            cache_key(fp, &FlowKind::Partial(PartialScanMethod::Cb)),
            cache_key(fp, &FlowKind::Partial(PartialScanMethod::TpTime))
        );
    }

    #[test]
    fn gain_model_splits_the_cache_without_moving_path_count_keys() {
        let fp = netlist_fingerprint(&sample());
        let base = TpGreedConfig::default();
        let mut scoap = base.clone();
        scoap.gain_model = tpi_core::GainModel::Scoap;
        assert_ne!(
            cache_key(fp, &FlowKind::FullScan(base.clone())),
            cache_key(fp, &FlowKind::FullScan(scoap)),
            "different selections must not share a cache slot"
        );
        // Golden key: the default (PathCount) config hashes exactly as
        // it did before the gain-model knob existed, so deployed caches
        // survive the upgrade. Recompute only for deliberate schema
        // bumps.
        assert_eq!(cache_key(fp, &FlowKind::FullScan(base)).to_string(), "d9840c82b0d2cdb8");
    }

    #[test]
    fn key_displays_as_16_hex_digits() {
        assert_eq!(CacheKey(0xabc).to_string(), "0000000000000abc");
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        let mut n = Netlist::new("deep");
        let mut prev = n.add_input("a");
        for i in 0..50_000 {
            let g = n.add_gate(GateKind::Inv, format!("i{i}"));
            n.connect(prev, g).unwrap();
            prev = g;
        }
        n.add_output("o", prev).unwrap();
        let _ = netlist_fingerprint(&n); // must terminate, not overflow
    }
}
