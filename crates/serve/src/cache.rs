//! Content-addressed result cache: in-memory LRU with an optional
//! on-disk spill directory.
//!
//! The cache stores *rendered payload strings*, not result structs: the
//! payload is the deterministic artifact the service promises to return
//! byte-identically, so caching the bytes themselves makes the warm
//! path trivially faithful (and keeps the cache small — a payload is a
//! few hundred bytes; a transformed [`tpi_netlist::Netlist`] is not).
//!
//! Disk layout: one file per key, `<dir>/<key:016x>.json`, written via
//! temp-file + rename so concurrent services sharing a directory never
//! observe a torn payload. Each file opens with an integrity header —
//! `tpi-cache/v1 <fnv64:016x> <len>\n` — covering the payload bytes, so
//! a file truncated or corrupted *at rest* (a full disk, a killed
//! process on a filesystem without atomic rename, a stray editor) is
//! detected on read and treated as a miss, never served.

use crate::key::{CacheKey, Fnv64};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First token of the on-disk header line.
const DISK_MAGIC: &str = "tpi-cache/v1";

/// Renders the on-disk file: header line + payload bytes.
fn encode_disk(payload: &str) -> String {
    let mut h = Fnv64::new();
    h.write(payload.as_bytes());
    format!("{DISK_MAGIC} {:016x} {}\n{payload}", h.finish(), payload.len())
}

/// Parses and verifies an on-disk file; `None` means "treat as miss"
/// (wrong magic, bad hex, truncated payload, checksum mismatch).
fn decode_disk(text: &str) -> Option<&str> {
    let (header, payload) = text.split_once('\n')?;
    let mut parts = header.split(' ');
    if parts.next()? != DISK_MAGIC {
        return None;
    }
    let sum = u64::from_str_radix(parts.next()?, 16).ok()?;
    let len: usize = parts.next()?.parse().ok()?;
    if parts.next().is_some() || payload.len() != len {
        return None;
    }
    let mut h = Fnv64::new();
    h.write(payload.as_bytes());
    (h.finish() == sum).then_some(payload)
}

/// Where a payload was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Not cached: the flow actually ran.
    Cold,
    /// Served from the in-memory LRU.
    Memory,
    /// Served from the on-disk cache directory.
    Disk,
}

impl CacheSource {
    /// Label used in payload reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Cold => "cold",
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
        }
    }
}

#[derive(Debug)]
struct Entry {
    payload: Arc<str>,
    last_used: u64,
}

/// The cache itself. Not internally synchronized — the service wraps
/// it in a mutex (lookups are microseconds; the flows are the slow
/// part and run outside any lock).
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    disk: Option<PathBuf>,
}

impl ResultCache {
    /// An LRU holding at most `capacity` payloads in memory (clamped to
    /// ≥ 1), spilling to `disk` when given.
    ///
    /// The directory is created eagerly; if that fails the cache
    /// degrades to memory-only rather than failing jobs over an I/O
    /// problem.
    pub fn new(capacity: usize, disk: Option<PathBuf>) -> Self {
        let disk = disk.filter(|d| std::fs::create_dir_all(d).is_ok());
        ResultCache { map: HashMap::new(), capacity: capacity.max(1), tick: 0, disk }
    }

    /// Number of payloads currently in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached in memory.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The disk directory actually in use (`None` when memory-only).
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Looks `key` up: memory first, then disk (a disk hit is promoted
    /// into memory).
    pub fn get(&mut self, key: CacheKey) -> Option<(Arc<str>, CacheSource)> {
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key.0) {
            e.last_used = self.tick;
            return Some((Arc::clone(&e.payload), CacheSource::Memory));
        }
        let path = self.disk.as_ref()?.join(format!("{key}.json"));
        let text = std::fs::read_to_string(&path).ok()?;
        let Some(verified) = decode_disk(&text) else {
            // Torn or corrupted file: drop it (best-effort) so the next
            // computed payload rewrites it cleanly, and report a miss.
            let _ = std::fs::remove_file(&path);
            return None;
        };
        let payload: Arc<str> = verified.into();
        self.insert_memory(key, Arc::clone(&payload));
        Some((payload, CacheSource::Disk))
    }

    /// Stores a freshly computed payload (memory + disk).
    pub fn insert(&mut self, key: CacheKey, payload: Arc<str>) {
        if let Some(dir) = &self.disk {
            // Atomic publish: a concurrent reader sees the old bytes or
            // the new bytes, never a prefix. The temp name carries the
            // pid so two services sharing the directory cannot clobber
            // each other's in-flight write.
            let tmp = dir.join(format!("{key}.json.{}.tmp", std::process::id()));
            let dst = dir.join(format!("{key}.json"));
            if std::fs::write(&tmp, encode_disk(&payload)).is_ok() {
                let _ = std::fs::rename(&tmp, &dst);
            }
        }
        self.insert_memory(key, payload);
    }

    fn insert_memory(&mut self, key: CacheKey, payload: Arc<str>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key.0) {
            // O(n) eviction scan; capacities are small (default 256) and
            // insertions happen once per *computed* job, so this never
            // shows up next to a flow run.
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key.0, Entry { payload, last_used: self.tick });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u64) -> CacheKey {
        CacheKey(v)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tpi-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_roundtrip_and_source() {
        let mut c = ResultCache::new(8, None);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), "p1".into());
        let (p, src) = c.get(key(1)).unwrap();
        assert_eq!(&*p, "p1");
        assert_eq!(src, CacheSource::Memory);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.insert(key(1), "p1".into());
        c.insert(key(2), "p2".into());
        let _ = c.get(key(1)); // 2 is now the LRU
        c.insert(key(3), "p3".into());
        assert!(c.get(key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disk_survives_a_fresh_cache() {
        let dir = tmpdir("disk");
        let mut c = ResultCache::new(8, Some(dir.clone()));
        c.insert(key(0xabc), "payload".into());
        drop(c);
        let mut c2 = ResultCache::new(8, Some(dir.clone()));
        let (p, src) = c2.get(key(0xabc)).expect("disk hit");
        assert_eq!(&*p, "payload");
        assert_eq!(src, CacheSource::Disk);
        // Promoted: second lookup is a memory hit.
        assert_eq!(c2.get(key(0xabc)).unwrap().1, CacheSource::Memory);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_file_is_a_miss_not_a_torn_payload() {
        let dir = tmpdir("trunc");
        let mut c = ResultCache::new(8, Some(dir.clone()));
        c.insert(key(0xdead), "a payload long enough to truncate meaningfully".into());
        let path = dir.join(format!("{}.json", key(0xdead)));

        // Chop bytes off the end, as a full disk or a kill -9 during a
        // non-atomic copy would.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();

        let mut fresh = ResultCache::new(8, Some(dir.clone()));
        assert!(fresh.get(key(0xdead)).is_none(), "truncated file must be a miss");
        assert!(!path.exists(), "the bad file is removed so a rerun rewrites it");

        // And the miss is recoverable: a new insert serves cleanly.
        fresh.insert(key(0xdead), "recomputed".into());
        let mut after = ResultCache::new(8, Some(dir.clone()));
        assert_eq!(&*after.get(key(0xdead)).unwrap().0, "recomputed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_payload_is_a_miss() {
        let dir = tmpdir("corrupt");
        let mut c = ResultCache::new(8, Some(dir.clone()));
        c.insert(key(0xbeef), "the real payload".into());
        let path = dir.join(format!("{}.json", key(0xbeef)));

        // Same length, different bytes: only the checksum can tell.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let flip = text.len() - 3;
        text.replace_range(flip..flip + 1, "X");
        std::fs::write(&path, text).unwrap();

        let mut fresh = ResultCache::new(8, Some(dir.clone()));
        assert!(fresh.get(key(0xbeef)).is_none(), "checksum mismatch must be a miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_headerless_disk_file_is_a_miss() {
        let dir = tmpdir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{}.json", key(7))), "raw payload, no header").unwrap();
        let mut c = ResultCache::new(8, Some(dir.clone()));
        assert!(c.get(key(7)).is_none(), "pre-v1 files re-compute rather than parse wrong");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_roundtrip_is_exact_through_the_header() {
        let payload = "payload with\nnewlines and \"quotes\" and unicode — ok";
        assert_eq!(decode_disk(&encode_disk(payload)), Some(payload));
    }

    #[test]
    fn unwritable_disk_degrades_to_memory_only() {
        let mut c = ResultCache::new(8, Some(PathBuf::from("/proc/definitely/not/writable/here")));
        assert!(c.disk_dir().is_none());
        c.insert(key(5), "p".into());
        assert_eq!(c.get(key(5)).unwrap().1, CacheSource::Memory);
    }
}
