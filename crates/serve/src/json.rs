//! Deterministic JSON writing — moved to [`tpi_obs::json`] in PR 4 so
//! every crate that renders metrics shares one writer. This module
//! remains as a re-export for compatibility:
//! `tpi_serve::json::JsonObject` keeps working.

pub use tpi_obs::json::{JsonArray, JsonObject};
