//! Deterministic fork/join helpers built on `std::thread::scope`.
//!
//! The external `rayon` crate is unavailable in the offline build
//! container, and TPGREED needs far less machinery anyway: a handful of
//! embarrassingly-parallel sweeps per selection round whose results
//! must come back **in input order** so the greedy argmax is identical
//! to the sequential implementation. Everything here guarantees that:
//! outputs are written to a preallocated slot per input index, so the
//! merge order is the input order regardless of which worker finished
//! first.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Number of worker threads to use for a parallel sweep.
///
/// `Threads::auto()` resolves to the machine parallelism;
/// `Threads::new(1)` forces the sequential fallback path (useful to
/// compare against parallel runs — results are identical either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// Exactly `n` workers (`n == 0` is clamped to 1).
    pub fn new(n: usize) -> Self {
        Threads(NonZeroUsize::new(n.max(1)).unwrap())
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Threads(std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).unwrap()))
    }

    /// `0` means auto; anything else is an explicit count.
    pub fn from_knob(n: usize) -> Self {
        if n == 0 {
            Threads::auto()
        } else {
            Threads::new(n)
        }
    }

    /// The worker count.
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// How much *speculative* work a caller should fan out at once.
    ///
    /// For sweeps that evaluate everything anyway (TPGREED's gain
    /// sweep), oversubscribing cores merely time-slices. But callers
    /// that parallelize an early-exit search do work the sequential
    /// loop would skip, and speculation wider than the physical core
    /// count can never repay itself — it only multiplies the wasted
    /// work. Such callers size their batches by this: the requested
    /// worker count capped at the machine parallelism (so `threads = 4`
    /// on a single-core host degenerates to the sequential walk).
    pub fn speculation_width(self) -> usize {
        self.get().min(Threads::auto().get())
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Each worker owns one clone of `ctx` for its whole lifetime (the
/// cloning cost is paid `threads` times per sweep, not `n` times).
/// Work is distributed by an atomic cursor in contiguous chunks so
/// neighbouring indices — which touch neighbouring data — stay on one
/// worker. The output vector is index-addressed, so the result is a
/// pure function of `f` and the input order: worker scheduling cannot
/// change it.
pub fn map_indexed<C, T, F>(threads: Threads, n: usize, ctx: &C, f: F) -> Vec<T>
where
    C: Clone + Sync,
    T: Send + Default,
    F: Fn(&mut C, usize) -> T + Sync,
{
    let workers = threads.get().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let mut ctx = ctx.clone();
        return (0..n).map(|i| f(&mut ctx, i)).collect();
    }

    let mut out: Vec<T> = Vec::with_capacity(n);
    out.resize_with(n, T::default);
    // Chunks small enough to load-balance, large enough to amortize the
    // cursor fetch; at least 8 chunks per worker.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let out_ptr = SendPtr(out.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let out_ptr = &out_ptr;
            scope.spawn(move || {
                let mut ctx = ctx.clone();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        let value = f(&mut ctx, i);
                        // SAFETY: each index in 0..n is claimed by
                        // exactly one worker (the cursor hands out
                        // disjoint ranges), and the vector outlives the
                        // scope, so this is a race-free write to a
                        // distinct initialized slot.
                        unsafe { *out_ptr.0.add(i) = value };
                    }
                }
            });
        }
    });
    out
}

/// Raw pointer wrapper asserting cross-thread use is safe here.
///
/// Safety argument: `map_indexed` writes through it at pairwise
/// distinct indices only (see the cursor protocol above).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// A long-lived pool of worker threads draining a shared job queue.
///
/// `map_indexed` spawns scoped threads per sweep, which is the right
/// shape for fork/join inside one flow run. A job *service* instead
/// needs threads that outlive any single job and pick up whatever is
/// submitted next; this pool provides exactly that on `std` only: an
/// [`mpsc`] channel guarded by a mutex on the receiving side (the
/// classic shared-queue construction), one OS thread per worker.
///
/// Dropping the pool closes the queue and joins every worker; jobs
/// already submitted still run to completion first.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl WorkerPool {
    /// Spawns `threads` workers, all idle until jobs arrive.
    pub fn new(threads: Threads) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.get())
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("tpi-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while dequeuing; run the job
                        // with the queue free for the other workers.
                        let job = match rx.lock().expect("queue lock never poisoned").recv() {
                            Ok(job) => job,
                            Err(_) => break, // channel closed: shut down
                        };
                        job();
                    })
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers }
    }

    /// Enqueues a job; some idle worker will run it.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("sender lives until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Maps `f` over a slice of jobs, returning results in job order.
pub fn map_jobs<C, J, T, F>(threads: Threads, jobs: &[J], ctx: &C, f: F) -> Vec<T>
where
    C: Clone + Sync,
    J: Sync,
    T: Send + Default,
    F: Fn(&mut C, &J) -> T + Sync,
{
    map_indexed(threads, jobs.len(), ctx, |ctx, i| f(ctx, &jobs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        for workers in [1, 2, 4, 7] {
            let got = map_indexed(Threads::new(workers), 1000, &(), |_, i| i * 3);
            let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn context_cloned_per_worker() {
        #[derive(Clone, Default)]
        struct Ctx {
            scratch: Vec<usize>,
        }
        let got = map_indexed(Threads::new(4), 257, &Ctx::default(), |ctx, i| {
            ctx.scratch.push(i);
            ctx.scratch.len()
        });
        // Each worker's scratch grows monotonically: lengths are all >= 1.
        assert!(got.iter().all(|&len| len >= 1));
        assert_eq!(got.len(), 257);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<usize> = map_indexed(Threads::auto(), 0, &(), |_, i| i);
        assert!(empty.is_empty());
        let one = map_indexed(Threads::auto(), 1, &(), |_, i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn jobs_wrapper() {
        let jobs = ["a", "bb", "ccc"];
        let got = map_jobs(Threads::new(2), &jobs, &(), |_, j| j.len());
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn threads_knob() {
        assert_eq!(Threads::new(0).get(), 1);
        assert_eq!(Threads::new(3).get(), 3);
        assert!(Threads::from_knob(0).get() >= 1);
        assert_eq!(Threads::from_knob(2).get(), 2);
    }

    #[test]
    fn worker_pool_runs_every_job() {
        let pool = WorkerPool::new(Threads::new(3));
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins: all queued jobs must have run
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn worker_pool_single_thread_is_fifo() {
        let pool = WorkerPool::new(Threads::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16 {
            let order = Arc::clone(&order);
            pool.spawn(move || order.lock().unwrap().push(i));
        }
        drop(pool);
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn speculation_never_exceeds_machine_parallelism() {
        let cores = Threads::auto().get();
        assert_eq!(Threads::new(1).speculation_width(), 1);
        assert_eq!(Threads::new(cores + 7).speculation_width(), cores);
        assert_eq!(Threads::auto().speculation_width(), cores);
    }
}
