//! Forward-implication cost: the inner loop of TPGREED's gain function.
//! Compares a forced assignment with full propagation against the
//! preview/undo trial primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_sim::{Implication, Trit};
use tpi_workloads::{generate, suite};

fn bench_implication(c: &mut Criterion) {
    let spec = suite().into_iter().find(|s| s.name == "s13207").expect("suite circuit");
    let n = generate(&spec);
    let nets: Vec<_> = n.gate_ids().step_by(37).collect();
    let mut group = c.benchmark_group("implication_s13207");
    group.bench_function(BenchmarkId::from_parameter("force_clone"), |b| {
        b.iter_batched(
            || Implication::new(&n),
            |mut imp| {
                for &g in &nets {
                    let mut scratch = imp.clone();
                    scratch.force(g, Trit::Zero);
                }
                imp.force(nets[0], Trit::Zero);
                imp
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function(BenchmarkId::from_parameter("preview_undo"), |b| {
        b.iter_batched(
            || Implication::new(&n),
            |mut imp| {
                for &g in &nets {
                    let p = imp.preview_force(g, Trit::Zero);
                    imp.undo_preview(p);
                }
                imp
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_implication);
criterion_main!(benches);
