//! §IV.B ablation: incremental STA repair after a test-point insertion
//! versus a from-scratch recomputation. The paper relies on incremental
//! updates to keep TPTIME's per-flip-flop iteration cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_netlist::TechLibrary;
use tpi_sta::{ClockConstraint, Sta};
use tpi_workloads::{generate, suite};

fn bench_sta(c: &mut Criterion) {
    let lib = TechLibrary::paper();
    let mut group = c.benchmark_group("sta_update_after_test_point");
    group.sample_size(20);
    for name in ["s5378", "s13207"] {
        let spec = suite().into_iter().find(|s| s.name == name).expect("suite circuit");
        let base = generate(&spec);
        // Pre-build the edited netlist once; measure only the timing work.
        let mut edited = base.clone();
        let victim = edited.comb_gates()[edited.comb_gates().len() / 2];
        let tp = edited.insert_and_test_point(victim).expect("valid net");
        let seeds = {
            let mut s = vec![tp, victim];
            s.extend(edited.fanin(tp).iter().copied());
            s.push(edited.test_input().expect("test point created T"));
            s
        };
        let mut warm = Sta::analyze(&base, &lib, ClockConstraint::LongestPath);
        warm.freeze_clock();

        group.bench_with_input(BenchmarkId::new("incremental", name), &edited, |b, n| {
            b.iter_batched(
                || warm.clone(),
                |mut sta| {
                    sta.update_after_edit(n, &seeds);
                    sta
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("full", name), &edited, |b, n| {
            b.iter_batched(
                || warm.clone(),
                |mut sta| {
                    sta.recompute(n);
                    sta
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
