//! Cycle-breaking (Lee–Reddy CB and the timing-driven variant) on the
//! suite's s-graphs — the selection substrate of Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_scan::{break_cycles, CycleBreakOptions, SGraph};
use tpi_workloads::{generate, suite};

fn bench_cycle_break(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_break");
    for name in ["s5378", "s13207", "bigkey"] {
        let spec = suite().into_iter().find(|s| s.name == name).expect("suite circuit");
        let n = generate(&spec);
        let g = SGraph::build(&n);
        group.bench_with_input(BenchmarkId::new("classic", name), &g, |b, g| {
            b.iter(|| break_cycles(g, &CycleBreakOptions::classic()));
        });
        group.bench_with_input(BenchmarkId::new("timing_driven", name), &g, |b, g| {
            b.iter(|| break_cycles(g, &CycleBreakOptions::timing_driven(|_| true)));
        });
        group.bench_with_input(BenchmarkId::new("sgraph_build", name), &n, |b, n| {
            b.iter(|| SGraph::build(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_break);
criterion_main!(benches);
