//! Criterion benchmark behind Table I: full TPGREED runs on the small
//! and mid-size suite circuits (run the `table1` binary for the full
//! suite including the large circuits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::tpgreed::{TpGreed, TpGreedConfig};
use tpi_workloads::{generate, suite};

fn bench_tpgreed(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpgreed");
    group.sample_size(10);
    for spec in suite() {
        if !matches!(spec.name.as_str(), "s5378" | "s9234" | "mult32a" | "mult32b" | "dsip") {
            continue;
        }
        let n = generate(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &n, |b, n| {
            b.iter(|| TpGreed::new(n, TpGreedConfig::default()).run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tpgreed);
criterion_main!(benches);
