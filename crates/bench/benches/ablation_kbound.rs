//! Ablation A2 (§III.D): the effect of `K_bound` on path-enumeration
//! cost. The paper attributes s38584's high CPU time to its 270463
//! candidate paths and suggests a smaller `K_bound` as the remedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::paths::enumerate_paths;
use tpi_workloads::{generate, suite};

fn bench_kbound(c: &mut Criterion) {
    let spec = suite().into_iter().find(|s| s.name == "s13207").expect("suite circuit");
    let n = generate(&spec);
    let mut group = c.benchmark_group("enumerate_paths_kbound_s13207");
    for k in [2usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| enumerate_paths(&n, k, usize::MAX));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kbound);
criterion_main!(benches);
