//! ATPG substrate throughput: fault simulation and PODEM over the
//! scan-exposed view of a suite circuit (the payoff the paper's DFT
//! makes possible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_atpg::{fault_list, generate_tests, CombView, FaultSim, Podem, PodemConfig, TestCube};
use tpi_netlist::transform::compact;
use tpi_sim::Trit;
use tpi_workloads::{generate, suite};

fn bench_atpg(c: &mut Criterion) {
    let spec = suite().into_iter().find(|s| s.name == "s5378").expect("suite circuit");
    let n = compact(&generate(&spec)).netlist;
    let view = CombView::full_scan(&n);
    let faults = fault_list(&n);
    let sim = FaultSim::new(&n, &view);
    let cube: TestCube = view.inputs().iter().map(|&g| (g, Trit::One)).collect();

    let mut group = c.benchmark_group("atpg_s5378");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("fault_sim_one_pattern"), |b| {
        b.iter(|| sim.detected(&cube, &faults).len());
    });
    group.bench_function(BenchmarkId::from_parameter("podem_100_faults"), |b| {
        b.iter(|| {
            let mut podem = Podem::new(&n, &view, PodemConfig::default());
            faults.iter().take(100).map(|&f| podem.generate(f)).count()
        });
    });
    // Bounded slice of the fault list keeps the end-to-end point cheap
    // enough for criterion's sampling.
    let slice: Vec<_> = faults.iter().copied().take(400).collect();
    group.bench_function(BenchmarkId::from_parameter("testgen_400_faults"), |b| {
        b.iter(|| generate_tests(&n, &view, &slice, 32, 7).report.detected);
    });
    group.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
