//! Parallel scaling of TPGREED's candidate-gain sweeps: the same run at
//! 1, 2 and 4 worker threads (plus `auto`), on the suite circuits where
//! the sweep dominates. Selections are identical at every thread count —
//! see `parallel_selections_match_sequential` in `tpi-core` — so this
//! measures pure wall-clock scaling. On a single-core host the parallel
//! configurations measure the fan-out overhead instead of a speedup;
//! `EXPERIMENTS.md` records both situations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::tpgreed::{GainUpdate, TpGreed, TpGreedConfig};
use tpi_workloads::{generate, suite};

fn bench_tpgreed_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpgreed_parallel");
    group.sample_size(10);
    for spec in suite() {
        if !matches!(spec.name.as_str(), "s5378" | "s9234" | "mult32a") {
            continue;
        }
        let n = generate(&spec);
        for threads in [1usize, 2, 4, 0] {
            let label = if threads == 0 { "auto".to_string() } else { threads.to_string() };
            let cfg = TpGreedConfig {
                gain_update: GainUpdate::Full,
                threads,
                ..TpGreedConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(&spec.name, &label), &n, |b, n| {
                b.iter(|| TpGreed::new(n, cfg.clone()).run())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tpgreed_parallel);
criterion_main!(benches);
