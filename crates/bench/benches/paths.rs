//! Path-matrix construction cost (§III.A's sparse matrix `A`) across the
//! suite's structural classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::paths::enumerate_paths;
use tpi_workloads::{generate, suite};

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_paths");
    for name in ["s5378", "dsip", "bigkey", "mult32b"] {
        let spec = suite().into_iter().find(|s| s.name == name).expect("suite circuit");
        let n = generate(&spec);
        group.bench_with_input(BenchmarkId::from_parameter(name), &n, |b, n| {
            b.iter(|| enumerate_paths(n, 10, usize::MAX));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
