//! Criterion benchmark behind Table III: one full partial-scan run per
//! method on a mid-size circuit (the `table3` binary covers the suite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::flow::{PartialScanFlow, PartialScanMethod};
use tpi_workloads::{generate, suite};

fn bench_partial_scan(c: &mut Criterion) {
    let spec = suite().into_iter().find(|s| s.name == "s5378").expect("suite circuit");
    let n = generate(&spec);
    let mut group = c.benchmark_group("partial_scan_s5378");
    group.sample_size(10);
    for method in [PartialScanMethod::Cb, PartialScanMethod::TdCb, PartialScanMethod::TpTime] {
        group.bench_with_input(BenchmarkId::from_parameter(method.label()), &n, |b, n| {
            b.iter(|| PartialScanFlow::new(method).run(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partial_scan);
criterion_main!(benches);
