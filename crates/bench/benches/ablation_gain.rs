//! Ablation A1 (§III.C): the paper's "current implementation" recomputes
//! every candidate gain after each insertion and notes that an
//! incremental algorithm "which only re-computes the gain of those
//! affected connections" would cut the cost. Both are implemented; this
//! bench quantifies the gap (selections are identical — asserted here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpi_core::tpgreed::{GainUpdate, TpGreed, TpGreedConfig};
use tpi_workloads::{generate, suite};

fn cfg(update: GainUpdate) -> TpGreedConfig {
    TpGreedConfig { gain_update: update, ..TpGreedConfig::default() }
}

fn bench_gain_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpgreed_gain_update");
    group.sample_size(10);
    for name in ["s5378", "dsip", "mult32a"] {
        let spec = suite().into_iter().find(|s| s.name == name).expect("suite circuit");
        let n = generate(&spec);
        // Equivalence guard: both modes must pick the same points.
        let full = TpGreed::new(&n, cfg(GainUpdate::Full)).run();
        let inc = TpGreed::new(&n, cfg(GainUpdate::Incremental)).run();
        assert_eq!(full.test_points, inc.test_points, "{name}: modes diverged");
        assert_eq!(full.scan_paths, inc.scan_paths, "{name}: modes diverged");

        group.bench_with_input(BenchmarkId::new("full", name), &n, |b, n| {
            b.iter(|| TpGreed::new(n, cfg(GainUpdate::Full)).run());
        });
        group.bench_with_input(BenchmarkId::new("incremental", name), &n, |b, n| {
            b.iter(|| TpGreed::new(n, cfg(GainUpdate::Incremental)).run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gain_update);
criterion_main!(benches);
