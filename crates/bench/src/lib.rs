//! Shared harness utilities: the paper's published numbers, side-by-side
//! table rendering, and workload selection.
//!
//! The `table1`, `table2`, `table3` and `figures` binaries regenerate
//! the corresponding artifacts of the paper; each prints the paper's
//! reported row next to the measured row so the *shape* comparison
//! (who wins, by roughly what factor) is immediate. See `EXPERIMENTS.md`
//! at the repository root for recorded runs.

/// Re-export of the shared CLI dialect, which moved to [`tpi_net`]
/// when the network binaries started using it too. The historical
/// `tpi_bench::cli::` paths keep working.
pub use tpi_net::cli;

pub use cli::{parse_threads, ArgCursor, Cli};

use tpi_core::report::Table1Row;

/// One row of the paper's Table I, as published.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable1 {
    /// Circuit name.
    pub circuit: &'static str,
    /// `A`: flip-flops.
    pub ffs: usize,
    /// `B`: test points inserted.
    pub insertions: usize,
    /// `C`: free (PI-realizable) test points.
    pub free: usize,
    /// `D`: scan paths established.
    pub scan_paths: usize,
    /// Reported area-overhead reduction (fraction).
    pub reduction: f64,
    /// Reported SPARC-5 CPU seconds.
    pub cpu_seconds: f64,
}

/// The paper's Table I, verbatim.
pub const PAPER_TABLE1: [PaperTable1; 11] = [
    PaperTable1 {
        circuit: "s5378",
        ffs: 152,
        insertions: 28,
        free: 3,
        scan_paths: 62,
        reduction: 0.326,
        cpu_seconds: 171.0,
    },
    PaperTable1 {
        circuit: "s9234",
        ffs: 135,
        insertions: 35,
        free: 1,
        scan_paths: 57,
        reduction: 0.296,
        cpu_seconds: 296.0,
    },
    PaperTable1 {
        circuit: "s13207",
        ffs: 453,
        insertions: 120,
        free: 2,
        scan_paths: 196,
        reduction: 0.302,
        cpu_seconds: 1151.0,
    },
    PaperTable1 {
        circuit: "s15850",
        ffs: 540,
        insertions: 137,
        free: 2,
        scan_paths: 244,
        reduction: 0.327,
        cpu_seconds: 3907.0,
    },
    PaperTable1 {
        circuit: "s35932",
        ffs: 1728,
        insertions: 3,
        free: 3,
        scan_paths: 1440,
        reduction: 0.833,
        cpu_seconds: 3019.0,
    },
    PaperTable1 {
        circuit: "s38417",
        ffs: 1636,
        insertions: 169,
        free: 8,
        scan_paths: 448,
        reduction: 0.225,
        cpu_seconds: 6852.0,
    },
    PaperTable1 {
        circuit: "s38584",
        ffs: 1294,
        insertions: 164,
        free: 1,
        scan_paths: 1133,
        reduction: 0.813,
        cpu_seconds: 15324.0,
    },
    PaperTable1 {
        circuit: "bigkey",
        ffs: 224,
        insertions: 115,
        free: 3,
        scan_paths: 112,
        reduction: 0.250,
        cpu_seconds: 576.0,
    },
    PaperTable1 {
        circuit: "dsip",
        ffs: 224,
        insertions: 4,
        free: 3,
        scan_paths: 168,
        reduction: 0.748,
        cpu_seconds: 52.0,
    },
    PaperTable1 {
        circuit: "mult32a",
        ffs: 32,
        insertions: 31,
        free: 1,
        scan_paths: 31,
        reduction: 0.500,
        cpu_seconds: 24.0,
    },
    PaperTable1 {
        circuit: "mult32b",
        ffs: 61,
        insertions: 31,
        free: 1,
        scan_paths: 31,
        reduction: 0.262,
        cpu_seconds: 26.0,
    },
];

/// One row of the paper's Table II, as published.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable2 {
    /// Circuit name.
    pub circuit: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops (after delay optimization — differs from Table I for
    /// some circuits because a different SIS script was used).
    pub ffs: usize,
    /// SIS-mapped area.
    pub area: f64,
    /// Longest-path delay (ns).
    pub delay: f64,
}

/// The paper's Table II, verbatim.
pub const PAPER_TABLE2: [PaperTable2; 11] = [
    PaperTable2 { circuit: "s5378", inputs: 35, outputs: 49, ffs: 163, area: 4286.0, delay: 26.9 },
    PaperTable2 { circuit: "s9234", inputs: 36, outputs: 39, ffs: 135, area: 3619.0, delay: 29.5 },
    PaperTable2 {
        circuit: "s13207",
        inputs: 31,
        outputs: 121,
        ffs: 453,
        area: 8511.0,
        delay: 35.8,
    },
    PaperTable2 {
        circuit: "s15850",
        inputs: 14,
        outputs: 87,
        ffs: 540,
        area: 13442.0,
        delay: 54.7,
    },
    PaperTable2 {
        circuit: "s35932",
        inputs: 35,
        outputs: 320,
        ffs: 1728,
        area: 40881.0,
        delay: 31.0,
    },
    PaperTable2 {
        circuit: "s38417",
        inputs: 28,
        outputs: 106,
        ffs: 1462,
        area: 40611.0,
        delay: 42.4,
    },
    PaperTable2 {
        circuit: "s38584",
        inputs: 12,
        outputs: 278,
        ffs: 1449,
        area: 36646.0,
        delay: 39.6,
    },
    PaperTable2 {
        circuit: "bigkey",
        inputs: 262,
        outputs: 197,
        ffs: 224,
        area: 14461.0,
        delay: 27.8,
    },
    PaperTable2 { circuit: "dsip", inputs: 228, outputs: 197, ffs: 224, area: 8288.0, delay: 23.1 },
    PaperTable2 { circuit: "mult32a", inputs: 33, outputs: 1, ffs: 32, area: 1655.0, delay: 95.8 },
    PaperTable2 { circuit: "mult32b", inputs: 32, outputs: 1, ffs: 61, area: 1505.0, delay: 12.2 },
];

/// One method entry of the paper's Table III, as published.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable3 {
    /// Circuit name.
    pub circuit: &'static str,
    /// `(selected FFs, area %, delay %)` for CB.
    pub cb: (usize, f64, f64),
    /// `(selected FFs, area %, delay %)` for TD-CB.
    pub td_cb: (usize, f64, f64),
    /// `(selected FFs, area %, delay %)` for TPTIME.
    pub tptime: (usize, f64, f64),
}

/// The paper's Table III, verbatim (percent columns).
pub const PAPER_TABLE3: [PaperTable3; 11] = [
    PaperTable3 {
        circuit: "s5378",
        cb: (29, 3.4, 7.8),
        td_cb: (29, 3.4, 0.0),
        tptime: (29, 3.4, 0.0),
    },
    PaperTable3 {
        circuit: "s9234",
        cb: (24, 3.3, 7.1),
        td_cb: (25, 3.5, 0.0),
        tptime: (24, 3.7, 0.0),
    },
    PaperTable3 {
        circuit: "s13207",
        cb: (41, 2.4, 6.1),
        td_cb: (42, 2.5, 0.0),
        tptime: (42, 2.5, 0.0),
    },
    PaperTable3 {
        circuit: "s15850",
        cb: (91, 3.4, 4.0),
        td_cb: (91, 3.4, 2.2),
        tptime: (91, 3.5, 0.0),
    },
    PaperTable3 {
        circuit: "s35932",
        cb: (306, 3.7, 7.1),
        td_cb: (306, 3.7, 0.0),
        tptime: (306, 3.7, 0.0),
    },
    PaperTable3 {
        circuit: "s38417",
        cb: (366, 4.5, 5.2),
        td_cb: (388, 4.8, 5.2),
        tptime: (382, 6.7, 4.2),
    },
    PaperTable3 {
        circuit: "s38584",
        cb: (175, 2.4, 5.6),
        td_cb: (233, 3.2, 4.5),
        tptime: (183, 3.2, 2.5),
    },
    PaperTable3 {
        circuit: "bigkey",
        cb: (112, 3.9, 7.9),
        td_cb: (112, 3.9, 7.9),
        tptime: (112, 8.5, 3.2),
    },
    PaperTable3 {
        circuit: "dsip",
        cb: (150, 9.0, 9.5),
        td_cb: (180, 10.8, 9.5),
        tptime: (162, 27.4, 0.0),
    },
    PaperTable3 {
        circuit: "mult32a",
        cb: (16, 4.8, 2.2),
        td_cb: (17, 5.1, 2.2),
        tptime: (16, 5.1, 0.0),
    },
    PaperTable3 {
        circuit: "mult32b",
        cb: (2, 0.6, 16.4),
        td_cb: (22, 7.4, 16.4),
        tptime: (19, 9.5, 0.0),
    },
];

/// Looks up a paper Table I row by circuit name.
pub fn paper_table1(circuit: &str) -> Option<&'static PaperTable1> {
    PAPER_TABLE1.iter().find(|r| r.circuit == circuit)
}

/// Renders a measured Table I row next to the paper's.
pub fn render_table1_comparison(measured: &Table1Row) -> String {
    match paper_table1(&measured.circuit) {
        Some(p) => format!(
            "{:<8} | paper: A={:>4} B={:>3} C={:>2} D={:>4} red={:>5.1}% | ours: A={:>4} B={:>3} C={:>2} D={:>4} red={:>5.1}% ({:.1}s)",
            measured.circuit,
            p.ffs,
            p.insertions,
            p.free,
            p.scan_paths,
            p.reduction * 100.0,
            measured.ff_count,
            measured.insertions,
            measured.free,
            measured.scan_paths,
            measured.reduction() * 100.0,
            measured.cpu_seconds,
        ),
        None => measured.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_cover_the_same_circuits() {
        for r in PAPER_TABLE1 {
            assert!(PAPER_TABLE2.iter().any(|x| x.circuit == r.circuit));
            assert!(PAPER_TABLE3.iter().any(|x| x.circuit == r.circuit));
        }
    }

    #[test]
    fn paper_reductions_are_consistent_with_the_formula() {
        for r in PAPER_TABLE1 {
            let row = Table1Row {
                circuit: r.circuit.into(),
                ff_count: r.ffs,
                insertions: r.insertions,
                free: r.free,
                scan_paths: r.scan_paths,
                cpu_seconds: 0.0,
            };
            assert!(
                (row.reduction() - r.reduction).abs() < 6e-3,
                "{}: {} vs {}",
                r.circuit,
                row.reduction(),
                r.reduction
            );
        }
    }

    #[test]
    fn lookup_works() {
        assert_eq!(paper_table1("dsip").unwrap().insertions, 4);
        assert!(paper_table1("nonesuch").is_none());
    }
}
