//! Regenerates the paper's Table I: full-scan test point insertion on
//! the 11-circuit suite, `K_bound = 10`, `gain_bound = 0.5`.
//!
//! Usage: `cargo run --release -p tpi-bench --bin table1 [--threads N] [circuit ...]`
//! (no circuit arguments = the whole suite; `--threads 0` = all hardware
//! threads, default 1. The selections are identical for every thread
//! count — only the CPU column changes.)

use std::time::Instant;
use tpi_bench::{render_table1_comparison, Cli};
use tpi_core::flow::FullScanFlow;
use tpi_core::FlowOptions;
use tpi_workloads::{generate, suite};

fn main() {
    let cli = Cli::parse();
    println!("Table I — full-scan test point insertion (paper vs. this reproduction)");
    println!("circuit  |  A=#FF  B=#insertions  C=#free  D=#scan-paths  red=overhead reduction");
    println!("{}", "-".repeat(110));
    let flow = FullScanFlow::default();
    let opts = FlowOptions::new().with_threads(cli.threads);
    for spec in suite() {
        if !cli.selects(&spec.name) {
            continue;
        }
        let n = generate(&spec);
        let t0 = Instant::now();
        let mut result = match flow.run_with(&n, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", spec.name);
                std::process::exit(1);
            }
        };
        result.row.cpu_seconds = t0.elapsed().as_secs_f64();
        println!("{}", render_table1_comparison(&result.row));
    }
    println!();
    println!("notes: the workloads are synthetic stand-ins calibrated to the paper's");
    println!("interface statistics and structural classes (see DESIGN.md §3); compare");
    println!("shapes (which circuits reduce a lot vs. a little), not absolute numbers.");
    println!("Every produced chain passed the §V flush test.");
}
