//! Regenerates the paper's Table III: timing-driven partial scan with
//! the three methods CB / TD-CB / TPTIME.
//!
//! Usage: `cargo run --release -p tpi-bench --bin table3 [--threads N] [circuit ...]`
//! (`--threads 0` = all hardware threads, default 1; selections are
//! identical for every thread count.)

use std::time::Instant;
use tpi_bench::{Cli, PAPER_TABLE3};
use tpi_core::flow::{PartialScanFlow, PartialScanMethod};
use tpi_core::FlowOptions;
use tpi_workloads::{generate, suite};

fn main() {
    let cli = Cli::parse();
    println!("Table III — timing-driven partial scan (percent columns; paper | ours)");
    println!(
        "{:<9} {:<7} | paper: {:>5} {:>6} {:>6} | ours: {:>5} {:>6} {:>6} {:>8}",
        "circuit", "method", "#FF", "area%", "delay%", "#FF", "area%", "delay%", "cpu"
    );
    println!("{}", "-".repeat(92));
    for spec in suite() {
        if !cli.selects(&spec.name) {
            continue;
        }
        let n = generate(&spec);
        let paper = PAPER_TABLE3
            .iter()
            .find(|r| r.circuit == spec.name)
            .expect("suite mirrors the paper's circuit list");
        for (method, (pff, parea, pdelay)) in [
            (PartialScanMethod::Cb, paper.cb),
            (PartialScanMethod::TdCb, paper.td_cb),
            (PartialScanMethod::TpTime, paper.tptime),
        ] {
            let t0 = Instant::now();
            let mut r = match PartialScanFlow::new(method)
                .run_with(&n, &FlowOptions::new().with_threads(cli.threads))
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{} {}: {e}", spec.name, method.label());
                    std::process::exit(1);
                }
            };
            r.row.cpu_seconds = t0.elapsed().as_secs_f64();
            assert!(r.acyclic, "{}: {:?} left s-graph cycles", spec.name, method);
            println!(
                "{:<9} {:<7} | paper: {:>5} {:>5.1}% {:>5.1}% | ours: {:>5} {:>5.1}% {:>5.1}% {:>7.1}s",
                spec.name,
                method.label(),
                pff,
                parea,
                pdelay,
                r.row.selected_ffs,
                r.row.area_pct,
                r.row.delay_pct,
                r.row.cpu_seconds,
            );
        }
        println!("{}", "-".repeat(92));
    }
    println!("notes: compare shapes — CB degrades the clock, TD-CB selects more FFs to");
    println!("avoid degradation where it can, TPTIME keeps the clock with a few AND/OR");
    println!("test points. Every non-empty chain passed the §V flush test.");
}
