//! Regenerates the paper's Table II: circuit statistics (interface, area,
//! longest-path delay) for the benchmark suite.
//!
//! Usage: `cargo run --release -p tpi-bench --bin table2 [--threads N]`
//! (`--threads 0` = all hardware threads, default 1; rows are computed
//! concurrently but always print in suite order.)

use tpi_bench::{Cli, PAPER_TABLE2};
use tpi_netlist::{NetlistStats, TechLibrary};
use tpi_par::Threads;
use tpi_sta::{ClockConstraint, Sta};
use tpi_workloads::{generate, suite};

fn main() {
    let cli = Cli::parse();
    println!("Table II — circuit statistics (paper's SIS-mapped suite vs. synthetic stand-ins)");
    println!(
        "{:<9} | {:>4} {:>4} {:>5} {:>9} {:>7} | {:>4} {:>4} {:>5} {:>9} {:>7}",
        "circuit", "#I", "#O", "#FF", "area", "delay", "#I", "#O", "#FF", "area", "delay"
    );
    println!("{:<9} | {:^33} | {:^33}", "", "paper", "this reproduction");
    println!("{}", "-".repeat(90));
    let lib = TechLibrary::paper();
    let specs: Vec<_> = suite().into_iter().filter(|s| cli.selects(&s.name)).collect();
    // Generation + STA per circuit are independent; fan out, print in order.
    // (`Option` only to satisfy the slot type's `Default`; every job fills
    // its slot.)
    let rows: Vec<Option<(NetlistStats, f64)>> =
        tpi_par::map_jobs(Threads::from_knob(cli.threads), &specs, &lib, |lib, spec| {
            let n = generate(spec);
            let stats = NetlistStats::compute(&n, lib);
            let delay = Sta::analyze(&n, lib, ClockConstraint::LongestPath).circuit_delay();
            Some((stats, delay))
        });
    for (spec, row) in specs.iter().zip(&rows) {
        let (stats, delay) = row.as_ref().expect("every job fills its slot");
        let paper = PAPER_TABLE2
            .iter()
            .find(|r| r.circuit == spec.name)
            .expect("suite mirrors the paper's circuit list");
        println!(
            "{:<9} | {:>4} {:>4} {:>5} {:>9.1} {:>7.1} | {:>4} {:>4} {:>5} {:>9.1} {:>7.1}",
            spec.name,
            paper.inputs,
            paper.outputs,
            paper.ffs,
            paper.area,
            paper.delay,
            stats.inputs,
            stats.outputs,
            stats.ffs,
            stats.area,
            delay,
        );
    }
    println!();
    println!("notes: #I/#O/#FF are calibrated to the paper (Table I FF counts where the");
    println!("two tables disagree); area and delay are in this library's units and are");
    println!("not commensurable with SIS's — only relative ordering is meaningful.");
}
