//! `tpi-bench`: the observability benchmark harness.
//!
//! Runs the smoke suite (both workloads) through the full-scan and
//! TPTIME flows at `--threads 1`, `2` and `0` (all hardware threads),
//! checks that the **deterministic** metrics section — span structure
//! plus counters — is byte-identical across the three settings, and
//! prints per-phase wall times.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tpi-bench --bin tpi-bench -- [--emit-bench PATH] [--det-out PATH] [--threads N]
//! ```
//!
//! * `--emit-bench PATH` — also write the machine-readable bench file
//!   (`tpi-bench/v1` JSON: wall times, per-phase µs, counters per run).
//!   This is what produces `BENCH_PR4.json`.
//! * `--det-out PATH` — write *only* the deterministic metrics sections
//!   for every workload at the given `--threads` setting, one line per
//!   workload, then exit. CI runs this at two settings and `cmp`s the
//!   files: any byte difference fails the build.
//!
//! Exit status: `1` if any flow fails or any deterministic section
//! differs across thread counts.

use std::process::exit;
use std::time::Instant;
use tpi_bench::{ArgCursor, Cli};
use tpi_core::{FlowMetrics, FlowOptions, FullScanFlow, PartialScanFlow, PartialScanMethod};
use tpi_netlist::Netlist;
use tpi_obs::{JsonArray, JsonObject, SpanSnapshot};
use tpi_workloads::{generate, smoke_suite};

/// The thread settings the determinism gate sweeps.
const THREAD_SETTINGS: [usize; 3] = [1, 2, 0];

/// One measured flow invocation.
struct Run {
    threads: usize,
    wall_micros: u64,
    metrics: FlowMetrics,
}

/// The smoke workloads: every smoke circuit through both paper flows.
fn workloads() -> Vec<(String, &'static str, Netlist)> {
    let mut out = Vec::new();
    for spec in smoke_suite() {
        let n = generate(&spec);
        out.push((spec.name.clone(), "full-scan", n.clone()));
        out.push((spec.name.clone(), "tptime", n));
    }
    out
}

fn run_once(circuit: &str, flow: &str, n: &Netlist, threads: usize) -> Run {
    let opts = FlowOptions::new().with_threads(threads);
    let t0 = Instant::now();
    let metrics = match flow {
        "full-scan" => FullScanFlow::default().run_with(n, &opts).map(|r| r.metrics),
        "tptime" => {
            PartialScanFlow::new(PartialScanMethod::TpTime).run_with(n, &opts).map(|r| r.metrics)
        }
        other => unreachable!("unknown flow {other}"),
    }
    .unwrap_or_else(|e| {
        eprintln!("{circuit} [{flow}] --threads {threads}: {e}");
        exit(1);
    });
    Run { threads, wall_micros: t0.elapsed().as_micros() as u64, metrics }
}

/// Flat `{phase: micros}` object — valid because every phase appears
/// exactly once per run.
fn phase_micros(m: &FlowMetrics) -> JsonObject {
    fn walk(s: &SpanSnapshot, o: &mut JsonObject) {
        o.field_u64(&s.name, s.micros);
        for c in &s.children {
            walk(c, o);
        }
    }
    let mut o = JsonObject::new();
    for s in &m.spans {
        walk(s, &mut o);
    }
    o
}

fn counter_object(counters: &std::collections::BTreeMap<String, u64>) -> JsonObject {
    let mut o = JsonObject::new();
    for (k, &v) in counters {
        o.field_u64(k, v);
    }
    o
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    }
}

fn main() {
    let cli = Cli::parse();
    let mut emit_bench: Option<String> = None;
    let mut det_out: Option<String> = None;
    let mut cur = ArgCursor::new(cli.args.clone());
    while let Some(a) = cur.next_arg() {
        match a.as_str() {
            "--emit-bench" => emit_bench = Some(cur.value("--emit-bench")),
            "--det-out" => det_out = Some(cur.value("--det-out")),
            other => {
                eprintln!("unknown argument: {other} (expected --emit-bench/--det-out/--threads)");
                exit(2);
            }
        }
    }

    // CI mode: dump only the deterministic sections at one setting.
    if let Some(path) = det_out {
        let mut out = String::new();
        for (circuit, flow, n) in workloads() {
            let r = run_once(&circuit, flow, &n, cli.threads);
            out.push_str(&circuit);
            out.push(' ');
            out.push_str(flow);
            out.push(' ');
            out.push_str(&r.metrics.deterministic_json());
            out.push('\n');
        }
        write_or_die(&path, &out);
        println!("wrote deterministic metrics (--threads {}) to {path}", cli.threads);
        return;
    }

    println!("tpi-bench — smoke suite at --threads {THREAD_SETTINGS:?}");
    println!(
        "{:<14} {:<10} | {:>10} {:>10} {:>10} | det section",
        "circuit", "flow", "t=1 µs", "t=2 µs", "t=0 µs"
    );
    println!("{}", "-".repeat(78));

    let mut workloads_arr = JsonArray::new();
    let mut all_identical = true;
    for (circuit, flow, n) in workloads() {
        let runs: Vec<Run> =
            THREAD_SETTINGS.iter().map(|&t| run_once(&circuit, flow, &n, t)).collect();
        let det = runs[0].metrics.deterministic_json();
        let identical = runs.iter().all(|r| r.metrics.deterministic_json() == det);
        if !identical {
            all_identical = false;
            eprintln!("{circuit} [{flow}]: deterministic sections DIFFER across thread counts");
        }
        println!(
            "{:<14} {:<10} | {:>10} {:>10} {:>10} | {}",
            circuit,
            flow,
            runs[0].wall_micros,
            runs[1].wall_micros,
            runs[2].wall_micros,
            if identical { "byte-identical" } else { "MISMATCH" },
        );

        let mut w = JsonObject::new();
        w.field_str("circuit", &circuit)
            .field_str("flow", flow)
            .field_object("counters", counter_object(&runs[0].metrics.counters));
        let mut runs_arr = JsonArray::new();
        for r in &runs {
            let mut ro = JsonObject::new();
            ro.field_u64("threads", r.threads as u64)
                .field_u64("wall_micros", r.wall_micros)
                .field_object("phase_micros", phase_micros(&r.metrics))
                .field_object("nd_counters", counter_object(&r.metrics.nd_counters));
            runs_arr.push_object(ro);
        }
        w.field_array("runs", runs_arr);
        workloads_arr.push_object(w);
    }

    if let Some(path) = emit_bench {
        let mut root = JsonObject::new();
        root.field_str("schema", "tpi-bench/v1")
            .field_str("suite", "smoke")
            .field_str("thread_settings", "1,2,0")
            .field_bool("deterministic_sections_identical", all_identical)
            .field_array("workloads", workloads_arr);
        let mut text = root.finish();
        text.push('\n');
        write_or_die(&path, &text);
        println!("wrote bench file to {path}");
    }

    if !all_identical {
        eprintln!("FAIL: the deterministic metrics section must not depend on --threads");
        exit(1);
    }
    println!("OK: deterministic sections byte-identical at --threads 1/2/0");
}
