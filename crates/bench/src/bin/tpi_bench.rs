//! `tpi-bench`: the observability benchmark harness.
//!
//! Runs the smoke suite (both workloads) through the full-scan and
//! TPTIME flows at `--threads 1`, `2` and `0` (all hardware threads),
//! checks that the **deterministic** metrics section — span structure
//! plus counters — is byte-identical across the three settings, and
//! prints per-phase wall times.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tpi-bench --bin tpi-bench -- [--emit-bench PATH] [--det-out PATH] [--threads N] [--large] [--gain-model path-count|scoap] [--net]
//! ```
//!
//! * `--emit-bench PATH` — also write the machine-readable bench file
//!   (`tpi-bench/v1` JSON: wall times, per-phase µs, counters per run).
//!   This is what produces `BENCH_PR4.json`.
//! * `--det-out PATH` — write *only* the deterministic metrics sections
//!   for every workload at the given `--threads` setting, one line per
//!   workload, then exit. CI runs this at two settings and `cmp`s the
//!   files: any byte difference fails the build.
//! * `--large` — run the ~50k-gate `gen50k` workload instead of the
//!   smoke suite: full-scan on the lane sweep engine at `--threads 1`,
//!   `2` and `0` plus a scalar-engine baseline at `--threads 1`. Fails
//!   if the deterministic sections differ anywhere, or if the `tpgreed`
//!   phase at `--threads 0` is slower than at `--threads 1` by more
//!   than 15% (the TPGREED parallel-slowdown regression, gated forever).
//!   With `--emit-bench`, writes the `suite: "large"` bench file
//!   (`BENCH_PR6.json`).
//! * `--gain-model path-count|scoap` — run the smoke circuits through
//!   full-scan under the named TPGREED gain model, across `--threads
//!   1/2/0` on the lane engine plus a scalar-engine baseline, and fail
//!   unless every deterministic section is byte-identical.
//! * `--gen-scale` — the industrial-generator scaling gate: build
//!   125k/250k/500k-gate designs with `IndustrialSpec::sized`, print
//!   ns/gate for each, and fail if the slowest per-gate cost exceeds
//!   the fastest by more than 4× (a superlinear generator would make
//!   `tpi-soak`'s cold lane and the 1M-gate workloads unusable) or if
//!   any design misses its gate target by more than 20%.
//! * `--net` — the `tpi-net/v2` loopback throughput benchmark: an
//!   in-process `tpi-netd` serving cache-warm `s27` jobs, driven by
//!   the legacy v1 one-connection-per-call client, a v2 session one
//!   request at a time, and a v2 session fully pipelined. Prints req/s
//!   for each plus p50/p99 ping frame latency; with `--emit-bench`,
//!   writes the `tpi-bench-net/v1` JSON (this is what produces
//!   `BENCH_PR9.json`).
//!
//! Exit status: `1` if any flow fails, any deterministic section
//! differs across thread counts, or a `--large` gate trips.

use std::process::exit;
use std::time::Instant;
use tpi_bench::{ArgCursor, Cli};
use tpi_core::{
    FlowMetrics, FlowOptions, FullScanFlow, GainModel, PartialScanFlow, PartialScanMethod,
    SweepEngine, TpGreedConfig,
};
use tpi_netlist::Netlist;
use tpi_obs::{JsonArray, JsonObject, SpanSnapshot};
use tpi_workloads::{generate, large_suite, smoke_suite};

/// The thread settings the determinism gate sweeps.
const THREAD_SETTINGS: [usize; 3] = [1, 2, 0];

/// One measured flow invocation.
struct Run {
    threads: usize,
    wall_micros: u64,
    metrics: FlowMetrics,
}

/// The smoke workloads: every smoke circuit through both paper flows.
fn workloads() -> Vec<(String, &'static str, Netlist)> {
    let mut out = Vec::new();
    for spec in smoke_suite() {
        let n = generate(&spec);
        out.push((spec.name.clone(), "full-scan", n.clone()));
        out.push((spec.name.clone(), "tptime", n));
    }
    out
}

fn run_once(circuit: &str, flow: &str, n: &Netlist, threads: usize) -> Run {
    let opts = FlowOptions::new().with_threads(threads);
    let t0 = Instant::now();
    let metrics = match flow {
        "full-scan" => FullScanFlow::default().run_with(n, &opts).map(|r| r.metrics),
        "tptime" => {
            PartialScanFlow::new(PartialScanMethod::TpTime).run_with(n, &opts).map(|r| r.metrics)
        }
        other => unreachable!("unknown flow {other}"),
    }
    .unwrap_or_else(|e| {
        eprintln!("{circuit} [{flow}] --threads {threads}: {e}");
        exit(1);
    });
    Run { threads, wall_micros: t0.elapsed().as_micros() as u64, metrics }
}

/// Flat `{phase: micros}` object — valid because every phase appears
/// exactly once per run.
fn phase_micros(m: &FlowMetrics) -> JsonObject {
    fn walk(s: &SpanSnapshot, o: &mut JsonObject) {
        o.field_u64(&s.name, s.micros);
        for c in &s.children {
            walk(c, o);
        }
    }
    let mut o = JsonObject::new();
    for s in &m.spans {
        walk(s, &mut o);
    }
    o
}

fn counter_object(counters: &std::collections::BTreeMap<String, u64>) -> JsonObject {
    let mut o = JsonObject::new();
    for (k, &v) in counters {
        o.field_u64(k, v);
    }
    o
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    }
}

/// Wall time of the named phase span, searched through the span tree.
fn span_micros(m: &FlowMetrics, name: &str) -> u64 {
    fn walk(s: &SpanSnapshot, name: &str) -> Option<u64> {
        if s.name == name {
            return Some(s.micros);
        }
        s.children.iter().find_map(|c| walk(c, name))
    }
    m.spans.iter().find_map(|s| walk(s, name)).unwrap_or(0)
}

/// One full-scan run of the large workload on a chosen sweep engine.
fn run_large(n: &Netlist, engine: SweepEngine, threads: usize) -> Run {
    let flow = FullScanFlow {
        config: TpGreedConfig { sweep_engine: engine, ..TpGreedConfig::default() },
        ..FullScanFlow::default()
    };
    let opts = FlowOptions::new().with_threads(threads);
    let t0 = Instant::now();
    let metrics = flow.run_with(n, &opts).map(|r| r.metrics).unwrap_or_else(|e| {
        eprintln!("gen50k [full-scan] {engine:?} --threads {threads}: {e}");
        exit(1);
    });
    Run { threads, wall_micros: t0.elapsed().as_micros() as u64, metrics }
}

/// One full-scan run of `n` under an explicit gain model and engine.
fn run_gain_model(n: &Netlist, model: GainModel, engine: SweepEngine, threads: usize) -> Run {
    let flow = FullScanFlow {
        config: TpGreedConfig {
            gain_model: model,
            sweep_engine: engine,
            ..TpGreedConfig::default()
        },
        ..FullScanFlow::default()
    };
    let opts = FlowOptions::new().with_threads(threads);
    let t0 = Instant::now();
    let metrics = flow.run_with(n, &opts).map(|r| r.metrics).unwrap_or_else(|e| {
        eprintln!("[full-scan {}] {engine:?} --threads {threads}: {e}", model.label());
        exit(1);
    });
    Run { threads, wall_micros: t0.elapsed().as_micros() as u64, metrics }
}

/// `--gain-model MODEL` mode: every smoke circuit through full-scan
/// under the given TPGREED gain model, across `--threads 1/2/0` on the
/// lane engine plus a scalar baseline. The deterministic sections must
/// be byte-identical across all four runs — the gain model changes
/// *which* test points are picked, never determinism.
fn gain_model_mode(model: GainModel) {
    println!(
        "tpi-bench --gain-model {}: smoke full-scan, threads {THREAD_SETTINGS:?} + scalar",
        model.label()
    );
    let mut ok = true;
    for spec in smoke_suite() {
        let n = generate(&spec);
        let runs: Vec<Run> = THREAD_SETTINGS
            .iter()
            .map(|&t| run_gain_model(&n, model, SweepEngine::Lanes, t))
            .chain(std::iter::once(run_gain_model(&n, model, SweepEngine::Scalar, 1)))
            .collect();
        let det = runs[0].metrics.deterministic_json();
        let identical = runs.iter().all(|r| r.metrics.deterministic_json() == det);
        let placed = runs[0].metrics.counter("test_points_placed");
        println!(
            "{:<14} | {:>4} test point(s) | {}",
            spec.name,
            placed,
            if identical { "byte-identical (lanes × 1/2/0 + scalar)" } else { "MISMATCH" },
        );
        if !identical {
            eprintln!("{}: deterministic sections DIFFER under {}", spec.name, model.label());
            ok = false;
        }
    }
    if !ok {
        eprintln!("FAIL: gain model {} is not thread/engine deterministic", model.label());
        exit(1);
    }
    println!("OK: {} deterministic sections byte-identical", model.label());
}

/// `--large` mode: the 50k-gate performance validation (see module docs).
fn large_mode(emit_bench: Option<String>) {
    let spec = large_suite().remove(0);
    println!(
        "tpi-bench --large: generating {} (target {} comb gates)…",
        spec.name, spec.target_gates
    );
    let n = generate(&spec);
    println!("{} gates, {} FFs", n.gate_count(), n.dffs().len());

    // The runs: lane engine across the thread sweep, scalar baseline.
    let lane_runs: Vec<Run> =
        THREAD_SETTINGS.iter().map(|&t| run_large(&n, SweepEngine::Lanes, t)).collect();
    let scalar = run_large(&n, SweepEngine::Scalar, 1);

    println!("{:<18} {:>8} | {:>12} {:>12}", "engine", "threads", "wall µs", "tpgreed µs");
    println!("{}", "-".repeat(56));
    for r in &lane_runs {
        println!(
            "{:<18} {:>8} | {:>12} {:>12}",
            "lanes",
            r.threads,
            r.wall_micros,
            span_micros(&r.metrics, tpi_core::phases::TPGREED)
        );
    }
    println!(
        "{:<18} {:>8} | {:>12} {:>12}",
        "scalar",
        scalar.threads,
        scalar.wall_micros,
        span_micros(&scalar.metrics, tpi_core::phases::TPGREED)
    );

    // Gate 1: selections (and every deterministic counter) must be
    // byte-identical across engines and thread counts.
    let det = scalar.metrics.deterministic_json();
    let identical = lane_runs.iter().all(|r| r.metrics.deterministic_json() == det);
    if identical {
        println!("OK: deterministic sections byte-identical (scalar + lanes × threads 1/2/0)");
    } else {
        eprintln!("FAIL: deterministic sections differ between engines/thread counts");
    }

    // Gate 2: the parallel-slowdown regression — tpgreed must not be slower
    // than sequential. 15% margin absorbs timing noise and single-core
    // containers (where threads 0 == threads 1).
    let t1 = span_micros(&lane_runs[0].metrics, tpi_core::phases::TPGREED);
    let t0 = span_micros(&lane_runs[2].metrics, tpi_core::phases::TPGREED);
    let parallel_ok = (t0 as f64) <= (t1 as f64) * 1.15;
    if parallel_ok {
        println!("OK: tpgreed --threads 0 ({t0} µs) ≤ 1.15 × --threads 1 ({t1} µs)");
    } else {
        eprintln!("FAIL: tpgreed --threads 0 ({t0} µs) > 1.15 × --threads 1 ({t1} µs)");
    }

    let scalar_tpgreed = span_micros(&scalar.metrics, tpi_core::phases::TPGREED);
    let speedup = scalar_tpgreed as f64 / t1.max(1) as f64;
    println!("lane-engine tpgreed speedup vs scalar (threads 1): {speedup:.1}×");

    if let Some(path) = emit_bench {
        let mut workloads_arr = JsonArray::new();
        let mut w = JsonObject::new();
        w.field_str("circuit", &spec.name)
            .field_str("flow", "full-scan")
            .field_object("counters", counter_object(&scalar.metrics.counters));
        let mut runs_arr = JsonArray::new();
        for (engine, r) in
            std::iter::once(("scalar", &scalar)).chain(lane_runs.iter().map(|r| ("lanes", r)))
        {
            let mut ro = JsonObject::new();
            ro.field_str("engine", engine)
                .field_u64("threads", r.threads as u64)
                .field_u64("wall_micros", r.wall_micros)
                .field_object("phase_micros", phase_micros(&r.metrics))
                .field_object("nd_counters", counter_object(&r.metrics.nd_counters));
            runs_arr.push_object(ro);
        }
        w.field_array("runs", runs_arr);
        workloads_arr.push_object(w);

        let mut root = JsonObject::new();
        root.field_str("schema", "tpi-bench/v1")
            .field_str("suite", "large")
            .field_str("thread_settings", "1,2,0")
            .field_bool("deterministic_sections_identical", identical)
            .field_bool("parallel_tpgreed_gate_ok", parallel_ok)
            .field_u64("scalar_tpgreed_micros_t1", scalar_tpgreed)
            .field_u64("lanes_tpgreed_micros_t1", t1)
            .field_str("lanes_speedup_vs_scalar_t1", &format!("{speedup:.2}"))
            .field_array("workloads", workloads_arr);
        let mut text = root.finish();
        text.push('\n');
        write_or_die(&path, &text);
        println!("wrote bench file to {path}");
    }

    if !identical || !parallel_ok {
        exit(1);
    }
}

/// `--net` mode: warm-loopback throughput of the three wire paths plus
/// ping frame latency. Everything is in-process: one `tpi-netd` poll
/// loop, one single-worker service, `s27` submitted repeatedly so all
/// but the first job is a memory cache hit — the numbers measure the
/// *protocol*, not TPGREED.
fn net_mode(emit_bench: Option<String>) {
    use std::sync::Arc;
    use tpi_net::{Client, ClientConfig, Connection, ServerConfig, WireRequest, WireVersion};
    use tpi_serve::{JobService, JobStatus, ServiceConfig};

    let service = Arc::new(JobService::new(ServiceConfig { threads: 1, ..Default::default() }));
    let server = tpi_net::NetServer::bind(
        // The point is pipe throughput, not backpressure: set the
        // in-flight cap out of the way.
        ServerConfig { max_inflight: 1 << 20, ..Default::default() },
        Arc::clone(&service),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start in-process tpi-netd: {e}");
        exit(1);
    });
    let addr = server.local_addr().to_string();
    let (handle, server_thread) = server.spawn();

    let blif = tpi_netlist::write_blif(&tpi_workloads::iscas::s27());
    let req = WireRequest::full_scan(blif);
    let die = |what: &str, e: &dyn std::fmt::Display| -> ! {
        eprintln!("tpi-bench --net: {what}: {e}");
        exit(1);
    };

    let conn = Connection::open(&addr).unwrap_or_else(|e| die("open", &e));
    // Warm the cache: every request after this one is a memory hit.
    match conn.submit(&req).and_then(|t| conn.wait(t)) {
        Ok(r) if matches!(r.status, JobStatus::Completed) => {}
        Ok(r) => die("warmup", &format!("job ended {}", r.status.label())),
        Err(e) => die("warmup", &e),
    }

    // Path 1: legacy v1 — TCP connect + one frame exchange per request.
    let v1_n: usize = 300;
    let client = Client::with_config(
        addr.clone(),
        ClientConfig { wire: WireVersion::V1, ..ClientConfig::default() },
    );
    let t0 = Instant::now();
    for _ in 0..v1_n {
        #[allow(deprecated)]
        if let Err(e) = client.submit(&req) {
            die("v1 submit", &e);
        }
    }
    let v1_rate = v1_n as f64 / t0.elapsed().as_secs_f64();

    // Path 2: one v2 session, one request in flight at a time.
    let v2_n: usize = 2000;
    let t0 = Instant::now();
    for _ in 0..v2_n {
        if let Err(e) = conn.submit(&req).and_then(|t| conn.wait(t)) {
            die("v2 submit", &e);
        }
    }
    let v2_rate = v2_n as f64 / t0.elapsed().as_secs_f64();

    // Path 3: one v2 session, everything submitted before anything is
    // collected — the pipelining the request IDs exist for.
    let pipe_n: usize = 4000;
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(pipe_n);
    for _ in 0..pipe_n {
        tickets.push(conn.submit(&req).unwrap_or_else(|e| die("pipelined submit", &e)));
    }
    while !tickets.is_empty() {
        if let Err(e) = conn.wait_any(&mut tickets) {
            die("pipelined wait", &e);
        }
    }
    let pipe_rate = pipe_n as f64 / t0.elapsed().as_secs_f64();

    // Frame latency: ping round trips on the (now idle) session.
    let ping_n: usize = 2000;
    let mut lat = Vec::with_capacity(ping_n);
    for _ in 0..ping_n {
        let t = Instant::now();
        if let Err(e) = conn.ping() {
            die("ping", &e);
        }
        lat.push(t.elapsed().as_micros() as u64);
    }
    lat.sort_unstable();
    let p50 = lat[ping_n / 2];
    let p99 = lat[ping_n * 99 / 100];

    println!("tpi-bench --net: warm s27 over loopback, single-worker service");
    println!("{:<26} | {:>12} | {:>8}", "path", "requests", "req/s");
    println!("{}", "-".repeat(52));
    println!("{:<26} | {:>12} | {:>8.0}", "v1 connection-per-call", v1_n, v1_rate);
    println!("{:<26} | {:>12} | {:>8.0}", "v2 session, sequential", v2_n, v2_rate);
    println!("{:<26} | {:>12} | {:>8.0}", "v2 session, pipelined", pipe_n, pipe_rate);
    println!("ping frame latency: p50 {p50} µs, p99 {p99} µs");

    if let Some(path) = emit_bench {
        let mut root = JsonObject::new();
        root.field_str("schema", "tpi-bench-net/v1")
            .field_str("workload", "s27 full-scan, memory-warm")
            .field_u64("v1_requests", v1_n as u64)
            .field_str("v1_req_per_s", &format!("{v1_rate:.0}"))
            .field_u64("v2_sequential_requests", v2_n as u64)
            .field_str("v2_sequential_req_per_s", &format!("{v2_rate:.0}"))
            .field_u64("v2_pipelined_requests", pipe_n as u64)
            .field_str("v2_pipelined_req_per_s", &format!("{pipe_rate:.0}"))
            .field_u64("ping_p50_micros", p50)
            .field_u64("ping_p99_micros", p99);
        let mut text = root.finish();
        text.push('\n');
        write_or_die(&path, &text);
        println!("wrote bench file to {path}");
    }

    drop(conn);
    handle.shutdown();
    let _ = server_thread.join();
}

/// `--gen-scale`: assert the industrial workload generator stays linear
/// in the gate target and lands near it.
fn gen_scale_mode() {
    use tpi_workloads::industrial::{generate_industrial, IndustrialSpec};
    const TARGETS: [usize; 3] = [125_000, 250_000, 500_000];
    const MAX_NS_PER_GATE_SPREAD: f64 = 4.0;
    const GATE_TOLERANCE: f64 = 0.20;

    println!("tpi-bench --gen-scale — industrial generator linearity");
    println!(
        "{:>10} | {:>10} {:>8} | {:>10} {:>9}",
        "target", "gates", "ffs", "wall ms", "ns/gate"
    );
    println!("{}", "-".repeat(58));
    let mut per_gate: Vec<f64> = Vec::new();
    let mut failed = false;
    for target in TARGETS {
        let spec = IndustrialSpec::sized(format!("scale{target}"), target, 0xD_AC96);
        let t0 = Instant::now();
        let n = generate_industrial(&spec);
        let wall = t0.elapsed();
        let gates = n.gate_count();
        let ns = wall.as_nanos() as f64 / gates as f64;
        per_gate.push(ns);
        println!(
            "{:>10} | {:>10} {:>8} | {:>10.1} {:>9.0}",
            target,
            gates,
            n.dffs().len(),
            wall.as_secs_f64() * 1e3,
            ns
        );
        let miss = (gates as f64 - target as f64).abs() / target as f64;
        if miss > GATE_TOLERANCE {
            eprintln!(
                "gen-scale: {target}-gate spec produced {gates} gates ({:.0}% off)",
                miss * 100.0
            );
            failed = true;
        }
    }
    let (min, max) =
        per_gate.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let spread = max / min;
    println!("ns/gate spread: {spread:.2}x (gate: <= {MAX_NS_PER_GATE_SPREAD:.0}x)");
    if spread > MAX_NS_PER_GATE_SPREAD {
        eprintln!("gen-scale: per-gate cost grows {spread:.2}x from 125k to 500k — generator is superlinear");
        failed = true;
    }
    if failed {
        exit(1);
    }
}

fn main() {
    let cli = Cli::parse();
    let mut emit_bench: Option<String> = None;
    let mut det_out: Option<String> = None;
    let mut large = false;
    let mut net = false;
    let mut gen_scale = false;
    let mut gain_model: Option<GainModel> = None;
    let mut cur = ArgCursor::new(cli.args.clone());
    while let Some(a) = cur.next_arg() {
        match a.as_str() {
            "--emit-bench" => emit_bench = Some(cur.value("--emit-bench")),
            "--det-out" => det_out = Some(cur.value("--det-out")),
            "--large" => large = true,
            "--net" => net = true,
            "--gen-scale" => gen_scale = true,
            "--gain-model" => {
                gain_model = Some(match cur.value("--gain-model").as_str() {
                    "path-count" => GainModel::PathCount,
                    "scoap" => GainModel::Scoap,
                    other => {
                        eprintln!("unknown gain model: {other} (expected path-count|scoap)");
                        exit(2);
                    }
                });
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (expected \
                     --emit-bench/--det-out/--threads/--large/--gain-model/--net/--gen-scale)"
                );
                exit(2);
            }
        }
    }

    if gen_scale {
        gen_scale_mode();
        return;
    }

    if net {
        net_mode(emit_bench);
        return;
    }

    if large {
        large_mode(emit_bench);
        return;
    }

    if let Some(model) = gain_model {
        gain_model_mode(model);
        return;
    }

    // CI mode: dump only the deterministic sections at one setting.
    if let Some(path) = det_out {
        let mut out = String::new();
        for (circuit, flow, n) in workloads() {
            let r = run_once(&circuit, flow, &n, cli.threads);
            out.push_str(&circuit);
            out.push(' ');
            out.push_str(flow);
            out.push(' ');
            out.push_str(&r.metrics.deterministic_json());
            out.push('\n');
        }
        write_or_die(&path, &out);
        println!("wrote deterministic metrics (--threads {}) to {path}", cli.threads);
        return;
    }

    println!("tpi-bench — smoke suite at --threads {THREAD_SETTINGS:?}");
    println!(
        "{:<14} {:<10} | {:>10} {:>10} {:>10} | det section",
        "circuit", "flow", "t=1 µs", "t=2 µs", "t=0 µs"
    );
    println!("{}", "-".repeat(78));

    let mut workloads_arr = JsonArray::new();
    let mut all_identical = true;
    for (circuit, flow, n) in workloads() {
        let runs: Vec<Run> =
            THREAD_SETTINGS.iter().map(|&t| run_once(&circuit, flow, &n, t)).collect();
        let det = runs[0].metrics.deterministic_json();
        let identical = runs.iter().all(|r| r.metrics.deterministic_json() == det);
        if !identical {
            all_identical = false;
            eprintln!("{circuit} [{flow}]: deterministic sections DIFFER across thread counts");
        }
        println!(
            "{:<14} {:<10} | {:>10} {:>10} {:>10} | {}",
            circuit,
            flow,
            runs[0].wall_micros,
            runs[1].wall_micros,
            runs[2].wall_micros,
            if identical { "byte-identical" } else { "MISMATCH" },
        );

        let mut w = JsonObject::new();
        w.field_str("circuit", &circuit)
            .field_str("flow", flow)
            .field_object("counters", counter_object(&runs[0].metrics.counters));
        let mut runs_arr = JsonArray::new();
        for r in &runs {
            let mut ro = JsonObject::new();
            ro.field_u64("threads", r.threads as u64)
                .field_u64("wall_micros", r.wall_micros)
                .field_object("phase_micros", phase_micros(&r.metrics))
                .field_object("nd_counters", counter_object(&r.metrics.nd_counters));
            runs_arr.push_object(ro);
        }
        w.field_array("runs", runs_arr);
        workloads_arr.push_object(w);
    }

    if let Some(path) = emit_bench {
        let mut root = JsonObject::new();
        root.field_str("schema", "tpi-bench/v1")
            .field_str("suite", "smoke")
            .field_str("thread_settings", "1,2,0")
            .field_bool("deterministic_sections_identical", all_identical)
            .field_array("workloads", workloads_arr);
        let mut text = root.finish();
        text.push('\n');
        write_or_die(&path, &text);
        println!("wrote bench file to {path}");
    }

    if !all_identical {
        eprintln!("FAIL: the deterministic metrics section must not depend on --threads");
        exit(1);
    }
    println!("OK: deterministic sections byte-identical at --threads 1/2/0");
}
