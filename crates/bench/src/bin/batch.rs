//! `tpi-batch`: drive the `tpi-serve` job service over a directory of
//! BLIF workloads.
//!
//! Run mode (default):
//!
//! ```text
//! tpi-batch [--threads N] [--cache-dir DIR] [--out DIR] [--deadline-ms M] WORKLOAD_DIR
//! ```
//!
//! Every `*.blif` file in `WORKLOAD_DIR` (sorted by name) is submitted
//! twice — once through the full-scan flow (§III) and once through
//! TPTIME partial scan (§IV) — and executed concurrently by the service.
//! One JSON summary per job is printed to stdout (and written to
//! `--out DIR` as `<file>.<flow>.json` when given). With `--cache-dir`,
//! results are content-addressed on disk: a second run over the same
//! directory is served from cache, byte-identically, at a fraction of
//! the wall clock — that cold/warm comparison is the point of the tool.
//!
//! Network mode (`--jobs N`): instead of calling the service
//! in-process, `tpi-batch` starts an in-process `tpi-netd`, then
//! submits every job through `N` concurrent `tpi-net/v2` sessions
//! (one request in flight per session; add `--pipeline` to submit
//! every request up front and collect completions out of order with
//! `wait_any`; add `--wire-v1` for the legacy one-connection-per-call
//! v1 client instead). The server's caps are deliberately set *below*
//! the offered load (`max(1, ⌈N/2⌉)` v1 connections and v2 in-flight
//! requests), so every variant exercises its `Busy` → seeded-backoff
//! retry loop — the same backpressure path a saturated production
//! server would take. Results and summary lines are the same in every
//! mode; so are the payload bytes (that is the protocol's contract).
//!
//! Gateway mode (`--gateway N`): starts `N` in-process `tpi-netd`
//! backends (each with its own service; `--cache-dir DIR` gives each a
//! `DIR/b<i>` subdirectory) behind an in-process `tpi-gatewayd`, and
//! submits every job through the gateway. Jobs route by their
//! content-addressed cache key over the consistent-hash ring, so a
//! warm rerun hits the backend that computed each result. With
//! `--kill-one` (requires `N ≥ 2`), backend 0 is shut down after the
//! first report lands, forcing the failover path mid-batch; the report
//! set must come out identical anyway. A `gateway-metrics` line with
//! the `tpi-gateway-metrics/v1` JSON is printed after the batch.
//!
//! Generate mode (to make a workload directory in the first place):
//!
//! ```text
//! tpi-batch --generate WORKLOAD_DIR [--small]
//! ```
//!
//! writes the embedded `s27` plus the synthetic suite (`--small`: the
//! two-circuit smoke suite) as BLIF files, and the same circuits in
//! `.bench` syntax under a `bench/` subdirectory (the batch drive reads
//! the `.blif` set; the `.bench` set feeds
//! `tpi_workloads::iscas::load_bench_dir` consumers like `tpi-soak
//! --bench-dir` and lints through `tpi-lint`'s `.bench` path).

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpi_bench::{ArgCursor, Cli};
use tpi_core::PartialScanMethod;
use tpi_gateway::{Gateway, GatewayConfig, GatewayHandler};
use tpi_net::{
    Client, ClientConfig, Connection, NetServer, Pending, ServerConfig, ServerHandle, WireRequest,
    WireVersion,
};
use tpi_netlist::{write_bench, write_blif};
use tpi_serve::{JobService, JobSpec, JobStatus, MetricsSnapshot, NetlistSource, ServiceConfig};
use tpi_workloads::{generate, iscas, smoke_suite, suite};

fn usage() -> ! {
    eprintln!(
        "usage: tpi-batch [--threads N] [--jobs N [--pipeline | --wire-v1]] \
         [--gateway N [--kill-one]] \
         [--cache-dir DIR] [--out DIR] [--deadline-ms M] DIR"
    );
    eprintln!("       tpi-batch --generate DIR [--small]");
    exit(2);
}

/// How the network modes put requests on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetMode {
    /// Legacy v1 client: one connection per call, strict
    /// request/response (the byte-identity reference).
    V1,
    /// One persistent v2 session per worker, one request in flight at
    /// a time.
    V2,
    /// One persistent v2 session per worker, every request submitted
    /// up front, completions collected with `wait_any` in whatever
    /// order the server finishes them.
    V2Pipelined,
}

fn main() {
    let cli = Cli::parse();
    let threads = cli.threads;
    let mut cache_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut deadline: Option<Duration> = None;
    let mut generate_dir: Option<PathBuf> = None;
    let mut small = false;
    let mut jobs: Option<usize> = None;
    let mut mode = NetMode::V2;
    let mut gateway_backends: Option<usize> = None;
    let mut kill_one = false;
    let mut workload_dir: Option<PathBuf> = None;

    let mut it = ArgCursor::new(cli.args);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--cache-dir" => cache_dir = Some(PathBuf::from(it.value("--cache-dir"))),
            "--jobs" => {
                let n: usize = it.parsed_value("--jobs", "a positive integer");
                if n == 0 {
                    eprintln!("--jobs must be at least 1");
                    exit(2);
                }
                jobs = Some(n);
            }
            "--gateway" => {
                let n: usize = it.parsed_value("--gateway", "a positive integer");
                if n == 0 {
                    eprintln!("--gateway needs at least 1 backend");
                    exit(2);
                }
                gateway_backends = Some(n);
            }
            "--kill-one" => kill_one = true,
            "--pipeline" => mode = NetMode::V2Pipelined,
            "--wire-v1" => mode = NetMode::V1,
            "--out" => out_dir = Some(PathBuf::from(it.value("--out"))),
            "--deadline-ms" => {
                let ms: u64 = it.parsed_value("--deadline-ms", "a non-negative integer");
                deadline = Some(Duration::from_millis(ms));
            }
            "--generate" => generate_dir = Some(PathBuf::from(it.value("--generate"))),
            "--small" => small = true,
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a:?}");
                usage();
            }
            _ => {
                if workload_dir.replace(PathBuf::from(a)).is_some() {
                    eprintln!("exactly one workload directory expected");
                    usage();
                }
            }
        }
    }

    if let Some(dir) = generate_dir {
        generate_workloads(&dir, small);
        return;
    }
    if kill_one && gateway_backends.is_none_or(|n| n < 2) {
        eprintln!("--kill-one needs --gateway N with N >= 2 (someone must survive)");
        exit(2);
    }
    let Some(dir) = workload_dir else { usage() };

    let files = {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "blif"))
                .collect(),
            Err(e) => {
                eprintln!("cannot read {}: {e}", dir.display());
                exit(2);
            }
        };
        files.sort();
        files
    };
    if files.is_empty() {
        eprintln!("no .blif files in {}", dir.display());
        exit(2);
    }

    if let Some(out) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(out) {
            eprintln!("cannot create {}: {e}", out.display());
            exit(2);
        }
    }

    // Gateway mode builds one service *per backend*; the other modes
    // share this single one.
    let service: Option<Arc<JobService>> = match gateway_backends {
        Some(_) => None,
        None => Some(Arc::new(JobService::new(ServiceConfig {
            threads,
            cache_dir: cache_dir.clone(),
            default_deadline: deadline,
            ..ServiceConfig::default()
        }))),
    };
    let connections = jobs.unwrap_or(4);
    let mode_label = match mode {
        NetMode::V1 => " [wire v1]",
        NetMode::V2 => "",
        NetMode::V2Pipelined => " [pipelined]",
    };
    match (gateway_backends, jobs, &service) {
        (Some(b), _, _) => println!(
            "tpi-batch: {} files x 2 flows over {connections} connection(s){mode_label} to an \
             in-process gateway fronting {b} backend(s){}",
            files.len(),
            if kill_one { ", killing backend 0 mid-batch" } else { "" }
        ),
        (None, Some(n), Some(service)) => println!(
            "tpi-batch: {} files x 2 flows over {n} connection(s){mode_label} to an in-process \
             tpi-netd ({} worker(s))",
            files.len(),
            service.workers()
        ),
        (None, _, Some(service)) => {
            println!(
                "tpi-batch: {} files x 2 flows on {} worker(s)",
                files.len(),
                service.workers()
            )
        }
        (None, _, None) => unreachable!("non-gateway modes build the shared service"),
    }

    let t0 = Instant::now();
    let mut texts = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(2);
            }
        };
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("workload").to_string();
        texts.push(text.clone());
        names.push((stem.clone(), "full-scan"));
        texts.push(text);
        names.push((stem, "tptime"));
    }

    let (rows, m) = match (gateway_backends, &service) {
        (Some(b), _) => {
            run_over_gateway(texts, deadline, threads, &cache_dir, b, connections, kill_one, mode)
        }
        (None, Some(service)) => {
            let rows = match jobs {
                Some(n) => run_over_network(service, texts, deadline, n, mode),
                None => run_in_process(service, texts),
            };
            let m = service.metrics();
            (rows, m)
        }
        (None, None) => unreachable!("non-gateway modes build the shared service"),
    };
    let total = t0.elapsed();

    let mut failures = 0usize;
    for ((stem, flow), r) in names.iter().zip(&rows) {
        println!(
            "{stem:<14} {flow:<9} {:<9} cache={:<6} verified={} key={} wall={:.1}ms",
            r.status,
            r.cache,
            if r.verified { "yes" } else { "no " },
            r.key,
            r.wall_ms,
        );
        for d in &r.diagnostics {
            eprintln!("  {d}");
        }
        match (&r.failure, &r.payload) {
            (None, Some(payload)) => {
                if let Some(out) = &out_dir {
                    let file = out.join(format!("{stem}.{flow}.json"));
                    if let Err(e) = std::fs::write(&file, payload.as_bytes()) {
                        eprintln!("cannot write {}: {e}", file.display());
                        exit(2);
                    }
                }
            }
            (Some(msg), _) => {
                eprintln!("  {stem} {flow}: {msg}");
                failures += 1;
            }
            (None, None) => failures += 1,
        }
    }

    println!(
        "done in {:.2}s: {} completed ({} cold, {} memory, {} disk), {} timed out, \
         {} canceled, {} failed",
        total.as_secs_f64(),
        m.completed,
        m.cache_misses,
        m.cache_hits_memory,
        m.cache_hits_disk,
        m.timed_out,
        m.canceled,
        m.failed,
    );
    if failures > 0 {
        exit(1);
    }
}

/// One job's outcome, normalized across the in-process and network
/// paths so the reporting loop cannot drift between them.
struct Row {
    status: String,
    /// `Some(reason)` for a failed job (including transport errors).
    failure: Option<String>,
    cache: String,
    verified: bool,
    key: String,
    wall_ms: f64,
    payload: Option<String>,
    diagnostics: Vec<String>,
}

impl Row {
    /// A row from a report that crossed the wire.
    fn from_wire(r: tpi_net::WireReport) -> Row {
        Row {
            status: r.status.label().to_string(),
            failure: match &r.status {
                JobStatus::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
            cache: r.cache.label().to_string(),
            verified: r.verified,
            key: r.key.map(|k| format!("{k:016x}")).unwrap_or_else(|| "-".repeat(16)),
            wall_ms: r.wall_micros as f64 / 1e3,
            payload: r.payload,
            diagnostics: r.diagnostics,
        }
    }

    /// A row for a submission that never produced a report.
    fn from_net_error(e: &tpi_net::ClientError) -> Row {
        Row {
            status: "net-error".to_string(),
            failure: Some(e.to_string()),
            cache: "-".to_string(),
            verified: false,
            key: "-".repeat(16),
            wall_ms: 0.0,
            payload: None,
            diagnostics: Vec::new(),
        }
    }
}

/// Even indices run full scan, odd run TPTIME — the order
/// `main` builds `texts`/`names` in.
fn flow_for(index: usize) -> Option<PartialScanMethod> {
    if index.is_multiple_of(2) {
        None
    } else {
        Some(PartialScanMethod::TpTime)
    }
}

fn run_in_process(service: &JobService, texts: Vec<String>) -> Vec<Row> {
    let specs = texts
        .into_iter()
        .enumerate()
        .map(|(i, text)| match flow_for(i) {
            None => JobSpec::full_scan(NetlistSource::Blif(text)),
            Some(m) => JobSpec::partial(NetlistSource::Blif(text), m),
        })
        .collect();
    service
        .run_batch(specs)
        .into_iter()
        .map(|r| Row {
            status: r.status.label().to_string(),
            failure: match &r.status {
                JobStatus::Failed(msg) => Some(msg.clone()),
                _ => None,
            },
            cache: r.cache.label().to_string(),
            verified: r.verified,
            key: r.key.map(|k| k.to_string()).unwrap_or_else(|| "-".repeat(16)),
            wall_ms: r.wall.as_secs_f64() * 1e3,
            payload: r.payload.as_deref().map(str::to_string),
            diagnostics: r.diagnostics.iter().map(|d| d.render_text()).collect(),
        })
        .collect()
}

/// Submits every job through `jobs` concurrent sessions (or v1
/// clients) against an in-process `tpi-netd`. The server's caps are
/// `max(1, ⌈jobs/2⌉)` — v1 connections and v2 in-flight requests
/// alike — so with more than one worker the mode's `Busy` → retry
/// backpressure path genuinely runs.
fn run_over_network(
    service: &Arc<JobService>,
    texts: Vec<String>,
    deadline: Option<Duration>,
    jobs: usize,
    mode: NetMode,
) -> Vec<Row> {
    let cap = jobs.div_ceil(2).max(1);
    let server = NetServer::bind(
        ServerConfig { max_connections: cap, max_inflight: cap, ..ServerConfig::default() },
        Arc::clone(service),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start in-process tpi-netd: {e}");
        exit(2);
    });
    let addr = server.local_addr().to_string();
    let (handle, server_thread) = server.spawn();

    let rows = drive_clients(&addr, build_requests(texts, deadline), jobs, None, mode);
    handle.shutdown();
    let _ = server_thread.join();
    rows
}

/// Starts `backends` in-process `tpi-netd`s behind an in-process
/// gateway, submits every job through the gateway over `jobs` client
/// connections, and returns the rows plus the backend services'
/// aggregated metrics. With `kill_one`, backend 0 is shut down right
/// after the first report lands, so the rest of the batch runs the
/// failover path.
#[allow(clippy::too_many_arguments)]
fn run_over_gateway(
    texts: Vec<String>,
    deadline: Option<Duration>,
    threads: usize,
    cache_dir: &Option<PathBuf>,
    backends: usize,
    jobs: usize,
    kill_one: bool,
    mode: NetMode,
) -> (Vec<Row>, MetricsSnapshot) {
    let mut services = Vec::new();
    let mut handles = Vec::new();
    let mut threads_joined = Vec::new();
    let mut addrs = Vec::new();
    for b in 0..backends {
        let service = Arc::new(JobService::new(ServiceConfig {
            threads,
            cache_dir: cache_dir.as_ref().map(|d| d.join(format!("b{b}"))),
            default_deadline: deadline,
            ..ServiceConfig::default()
        }));
        let server =
            NetServer::bind(ServerConfig::default(), Arc::clone(&service)).unwrap_or_else(|e| {
                eprintln!("cannot start in-process backend {b}: {e}");
                exit(2);
            });
        addrs.push(server.local_addr().to_string());
        let (handle, join) = server.spawn();
        services.push(service);
        handles.push(handle);
        threads_joined.push(join);
    }

    let gateway =
        Arc::new(Gateway::new(GatewayConfig { backends: addrs, ..GatewayConfig::default() }));
    let gw_cap = jobs.div_ceil(2).max(1);
    let gw_server = NetServer::bind_with(
        ServerConfig { max_connections: gw_cap, max_inflight: gw_cap, ..ServerConfig::default() },
        GatewayHandler::new(Arc::clone(&gateway)),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start in-process gateway: {e}");
        exit(2);
    });
    let gw_addr = gw_server.local_addr().to_string();
    let (gw_handle, gw_thread) = gw_server.spawn();

    let kill = kill_one.then(|| handles[0].clone());
    let rows = drive_clients(&gw_addr, build_requests(texts, deadline), jobs, kill, mode);

    gw_handle.shutdown();
    let _ = gw_thread.join();
    println!("gateway-metrics {}", gateway.metrics_json());

    let mut total = MetricsSnapshot::default();
    for ((service, handle), join) in services.into_iter().zip(handles).zip(threads_joined) {
        handle.shutdown();
        let _ = join.join();
        let m = match Arc::try_unwrap(service) {
            Ok(service) => service.shutdown(),
            Err(service) => service.metrics(),
        };
        total.submitted += m.submitted;
        total.completed += m.completed;
        total.cache_hits_memory += m.cache_hits_memory;
        total.cache_hits_disk += m.cache_hits_disk;
        total.cache_misses += m.cache_misses;
        total.timed_out += m.timed_out;
        total.canceled += m.canceled;
        total.failed += m.failed;
        total.peer_seeds += m.peer_seeds;
    }
    (rows, total)
}

/// Builds the wire requests in `main`'s `texts` order.
fn build_requests(texts: Vec<String>, deadline: Option<Duration>) -> Vec<WireRequest> {
    texts
        .into_iter()
        .enumerate()
        .map(|(i, text)| {
            let mut req = match flow_for(i) {
                None => WireRequest::full_scan(text),
                Some(m) => WireRequest::partial(text, m),
            };
            if let Some(d) = deadline {
                req = req.with_deadline(d);
            }
            req
        })
        .collect()
}

/// Pulls requests off a shared index and submits them to `addr` over
/// `jobs` concurrent workers; rows come back in request order
/// regardless of completion order. When `kill` carries a server
/// handle, it is shut down once, right after the first report lands.
fn drive_clients(
    addr: &str,
    requests: Vec<WireRequest>,
    jobs: usize,
    kill: Option<ServerHandle>,
    mode: NetMode,
) -> Vec<Row> {
    let total = requests.len();
    let requests = Arc::new(requests);
    let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let rows = Arc::new(std::sync::Mutex::new(Vec::new()));
    let kill = Arc::new(std::sync::Mutex::new(kill));

    let workers: Vec<_> = (0..jobs)
        .map(|w| {
            let (requests, next, rows, kill) =
                (Arc::clone(&requests), Arc::clone(&next), Arc::clone(&rows), Arc::clone(&kill));
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let config = ClientConfig {
                    seed: w as u64 + 1,
                    wire: match mode {
                        NetMode::V1 => WireVersion::V1,
                        _ => WireVersion::V2,
                    },
                    ..ClientConfig::default()
                };
                let push = |i: usize, row: Row| {
                    rows.lock().expect("rows lock never poisoned").push((i, row));
                    if let Some(victim) = kill.lock().expect("kill lock never poisoned").take() {
                        victim.shutdown();
                    }
                };
                match mode {
                    NetMode::V1 => drive_v1(&addr, config, &requests, &next, push),
                    NetMode::V2 => drive_sequential(&addr, config, &requests, &next, push),
                    NetMode::V2Pipelined => drive_pipelined(&addr, config, &requests, &next, push),
                }
            })
        })
        .collect();
    for wkr in workers {
        let _ = wkr.join();
    }

    let mut indexed = Arc::try_unwrap(rows)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .expect("rows lock never poisoned");
    assert_eq!(indexed.len(), total, "every request must produce exactly one row");
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, row)| row).collect()
}

/// Claims the next request index, or `None` when the batch is drained.
fn claim(next: &std::sync::atomic::AtomicUsize, total: usize) -> Option<usize> {
    let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    (i < total).then_some(i)
}

/// The legacy path: one `tpi-net/v1` connection per call via the
/// deprecated one-shot client — kept runnable so the CI byte-identity
/// gate can diff its outputs against the v2 sessions.
fn drive_v1(
    addr: &str,
    config: ClientConfig,
    requests: &[WireRequest],
    next: &std::sync::atomic::AtomicUsize,
    push: impl Fn(usize, Row),
) {
    let client = Client::with_config(addr.to_string(), config);
    while let Some(i) = claim(next, requests.len()) {
        #[allow(deprecated)]
        let row = match client.submit(&requests[i]) {
            Ok(r) => Row::from_wire(r),
            Err(e) => Row::from_net_error(&e),
        };
        push(i, row);
    }
}

/// One persistent v2 session, one request in flight at a time.
fn drive_sequential(
    addr: &str,
    config: ClientConfig,
    requests: &[WireRequest],
    next: &std::sync::atomic::AtomicUsize,
    push: impl Fn(usize, Row),
) {
    let conn = match Connection::open_with(addr, config) {
        Ok(c) => c,
        Err(e) => {
            // No session, no reports: every request this worker would
            // have claimed fails with the connect error.
            while let Some(i) = claim(next, requests.len()) {
                push(i, Row::from_net_error(&e));
            }
            return;
        }
    };
    while let Some(i) = claim(next, requests.len()) {
        let row = match conn.submit(&requests[i]).and_then(|ticket| conn.wait(ticket)) {
            Ok(r) => Row::from_wire(r),
            Err(e) => Row::from_net_error(&e),
        };
        push(i, row);
    }
}

/// One persistent v2 session, every claimed request submitted before
/// any report is collected; `wait_any` then drains completions in
/// whatever order the server finishes them.
fn drive_pipelined(
    addr: &str,
    config: ClientConfig,
    requests: &[WireRequest],
    next: &std::sync::atomic::AtomicUsize,
    push: impl Fn(usize, Row),
) {
    let conn = match Connection::open_with(addr, config) {
        Ok(c) => c,
        Err(e) => {
            while let Some(i) = claim(next, requests.len()) {
                push(i, Row::from_net_error(&e));
            }
            return;
        }
    };
    // Submit phase: claim and send everything, remembering which
    // request index each ticket redeems.
    let mut tickets: Vec<Pending> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    while let Some(i) = claim(next, requests.len()) {
        match conn.submit(&requests[i]) {
            Ok(ticket) => {
                index_of.insert(ticket.id(), i);
                tickets.push(ticket);
            }
            Err(e) => push(i, Row::from_net_error(&e)),
        }
    }
    // Collect phase: completion order, not submission order.
    while !tickets.is_empty() {
        match conn.wait_any(&mut tickets) {
            Ok((ticket, report)) => {
                let i = index_of.remove(&ticket.id()).expect("every ticket was indexed");
                push(i, Row::from_wire(report));
            }
            Err(e) => {
                // A wait error (lost connection, spent Busy budget) is
                // not attributable to one ticket; everything still
                // outstanding failed with it.
                for ticket in tickets.drain(..) {
                    let i = index_of.remove(&ticket.id()).expect("every ticket was indexed");
                    push(i, Row::from_net_error(&e));
                }
            }
        }
    }
}

/// Writes the workload directory: `s27` plus the chosen synthetic suite.
fn generate_workloads(dir: &PathBuf, small: bool) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        exit(2);
    }
    let bench_dir = dir.join("bench");
    if let Err(e) = std::fs::create_dir_all(&bench_dir) {
        eprintln!("cannot create {}: {e}", bench_dir.display());
        exit(2);
    }
    let mut netlists = vec![iscas::s27()];
    let specs = if small { smoke_suite() } else { suite() };
    netlists.extend(specs.iter().map(generate));
    for n in &netlists {
        let path = dir.join(format!("{}.blif", n.name()));
        if let Err(e) = std::fs::write(&path, write_blif(n)) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(2);
        }
        println!("wrote {}", path.display());
        let bench_path = bench_dir.join(format!("{}.bench", n.name()));
        if let Err(e) = std::fs::write(&bench_path, write_bench(n)) {
            eprintln!("cannot write {}: {e}", bench_path.display());
            exit(2);
        }
        println!("wrote {}", bench_path.display());
    }
}
