//! `tpi-batch`: drive the `tpi-serve` job service over a directory of
//! BLIF workloads.
//!
//! Run mode (default):
//!
//! ```text
//! tpi-batch [--threads N] [--cache-dir DIR] [--out DIR] [--deadline-ms M] WORKLOAD_DIR
//! ```
//!
//! Every `*.blif` file in `WORKLOAD_DIR` (sorted by name) is submitted
//! twice — once through the full-scan flow (§III) and once through
//! TPTIME partial scan (§IV) — and executed concurrently by the service.
//! One JSON summary per job is printed to stdout (and written to
//! `--out DIR` as `<file>.<flow>.json` when given). With `--cache-dir`,
//! results are content-addressed on disk: a second run over the same
//! directory is served from cache, byte-identically, at a fraction of
//! the wall clock — that cold/warm comparison is the point of the tool.
//!
//! Generate mode (to make a workload directory in the first place):
//!
//! ```text
//! tpi-batch --generate WORKLOAD_DIR [--small]
//! ```
//!
//! writes the embedded `s27` plus the synthetic suite (`--small`: the
//! two-circuit smoke suite) as BLIF files.

use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};
use tpi_bench::{ArgCursor, Cli};
use tpi_core::PartialScanMethod;
use tpi_netlist::write_blif;
use tpi_serve::{JobService, JobSpec, JobStatus, NetlistSource, ServiceConfig};
use tpi_workloads::{generate, iscas, smoke_suite, suite};

fn usage() -> ! {
    eprintln!("usage: tpi-batch [--threads N] [--cache-dir DIR] [--out DIR] [--deadline-ms M] DIR");
    eprintln!("       tpi-batch --generate DIR [--small]");
    exit(2);
}

fn main() {
    let cli = Cli::parse();
    let threads = cli.threads;
    let mut cache_dir: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut deadline: Option<Duration> = None;
    let mut generate_dir: Option<PathBuf> = None;
    let mut small = false;
    let mut workload_dir: Option<PathBuf> = None;

    let mut it = ArgCursor::new(cli.args);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--cache-dir" => cache_dir = Some(PathBuf::from(it.value("--cache-dir"))),
            "--out" => out_dir = Some(PathBuf::from(it.value("--out"))),
            "--deadline-ms" => {
                let ms: u64 = it.parsed_value("--deadline-ms", "a non-negative integer");
                deadline = Some(Duration::from_millis(ms));
            }
            "--generate" => generate_dir = Some(PathBuf::from(it.value("--generate"))),
            "--small" => small = true,
            _ if a.starts_with('-') => {
                eprintln!("unknown flag {a:?}");
                usage();
            }
            _ => {
                if workload_dir.replace(PathBuf::from(a)).is_some() {
                    eprintln!("exactly one workload directory expected");
                    usage();
                }
            }
        }
    }

    if let Some(dir) = generate_dir {
        generate_workloads(&dir, small);
        return;
    }
    let Some(dir) = workload_dir else { usage() };

    let files = {
        let mut files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "blif"))
                .collect(),
            Err(e) => {
                eprintln!("cannot read {}: {e}", dir.display());
                exit(2);
            }
        };
        files.sort();
        files
    };
    if files.is_empty() {
        eprintln!("no .blif files in {}", dir.display());
        exit(2);
    }

    if let Some(out) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(out) {
            eprintln!("cannot create {}: {e}", out.display());
            exit(2);
        }
    }

    let service = JobService::new(ServiceConfig {
        threads,
        cache_dir,
        default_deadline: deadline,
        ..ServiceConfig::default()
    });
    println!("tpi-batch: {} files x 2 flows on {} worker(s)", files.len(), service.workers());

    let t0 = Instant::now();
    let mut specs = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                exit(2);
            }
        };
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("workload").to_string();
        specs.push(JobSpec::full_scan(NetlistSource::Blif(text.clone())));
        names.push((stem.clone(), "full-scan"));
        specs.push(JobSpec::partial(NetlistSource::Blif(text), PartialScanMethod::TpTime));
        names.push((stem, "tptime"));
    }
    let reports = service.run_batch(specs);
    let total = t0.elapsed();

    let mut failures = 0usize;
    for ((stem, flow), r) in names.iter().zip(&reports) {
        let key = r.key.map(|k| k.to_string()).unwrap_or_else(|| "-".repeat(16));
        println!(
            "{stem:<14} {flow:<9} {:<9} cache={:<6} verified={} key={key} wall={:.1}ms",
            r.status.label(),
            r.cache.label(),
            if r.verified { "yes" } else { "no " },
            r.wall.as_secs_f64() * 1e3,
        );
        for d in &r.diagnostics {
            eprintln!("  {}", d.render_text());
        }
        match (&r.status, &r.payload) {
            (JobStatus::Completed, Some(payload)) => {
                if let Some(out) = &out_dir {
                    let file = out.join(format!("{stem}.{flow}.json"));
                    if let Err(e) = std::fs::write(&file, payload.as_bytes()) {
                        eprintln!("cannot write {}: {e}", file.display());
                        exit(2);
                    }
                }
            }
            (JobStatus::Failed(msg), _) => {
                eprintln!("  {stem} {flow}: {msg}");
                failures += 1;
            }
            _ => failures += 1,
        }
    }

    let m = service.metrics();
    println!(
        "done in {:.2}s: {} completed ({} cold, {} memory, {} disk), {} timed out, \
         {} canceled, {} failed",
        total.as_secs_f64(),
        m.completed,
        m.cache_misses,
        m.cache_hits_memory,
        m.cache_hits_disk,
        m.timed_out,
        m.canceled,
        m.failed,
    );
    if failures > 0 {
        exit(1);
    }
}

/// Writes the workload directory: `s27` plus the chosen synthetic suite.
fn generate_workloads(dir: &PathBuf, small: bool) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        exit(2);
    }
    let mut netlists = vec![iscas::s27()];
    let specs = if small { smoke_suite() } else { suite() };
    netlists.extend(specs.iter().map(generate));
    for n in &netlists {
        let path = dir.join(format!("{}.blif", n.name()));
        if let Err(e) = std::fs::write(&path, write_blif(n)) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(2);
        }
        println!("wrote {}", path.display());
    }
}
