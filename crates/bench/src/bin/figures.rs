//! Replays the paper's illustrative figures (1, 2, 3, 4, 6, 7) on the
//! transliterated circuits from `tpi-workloads`, printing what the paper
//! claims and what this implementation does.
//!
//! Usage: `cargo run --release -p tpi-bench --bin figures [--threads N] [fig1|fig2|...]`
//! (`--threads 0` = all hardware threads, default 1; the replayed flows
//! produce identical output at every setting.)

use tpi_bench::Cli;
use tpi_core::flow::FullScanFlow;
use tpi_core::region::Region;
use tpi_core::tpgreed::{TpGreed, TpGreedConfig};
use tpi_core::tptime::{PlanAction, ScanPlanner};
use tpi_core::{assign_inputs, enumerate_paths};
use tpi_netlist::TechLibrary;
use tpi_sim::{Implication, Trit};
use tpi_workloads::figures;

fn main() {
    let cli = Cli::parse();
    let want = |name: &str| cli.selects(name);
    if want("fig1") {
        fig1(cli.threads);
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig4") {
        fig4();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7();
    }
}

fn banner(title: &str, claim: &str) {
    println!("==== {title} ====");
    println!("paper: {claim}");
}

fn fig1(threads: usize) {
    banner(
        "Figure 1",
        "one AND test point at F4's output plus x = 0 turns F1->F2->F3 into a scan chain \
         (conventional scan would need two muxes)",
    );
    let (n, [_x, f1, f2, f3, _f4]) = figures::fig1();
    let (outcome, paths) = TpGreed::new(&n, TpGreedConfig::default()).run_with_paths();
    let ia = assign_inputs(&n, &paths, &outcome);
    println!(
        "ours: {} test points chosen, {} free via primary inputs, {} scan paths:",
        outcome.test_points.len(),
        ia.free.len(),
        outcome.scan_paths.len()
    );
    for &id in &outcome.scan_paths {
        let p = paths.path(id);
        println!("  scan path {} -> {}", n.gate_name(p.from), n.gate_name(p.to));
    }
    let ends: Vec<_> = outcome.scan_path_endpoints(&paths);
    assert!(ends.contains(&(f1, f2)) && ends.contains(&(f2, f3)));
    let r = FullScanFlow::default()
        .run_with(&n, &tpi_core::FlowOptions::new().with_threads(threads))
        .expect("figure 1 flow succeeds");
    println!(
        "full flow: chain of {} FFs, flush {}",
        r.chain.len(),
        if r.flush.passed() { "PASS" } else { "FAIL" }
    );
    println!();
}

fn fig2() {
    banner(
        "Figure 2",
        "primary-input values can set up one of the two desired test-point constants for \
         free (a = 0 gives t1 = 0); the conflicting t2 = 1 still needs a gate",
    );
    let (n, [a, _b, _c, t1, t2]) = figures::fig2();
    let (outcome, paths) = TpGreed::new(&n, TpGreedConfig::default()).run_with_paths();
    let ia = assign_inputs(&n, &paths, &outcome);
    println!(
        "ours: B = {} desired constants at {{{}}}, free C = {}, physical = {}",
        outcome.test_points.len(),
        outcome
            .test_points
            .iter()
            .map(|&(g, v)| format!("{} = {}", n.gate_name(g), v))
            .collect::<Vec<_>>()
            .join(", "),
        ia.free.len(),
        ia.physical.len()
    );
    for &(pi, v) in &ia.pi_values {
        println!("  primary input {} held at {}", n.gate_name(pi), v);
    }
    let _ = (a, t1, t2);
    println!();
}

fn fig3() {
    banner(
        "Figure 3",
        "a mux directly at F2 would stretch the critical path; test points at a and b \
         (inducing c = 0) sensitize F1 -> g1 -> g2 -> F2 with zero degradation",
    );
    let (n, [_f1, f2, _a, _b, _c]) = figures::fig3();
    let planner = ScanPlanner::new(n.clone(), TechLibrary::paper());
    println!("ours: conventional mux fits directly at F2? {}", planner.mux_fits_directly(f2));
    let plan = planner.plan_zero_degradation(f2).expect("figure 3 has a zero-cost route");
    println!("zero-degradation plan (area {:.1}):", plan.area);
    for act in &plan.actions {
        match *act {
            PlanAction::InsertMux { at } => println!("  scan MUX at net {}", n.gate_name(at)),
            PlanAction::InsertAnd { at } => println!("  AND test point at net {}", n.gate_name(at)),
            PlanAction::InsertOr { at } => println!("  OR test point at net {}", n.gate_name(at)),
            PlanAction::AssignPi { pi, value } => {
                println!("  hold primary input {} = {}", n.gate_name(pi), value)
            }
        }
    }
    let mut committed = ScanPlanner::new(n, TechLibrary::paper());
    let plan = committed.plan_zero_degradation(f2).expect("still plannable");
    committed.commit(&plan);
    println!(
        "delay before {:.1}, after {:.1} (degradation {:.1}%)",
        committed.baseline_delay(),
        committed.current_delay(),
        (committed.current_delay() - committed.baseline_delay()) / committed.baseline_delay()
            * 100.0
    );
    println!();
}

fn fig4() {
    banner(
        "Figure 4",
        "the scan mux need not sit behind the flip-flop: insert it at connection a \
         (which has slack) and a test point at b; the chain predecessor of F2 may be any FF",
    );
    let (n, [f2, a, _b]) = figures::fig4();
    let planner = ScanPlanner::new(n.clone(), TechLibrary::paper());
    let plan = planner.plan_zero_degradation(f2).expect("figure 4 has a plan");
    let mux_at = plan.actions.iter().find_map(|act| match *act {
        PlanAction::InsertMux { at } => Some(at),
        _ => None,
    });
    println!(
        "ours: mux placed at {} (the figure's a = {}), {} supporting action(s)",
        mux_at.map(|g| n.gate_name(g).to_string()).unwrap_or_default(),
        n.gate_name(a),
        plan.actions.len() - 1
    );
    println!();
}

fn fig6() {
    banner(
        "Figure 6",
        "inserting an OR at a (a = 1) implies the desired constants b = 0, c = 0 and the \
         side-effect constant e = 1; only the desired ones are protected afterwards",
    );
    let (n, [a, b, c, e]) = figures::fig6();
    let mut imp = Implication::new(&n);
    let delta = imp.force(a, Trit::One);
    println!("ours: forcing a = 1 implies:");
    for d in delta {
        let class = if d.net == b || d.net == c || d.net == a { "desired" } else { "side-effect" };
        println!("  {} = {} ({class})", n.gate_name(d.net), d.value);
    }
    assert_eq!(imp.value(e), Trit::One);
    println!();
}

fn fig7() {
    banner(
        "Figure 7",
        "the non-reconvergent fanin region of c contains a, b, d; j and k stay out \
         because their gate g3 reaches c along two paths",
    );
    let (n, [c_net, g1, g3, gd]) = figures::fig7();
    let region = Region::build(&n, c_net);
    println!(
        "ours: path counts to c: g1 = {} (in region), g3 = {} (excluded), d-source = {}",
        region.path_count(g1),
        region.path_count(g3),
        region.path_count(gd)
    );
    println!(
        "region tree gates: {}",
        region
            .tree_gates()
            .iter()
            .map(|&g| n.gate_name(g).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Sanity mirrors of the figure's claims:
    assert!(region.single_path(g1));
    assert!(!region.single_path(g3));
    println!();
    // keep the unused import meaningful
    let _ = enumerate_paths(&n, 4, 1024);
}
