//! Cooperative progress reporting, deadlines and cancellation.
//!
//! A [`Progress`] is shared (via `Arc`) between a caller — typically the
//! `tpi-serve` job service — and a running flow. The flow checks
//! [`Progress::checkpoint`] at iteration boundaries (greedy selection
//! rounds, cycle-breaking rounds) and bails out with [`Canceled`] when
//! the caller canceled the run or its deadline passed. Alongside the
//! token, `Progress` carries the per-phase run counters that replaced
//! the ad-hoc wall-clock timing the flows used to do themselves:
//! callers that want timing measure around the flow call; callers that
//! want to know *what the run did* read [`Progress::snapshot`].
//!
//! Counter determinism: `paths_enumerated`, `candidates_evaluated`,
//! `test_points_placed` and `rounds` are pure functions of the input
//! netlist and configuration — identical at every `threads` setting (the
//! flows increment them by scheduling-independent amounts). The
//! speculative `plans_attempted` counter is the exception: parallel
//! TPTIME planning speculates past the first hit, so its value may grow
//! with the worker count. Result payloads that must be byte-identical
//! across thread counts (the `tpi-serve` cache contract) therefore
//! include only the deterministic counters.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The caller canceled the run explicitly.
    Canceled,
    /// The run's deadline passed.
    DeadlineExceeded,
}

/// Error returned by [`Progress::checkpoint`] and propagated out of the
/// flows' `run_checked` entry points when a run is stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Canceled {
    /// What stopped the run.
    pub kind: CancelKind,
}

impl fmt::Display for Canceled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CancelKind::Canceled => write!(f, "run canceled"),
            CancelKind::DeadlineExceeded => write!(f, "run deadline exceeded"),
        }
    }
}

impl std::error::Error for Canceled {}

/// Shared cancellation token, deadline, and per-phase run counters.
///
/// Cheap to share: every field is atomic, so one instance can be read by
/// a monitoring thread while flow workers increment it.
#[derive(Debug, Default)]
pub struct Progress {
    cancel: AtomicBool,
    deadline: Option<Instant>,
    paths_enumerated: AtomicU64,
    candidates_evaluated: AtomicU64,
    test_points_placed: AtomicU64,
    rounds: AtomicU64,
    plans_attempted: AtomicU64,
}

impl Progress {
    /// A token with no deadline; never fires unless [`Progress::cancel`]
    /// is called.
    pub fn new() -> Self {
        Progress::default()
    }

    /// A token whose [`Progress::checkpoint`] fails once `budget` has
    /// elapsed from *now*.
    pub fn with_deadline(budget: Duration) -> Self {
        Progress::with_deadline_at(Instant::now() + budget)
    }

    /// A token with an absolute deadline.
    pub fn with_deadline_at(at: Instant) -> Self {
        Progress { deadline: Some(at), ..Progress::default() }
    }

    /// Requests cancellation; the next [`Progress::checkpoint`] fails.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True once [`Progress::cancel`] was called.
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Cooperative stop check: flows call this at iteration boundaries.
    ///
    /// # Errors
    /// [`Canceled`] when the token was canceled or the deadline passed.
    pub fn checkpoint(&self) -> Result<(), Canceled> {
        if self.is_canceled() {
            return Err(Canceled { kind: CancelKind::Canceled });
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                return Err(Canceled { kind: CancelKind::DeadlineExceeded });
            }
        }
        Ok(())
    }

    /// Records `n` enumerated FF-to-FF candidate paths.
    pub fn add_paths_enumerated(&self, n: u64) {
        self.paths_enumerated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` candidate gain/plan evaluations.
    pub fn add_candidates_evaluated(&self, n: u64) {
        self.candidates_evaluated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` placed test points (AND/OR insertions, virtual or
    /// physical).
    pub fn add_test_points_placed(&self, n: u64) {
        self.test_points_placed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one selection round (greedy iteration or cycle-breaking
    /// round).
    pub fn add_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` zero-degradation planning attempts (may include
    /// speculative ones; see the module docs on determinism).
    pub fn add_plans_attempted(&self, n: u64) {
        self.plans_attempted.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            paths_enumerated: self.paths_enumerated.load(Ordering::Relaxed),
            candidates_evaluated: self.candidates_evaluated.load(Ordering::Relaxed),
            test_points_placed: self.test_points_placed.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            plans_attempted: self.plans_attempted.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Progress`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// FF-to-FF candidate paths enumerated.
    pub paths_enumerated: u64,
    /// Candidate evaluations (TPGREED gain sweeps plus the deterministic
    /// per-round TPTIME candidate count).
    pub candidates_evaluated: u64,
    /// Test points placed (TPGREED selections plus TPTIME plan inserts).
    pub test_points_placed: u64,
    /// Selection rounds executed.
    pub rounds: u64,
    /// Raw zero-degradation planning attempts, including speculative
    /// ones (thread-count dependent; excluded from cacheable payloads).
    pub plans_attempted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checkpoints() {
        let p = Progress::new();
        assert!(p.checkpoint().is_ok());
        assert!(!p.is_canceled());
    }

    #[test]
    fn cancel_fires_checkpoint() {
        let p = Progress::new();
        p.cancel();
        assert_eq!(p.checkpoint(), Err(Canceled { kind: CancelKind::Canceled }));
    }

    #[test]
    fn expired_deadline_fires_checkpoint() {
        let p = Progress::with_deadline(Duration::ZERO);
        assert_eq!(p.checkpoint(), Err(Canceled { kind: CancelKind::DeadlineExceeded }));
    }

    #[test]
    fn generous_deadline_passes() {
        let p = Progress::with_deadline(Duration::from_secs(3600));
        assert!(p.checkpoint().is_ok());
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let p = Progress::new();
        p.add_paths_enumerated(3);
        p.add_candidates_evaluated(10);
        p.add_candidates_evaluated(5);
        p.add_test_points_placed(2);
        p.add_round();
        p.add_round();
        p.add_plans_attempted(7);
        let s = p.snapshot();
        assert_eq!(s.paths_enumerated, 3);
        assert_eq!(s.candidates_evaluated, 15);
        assert_eq!(s.test_points_placed, 2);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.plans_attempted, 7);
    }

    #[test]
    fn cancellation_error_displays() {
        let c = Canceled { kind: CancelKind::DeadlineExceeded };
        assert!(c.to_string().contains("deadline"));
    }
}
