//! FF-to-FF combinational path enumeration (§III.A).
//!
//! The algorithm builds a sparse matrix `A` where entry `A_ij` is the set
//! of combinational paths from flip-flop `F_i` to flip-flop `F_j`. Since
//! establishing a scan path through a path with many side inputs is
//! costly, only paths with at most `K_bound` side inputs are recorded.

use std::collections::HashMap;
use tpi_netlist::{Conn, GateId, GateKind, Netlist};
pub use tpi_par::Threads;

/// Identifier of a path inside a [`PathSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub(crate) u32);

impl PathId {
    /// Dense index of the path.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One candidate scan path: a combinational path between two flip-flops
/// together with its side inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanPathCandidate {
    /// Source flip-flop (`g_1` in the paper's path `[g_1, ..., g_k]`).
    pub from: GateId,
    /// Destination flip-flop.
    pub to: GateId,
    /// Combinational gates along the path, in order (excluding the FFs).
    pub gates: Vec<GateId>,
    /// Side inputs: connections whose sink lies on the path but whose
    /// source does not.
    pub side_inputs: Vec<Conn>,
    /// Whether a bit shifted along the path arrives complemented.
    pub inverting: bool,
}

impl ScanPathCandidate {
    /// The paper's `|p_k|`: number of side inputs.
    #[inline]
    pub fn side_input_count(&self) -> usize {
        self.side_inputs.len()
    }
}

/// The sparse path matrix `A` of §III.A plus reverse indices used by the
/// greedy insertion loop.
///
/// # Example
///
/// ```
/// use tpi_netlist::{Netlist, GateKind};
/// use tpi_core::paths::enumerate_paths;
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let f1 = n.add_gate(GateKind::Dff, "f1");
/// let x = n.add_input("x");
/// let g = n.add_gate(GateKind::And, "g");
/// n.connect(f1, g)?;
/// n.connect(x, g)?;
/// let f2 = n.add_gate(GateKind::Dff, "f2");
/// n.connect(g, f2)?;
/// n.connect(x, f1)?;
/// let ps = enumerate_paths(&n, 10, usize::MAX);
/// assert_eq!(ps.len(), 1);
/// assert_eq!(ps.path(ps.pair(f1, f2)[0]).side_input_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PathSet {
    paths: Vec<ScanPathCandidate>,
    by_pair: HashMap<(GateId, GateId), Vec<PathId>>,
    /// side-input source net -> paths listing it as a side input
    by_side_source: HashMap<GateId, Vec<PathId>>,
    /// on-path net -> paths running through it
    by_path_net: HashMap<GateId, Vec<PathId>>,
    /// source flip-flop -> paths starting there
    by_from: HashMap<GateId, Vec<PathId>>,
    /// Number of paths pruned by the safety cap.
    truncated: usize,
}

impl PathSet {
    /// Total number of recorded paths.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no path was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of candidate paths dropped by the safety cap (0 in normal
    /// operation; the paper's `K_bound` is the intended limiter).
    #[inline]
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// The path record for `id`.
    #[inline]
    pub fn path(&self, id: PathId) -> &ScanPathCandidate {
        &self.paths[id.index()]
    }

    /// All path ids, in discovery order.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.paths.len() as u32).map(PathId)
    }

    /// Entry `A_ij`: paths from `from` to `to`.
    pub fn pair(&self, from: GateId, to: GateId) -> &[PathId] {
        self.by_pair.get(&(from, to)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Paths that list the net `src` as a side-input source.
    pub fn paths_with_side_source(&self, src: GateId) -> &[PathId] {
        self.by_side_source.get(&src).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Paths that run through the net `g`.
    pub fn paths_through(&self, g: GateId) -> &[PathId] {
        self.by_path_net.get(&g).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(from, to)` pairs with at least one path.
    pub fn pairs(&self) -> impl Iterator<Item = (GateId, GateId)> + '_ {
        self.by_pair.keys().copied()
    }

    /// All `(from, to)` pairs together with their path id lists.
    pub fn pairs_with_ids(&self) -> impl Iterator<Item = (&(GateId, GateId), &Vec<PathId>)> {
        self.by_pair.iter()
    }

    /// Paths originating at flip-flop `ff`.
    pub fn paths_from(&self, ff: GateId) -> &[PathId] {
        self.by_from.get(&ff).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Gate kinds a scan path may ride through: the primitive gates the paper
/// handles (AND, OR, NAND, NOR, inverters) plus buffers. XOR/XNOR/MUX are
/// excluded as path gates (their shift polarity would depend on the side
/// value), but they may appear as side-input *sources*.
fn rideable(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Inv
            | GateKind::Buf
    )
}

/// [`PathId`] is a `u32`: recording more paths than `u32::MAX` would
/// silently wrap the id and corrupt every reverse index, so the cap is
/// clamped here before any enumeration starts.
fn clamp_max_paths(max_paths: usize) -> usize {
    max_paths.min(u32::MAX as usize)
}

/// Paths found by the DFS out of a single source flip-flop, in discovery
/// order. `attempted` counts every completed path, including those beyond
/// the recording cap, so the merged [`PathSet::truncated`] figure is
/// exact.
#[derive(Debug, Default)]
struct FfPaths {
    found: Vec<ScanPathCandidate>,
    attempted: usize,
}

/// Iterative DFS over the fanout cone of one flip-flop.
///
/// This used to be a recursive `explore`; deep combinational chains
/// (tens of thousands of gates between two flip-flops) overflowed the
/// stack, so the recursion is now an explicit frame stack. Each frame
/// remembers how to undo its entry mutations (side inputs pushed, parity
/// flip, on-path mark) when it is popped — the discovery order is
/// identical to the recursive version's.
fn dfs_from(n: &Netlist, from: GateId, k_bound: usize, max_paths: usize) -> FfPaths {
    struct Frame {
        cur: GateId,
        /// Next fanout edge of `cur` to examine.
        edge: usize,
        /// Side inputs pushed when this frame was entered.
        added_sides: usize,
        /// Whether entering this frame flipped the shift polarity.
        flipped: bool,
    }
    let mut out = FfPaths::default();
    let mut gates: Vec<GateId> = Vec::new();
    let mut on_path = vec![false; n.gate_count()];
    let mut side: Vec<Conn> = Vec::new();
    let mut inverting = false;
    let mut stack = vec![Frame { cur: from, edge: 0, added_sides: 0, flipped: false }];
    while let Some(top) = stack.last_mut() {
        let cur = top.cur;
        let fanout = n.fanout(cur);
        if top.edge >= fanout.len() {
            // Frame exhausted: undo its entry mutations (the root frame,
            // the flip-flop itself, pushed none).
            let Frame { added_sides, flipped, .. } = *top;
            stack.pop();
            if !stack.is_empty() {
                if flipped {
                    inverting = !inverting;
                }
                on_path[cur.index()] = false;
                gates.pop();
                side.truncate(side.len() - added_sides);
            }
            continue;
        }
        let (sink, pin) = fanout[top.edge];
        top.edge += 1;
        let kind = n.kind(sink);
        if kind == GateKind::Dff {
            // Direct FF->FF connections are valid (free) paths.
            out.attempted += 1;
            if out.found.len() < max_paths {
                out.found.push(ScanPathCandidate {
                    from,
                    to: sink,
                    gates: gates.clone(),
                    side_inputs: side.clone(),
                    inverting,
                });
            }
            continue;
        }
        if !rideable(kind) || on_path[sink.index()] {
            continue;
        }
        // Entering `sink` via `pin`: the other fanins become side
        // inputs. A "side" whose source lies on the path itself
        // (or is the source flip-flop) carries the shifting data,
        // not a constant — such reconvergent paths cannot be
        // sensitized by test points and are pruned.
        let mut reconverges = false;
        let mut new_sides: Vec<Conn> = Vec::new();
        for (p, &src) in n.fanin(sink).iter().enumerate() {
            if p == pin as usize {
                continue;
            }
            if on_path[src.index()] || src == from {
                reconverges = true;
                break;
            }
            new_sides.push(Conn::new(src, sink, p as u32));
        }
        if reconverges || side.len() + new_sides.len() > k_bound {
            continue;
        }
        let added = new_sides.len();
        side.extend(new_sides);
        gates.push(sink);
        on_path[sink.index()] = true;
        let flipped = kind.inverts();
        if flipped {
            inverting = !inverting;
        }
        stack.push(Frame { cur: sink, edge: 0, added_sides: added, flipped });
    }
    out
}

/// Merges per-flip-flop DFS results into one [`PathSet`], assigning
/// [`PathId`]s in flip-flop order then discovery order — exactly the
/// order the sequential single-loop enumeration produces.
fn merge_ff_paths(jobs: Vec<FfPaths>, max_paths: usize) -> PathSet {
    let mut set = PathSet {
        paths: Vec::new(),
        by_pair: HashMap::new(),
        by_side_source: HashMap::new(),
        by_path_net: HashMap::new(),
        by_from: HashMap::new(),
        truncated: 0,
    };
    for job in jobs {
        set.truncated += job.attempted - job.found.len();
        for cand in job.found {
            if set.paths.len() >= max_paths {
                set.truncated += 1;
                continue;
            }
            let id = PathId(set.paths.len() as u32);
            set.by_pair.entry((cand.from, cand.to)).or_default().push(id);
            set.by_from.entry(cand.from).or_default().push(id);
            for c in &cand.side_inputs {
                let v = set.by_side_source.entry(c.source).or_default();
                if v.last() != Some(&id) {
                    v.push(id);
                }
            }
            for &g in &cand.gates {
                set.by_path_net.entry(g).or_default().push(id);
            }
            set.paths.push(cand);
        }
    }
    set
}

/// Enumerates all FF-to-FF combinational paths with at most `k_bound`
/// side inputs. `max_paths` is a safety cap on the total number of
/// recorded paths (use `usize::MAX` for none — it is clamped to
/// `u32::MAX`, the [`PathId`] capacity); the count of dropped paths is
/// available via [`PathSet::truncated`].
///
/// Complexity is output-sensitive: a DFS from each flip-flop that prunes
/// as soon as the side-input budget is exceeded.
pub fn enumerate_paths(n: &Netlist, k_bound: usize, max_paths: usize) -> PathSet {
    enumerate_paths_with(n, k_bound, max_paths, Threads::new(1))
}

/// Like [`enumerate_paths`] but fans the per-flip-flop DFS jobs across
/// `threads` workers. The result is **byte-identical** to the sequential
/// enumeration: each job records in its own discovery order, jobs are
/// merged in flip-flop order, and the cap + truncation accounting are
/// applied on the merged stream.
pub fn enumerate_paths_with(
    n: &Netlist,
    k_bound: usize,
    max_paths: usize,
    threads: Threads,
) -> PathSet {
    let max_paths = clamp_max_paths(max_paths);
    let ffs = n.dffs();
    let jobs = tpi_par::map_indexed(threads, ffs.len(), &(), |_, i| {
        dfs_from(n, ffs[i], k_bound, max_paths)
    });
    merge_ff_paths(jobs, max_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, Netlist};

    /// f1 -> AND(x) -> NAND(y) -> f2
    fn two_gate_path() -> (Netlist, GateId, GateId) {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let x = n.add_input("x");
        let y = n.add_input("y");
        let g1 = n.add_gate(GateKind::And, "g1");
        n.connect(f1, g1).unwrap();
        n.connect(x, g1).unwrap();
        let g2 = n.add_gate(GateKind::Nand, "g2");
        n.connect(g1, g2).unwrap();
        n.connect(y, g2).unwrap();
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(g2, f2).unwrap();
        n.connect(x, f1).unwrap();
        (n, f1, f2)
    }

    #[test]
    fn side_inputs_and_parity_are_counted() {
        let (n, f1, f2) = two_gate_path();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        assert_eq!(ps.len(), 1);
        let p = ps.path(ps.pair(f1, f2)[0]);
        assert_eq!(p.side_input_count(), 2);
        assert_eq!(p.gates.len(), 2);
        assert!(p.inverting, "one NAND on the path flips polarity");
    }

    #[test]
    fn k_bound_prunes_expensive_paths() {
        let (n, f1, f2) = two_gate_path();
        let ps = enumerate_paths(&n, 1, usize::MAX);
        assert!(ps.pair(f1, f2).is_empty());
        let ps = enumerate_paths(&n, 2, usize::MAX);
        assert_eq!(ps.pair(f1, f2).len(), 1);
    }

    #[test]
    fn direct_ff_to_ff_connection_is_a_free_path() {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(f1, f2).unwrap();
        let d = n.add_input("d");
        n.connect(d, f1).unwrap();
        let ps = enumerate_paths(&n, 0, usize::MAX);
        assert_eq!(ps.len(), 1);
        let p = ps.path(ps.pair(f1, f2)[0]);
        assert_eq!(p.side_input_count(), 0);
        assert!(p.gates.is_empty());
        assert!(!p.inverting);
    }

    #[test]
    fn multiple_parallel_paths_are_all_found() {
        // f1 reaches f2 through two inverters in parallel (merged by OR).
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let i1 = n.add_gate(GateKind::Inv, "i1");
        let i2 = n.add_gate(GateKind::Inv, "i2");
        n.connect(f1, i1).unwrap();
        n.connect(f1, i2).unwrap();
        let or = n.add_gate(GateKind::Or, "or");
        n.connect(i1, or).unwrap();
        n.connect(i2, or).unwrap();
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(or, f2).unwrap();
        let d = n.add_input("d");
        n.connect(d, f1).unwrap();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        assert_eq!(ps.pair(f1, f2).len(), 2);
        for &id in ps.pair(f1, f2) {
            let p = ps.path(id);
            assert_eq!(p.side_input_count(), 1, "the other OR branch is the side input");
            assert!(p.inverting);
        }
    }

    #[test]
    fn xor_blocks_path_but_can_be_side_source() {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Xor, "x");
        n.connect(f1, x).unwrap();
        n.connect(a, x).unwrap();
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(x, f2).unwrap();
        n.connect(a, f1).unwrap();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        assert!(ps.pair(f1, f2).is_empty(), "XOR is not rideable");
    }

    #[test]
    fn max_paths_cap_reports_truncation() {
        let (n, _f1, _f2) = two_gate_path();
        let ps = enumerate_paths(&n, 10, 0);
        assert_eq!(ps.len(), 0);
        assert!(ps.truncated() > 0);
    }

    #[test]
    fn reverse_indices_are_consistent() {
        let (n, f1, f2) = two_gate_path();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        let id = ps.pair(f1, f2)[0];
        let p = ps.path(id);
        for c in &p.side_inputs {
            assert!(ps.paths_with_side_source(c.source).contains(&id));
        }
        for &g in &p.gates {
            assert!(ps.paths_through(g).contains(&id));
        }
    }

    #[test]
    fn reconvergent_side_source_on_path_is_pruned() {
        // f1 -> i1 -> g, where g's other input is f1 itself: the "side"
        // carries the shifting data, so no constant sensitizes it.
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let i1 = n.add_gate(GateKind::Inv, "i1");
        n.connect(f1, i1).unwrap();
        let g = n.add_gate(GateKind::And, "g");
        n.connect(i1, g).unwrap();
        n.connect(f1, g).unwrap();
        let f2 = n.add_gate(GateKind::Dff, "f2");
        n.connect(g, f2).unwrap();
        let d = n.add_input("d");
        n.connect(d, f1).unwrap();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        // The route f1 -> i1 -> g -> f2 is pruned (g's other pin is f1,
        // the path source). The direct route f1 -> g -> f2 survives: its
        // side source i1 is off-path, and a test point at i1 makes it a
        // constant even though i1 is functionally driven by f1.
        for id in ps.ids() {
            let p = ps.path(id);
            for c in &p.side_inputs {
                assert!(!p.gates.contains(&c.source));
                assert_ne!(c.source, p.from);
            }
        }
    }

    #[test]
    fn max_paths_is_clamped_to_path_id_capacity() {
        assert_eq!(clamp_max_paths(usize::MAX), u32::MAX as usize);
        assert_eq!(clamp_max_paths(u32::MAX as usize + 1), u32::MAX as usize);
        assert_eq!(clamp_max_paths(17), 17);
    }

    #[test]
    fn parallel_enumeration_is_byte_identical() {
        // A fanout-heavy circuit with several FFs so the per-FF jobs are
        // non-trivial; compare against the sequential result, including
        // under truncation.
        let mut n = Netlist::new("t");
        let d = n.add_input("d");
        let mut sources = Vec::new();
        for i in 0..5 {
            let f = n.add_gate(GateKind::Dff, format!("src{i}"));
            n.connect(d, f).unwrap();
            sources.push(f);
        }
        for j in 0..4 {
            // Each sink collects one AND per source through a shared OR,
            // giving every (source, sink) pair a distinct path.
            let or = n.add_gate(GateKind::Or, format!("or{j}"));
            for (i, &s) in sources.iter().enumerate() {
                let g = n.add_gate(GateKind::And, format!("g{i}_{j}"));
                n.connect(s, g).unwrap();
                n.connect(d, g).unwrap();
                n.connect(g, or).unwrap();
            }
            let sink = n.add_gate(GateKind::Dff, format!("snk{j}"));
            n.connect(or, sink).unwrap();
        }
        for cap in [usize::MAX, 40, 7, 0] {
            let seq = enumerate_paths(&n, 10, cap);
            for workers in [2, 4] {
                let par = enumerate_paths_with(&n, 10, cap, Threads::new(workers));
                assert_eq!(seq.len(), par.len(), "cap {cap} workers {workers}");
                assert_eq!(seq.truncated(), par.truncated());
                for id in seq.ids() {
                    assert_eq!(seq.path(id), par.path(id), "cap {cap} workers {workers}");
                }
            }
        }
    }

    #[test]
    fn self_loop_paths_are_recorded_for_ff_to_itself() {
        let mut n = Netlist::new("t");
        let f1 = n.add_gate(GateKind::Dff, "f1");
        let i = n.add_gate(GateKind::Inv, "i");
        n.connect(f1, i).unwrap();
        n.connect(i, f1).unwrap();
        let ps = enumerate_paths(&n, 10, usize::MAX);
        // a self path F1 -> F1 exists but is useless for chains; callers
        // filter by pair. It must still be recorded faithfully.
        assert_eq!(ps.pair(f1, f1).len(), 1);
    }
}
