//! Dense (SoA) sweep-side data for TPGREED's inner loops.
//!
//! The greedy gain sweep interrogates the same three structures millions
//! of times per run: *which paths does this net affect* (the reverse
//! path indices), *what is this path's status under a trial implication*
//! (side-input sources and their sensitizing values), and *which dense
//! flip-flop slot does this FF map to* (chain bookkeeping). [`PathSet`]
//! and the `HashMap`-based lookups answer all three correctly but pay a
//! hash + pointer hop per query; [`SweepArena`] flattens them into
//! contiguous CSR arrays built once per [`crate::tpgreed::TpGreed`] run,
//! indexed directly by net index and [`PathId`]. It is pure data — no
//! mutable state — so worker threads share it by reference.

use crate::paths::{PathId, PathSet};
use tpi_netlist::{GateId, Netlist};
use tpi_sim::Trit;

/// Sentinel for "this gate is not a flip-flop" in [`SweepArena::ff_slot`].
const NO_FF: u32 = u32::MAX;

/// Flattened per-run snapshot of the path set and FF numbering. See the
/// module docs.
#[derive(Debug)]
pub(crate) struct SweepArena {
    /// Gate index -> dense FF slot (`NO_FF` for non-FF gates).
    ff_index: Vec<u32>,
    /// Per-path side inputs, CSR: `(source net index, sensitizing value
    /// of the sink gate)`. The sensitizing value is resolved at build
    /// time — it depends only on the sink's kind.
    side_off: Vec<u32>,
    sides: Vec<(u32, Option<Trit>)>,
    /// Per-path on-path gates, CSR.
    gate_off: Vec<u32>,
    gates: Vec<u32>,
    /// Per-path endpoints (net indices).
    from: Vec<u32>,
    to: Vec<u32>,
    /// Net index -> paths listing the net as a side-input source, CSR.
    by_side_off: Vec<u32>,
    by_side: Vec<PathId>,
    /// Net index -> paths running through the net, CSR.
    by_through_off: Vec<u32>,
    by_through: Vec<PathId>,
    /// Net index -> paths originating at the net (a source FF), CSR.
    by_from_off: Vec<u32>,
    by_from: Vec<PathId>,
    /// Net index -> whether *any* of the three reverse lists is
    /// non-empty. The gain sweep walks every changed net of a preview;
    /// on large circuits most changed nets are filler logic no path
    /// touches, so one dense bool read short-circuits three CSR offset
    /// lookups on the hot path.
    path_relevant: Vec<bool>,
    /// Net index -> *pin-level* reverse index, CSR: every role the net
    /// plays in any path, one entry per pin. Unlike the three per-role
    /// lists above this keeps duplicates (a net feeding two side pins of
    /// one path appears twice, with each pin's own sensitizing value),
    /// which is what lets a consumer turn "net changed to `v`" into an
    /// O(1) per-pin status delta instead of re-walking the whole path.
    pin_off: Vec<u32>,
    pins: Vec<PathPin>,
}

/// One entry of the pin-level reverse index: the path and the role the
/// net plays in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PinRole {
    /// The net is a gate on the path: any constant nullifies.
    Through,
    /// The net is the path's source flip-flop: any constant nullifies.
    From,
    /// The net feeds a side pin whose sink sensitizes on this value
    /// (`None` for non-sensitizable sinks, where any constant
    /// nullifies).
    Side(Option<Trit>),
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct PathPin {
    pub path: PathId,
    pub role: PinRole,
}

/// Builds a reverse CSR (net index -> path ids) from a per-path visitor
/// that yields the net indices a path should be listed under. Path ids
/// come out ascending within each net's list.
fn reverse_csr(
    gate_count: usize,
    path_count: usize,
    mut nets_of: impl FnMut(usize, &mut Vec<u32>),
) -> (Vec<u32>, Vec<PathId>) {
    let mut counts = vec![0u32; gate_count + 1];
    let mut scratch = Vec::new();
    for p in 0..path_count {
        scratch.clear();
        nets_of(p, &mut scratch);
        for &net in scratch.iter() {
            counts[net as usize + 1] += 1;
        }
    }
    for i in 0..gate_count {
        counts[i + 1] += counts[i];
    }
    let off = counts.clone();
    let mut cursor = counts;
    let mut items = vec![PathId(0); off[gate_count] as usize];
    for p in 0..path_count {
        scratch.clear();
        nets_of(p, &mut scratch);
        for &net in scratch.iter() {
            items[cursor[net as usize] as usize] = PathId(p as u32);
            cursor[net as usize] += 1;
        }
    }
    (off, items)
}

impl SweepArena {
    pub(crate) fn build(n: &Netlist, paths: &PathSet) -> Self {
        let gate_count = n.gate_count();
        let mut ff_index = vec![NO_FF; gate_count];
        for (slot, ff) in n.dffs().into_iter().enumerate() {
            ff_index[ff.index()] = slot as u32;
        }
        let count = paths.len();
        let mut side_off = Vec::with_capacity(count + 1);
        let mut sides = Vec::new();
        let mut gate_off = Vec::with_capacity(count + 1);
        let mut gates = Vec::new();
        let mut from = Vec::with_capacity(count);
        let mut to = Vec::with_capacity(count);
        side_off.push(0);
        gate_off.push(0);
        for id in paths.ids() {
            let p = paths.path(id);
            for c in &p.side_inputs {
                let sens = n.kind(c.sink).sensitizing_value().map(Trit::from);
                sides.push((c.source.index() as u32, sens));
            }
            side_off.push(sides.len() as u32);
            gates.extend(p.gates.iter().map(|g| g.index() as u32));
            gate_off.push(gates.len() as u32);
            from.push(p.from.index() as u32);
            to.push(p.to.index() as u32);
        }
        let (by_side_off, by_side) = reverse_csr(gate_count, count, |p, out| {
            let lo = side_off[p] as usize;
            let hi = side_off[p + 1] as usize;
            out.extend(sides[lo..hi].iter().map(|&(net, _)| net));
            // A path may list one source twice (two side pins); keep one
            // entry per (net, path) so lookups mirror `PathSet`'s lists
            // after the caller's sort+dedup.
            out.sort_unstable();
            out.dedup();
        });
        let (by_through_off, by_through) = reverse_csr(gate_count, count, |p, out| {
            let lo = gate_off[p] as usize;
            let hi = gate_off[p + 1] as usize;
            out.extend_from_slice(&gates[lo..hi]);
            out.sort_unstable();
            out.dedup();
        });
        let (by_from_off, by_from) = reverse_csr(gate_count, count, |p, out| out.push(from[p]));
        let path_relevant = (0..gate_count)
            .map(|i| {
                by_side_off[i] != by_side_off[i + 1]
                    || by_through_off[i] != by_through_off[i + 1]
                    || by_from_off[i] != by_from_off[i + 1]
            })
            .collect();
        // Pin-level reverse CSR: two-pass count + fill, paths ascending,
        // roles in From/Through/Side order within each path.
        let mut pin_counts = vec![0u32; gate_count + 1];
        for p in 0..count {
            pin_counts[from[p] as usize + 1] += 1;
            for &g in &gates[gate_off[p] as usize..gate_off[p + 1] as usize] {
                pin_counts[g as usize + 1] += 1;
            }
            for &(src, _) in &sides[side_off[p] as usize..side_off[p + 1] as usize] {
                pin_counts[src as usize + 1] += 1;
            }
        }
        for i in 0..gate_count {
            pin_counts[i + 1] += pin_counts[i];
        }
        let pin_off = pin_counts.clone();
        let mut cursor = pin_counts;
        let dummy = PathPin { path: PathId(0), role: PinRole::From };
        let mut pins = vec![dummy; pin_off[gate_count] as usize];
        for p in 0..count {
            let mut place = |net: u32, role: PinRole| {
                pins[cursor[net as usize] as usize] = PathPin { path: PathId(p as u32), role };
                cursor[net as usize] += 1;
            };
            place(from[p], PinRole::From);
            for &g in &gates[gate_off[p] as usize..gate_off[p + 1] as usize] {
                place(g, PinRole::Through);
            }
            for &(src, sens) in &sides[side_off[p] as usize..side_off[p + 1] as usize] {
                place(src, PinRole::Side(sens));
            }
        }
        SweepArena {
            ff_index,
            side_off,
            sides,
            gate_off,
            gates,
            from,
            to,
            by_side_off,
            by_side,
            by_through_off,
            by_through,
            by_from_off,
            by_from,
            path_relevant,
            pin_off,
            pins,
        }
    }

    /// Pin-level reverse index of `net`: every pin of every path the net
    /// feeds, duplicates preserved. See [`PathPin`].
    #[inline]
    pub(crate) fn pins(&self, net: usize) -> &[PathPin] {
        &self.pins[self.pin_off[net] as usize..self.pin_off[net + 1] as usize]
    }

    /// Whether any path lists `net` in a reverse index. `false` means
    /// [`SweepArena::paths_with_side_source`], [`SweepArena::paths_through`]
    /// and [`SweepArena::paths_from`] are all empty for `net`.
    #[inline]
    pub(crate) fn path_relevant(&self, net: GateId) -> bool {
        self.path_relevant[net.index()]
    }

    /// Dense FF slot of `g`, if `g` is a flip-flop.
    #[inline]
    pub(crate) fn ff_slot(&self, g: GateId) -> Option<usize> {
        match self.ff_index[g.index()] {
            NO_FF => None,
            slot => Some(slot as usize),
        }
    }

    /// Source flip-flop of path `id`.
    #[inline]
    pub(crate) fn source_gate(&self, id: PathId) -> GateId {
        GateId::from_index(self.from[id.index()] as usize)
    }

    /// Destination flip-flop of path `id`.
    #[inline]
    pub(crate) fn to_gate(&self, id: PathId) -> GateId {
        GateId::from_index(self.to[id.index()] as usize)
    }

    /// Paths listing `net` as a side-input source.
    #[inline]
    pub(crate) fn paths_with_side_source(&self, net: GateId) -> &[PathId] {
        let i = net.index();
        &self.by_side[self.by_side_off[i] as usize..self.by_side_off[i + 1] as usize]
    }

    /// Paths running through `net`.
    #[inline]
    pub(crate) fn paths_through(&self, net: GateId) -> &[PathId] {
        let i = net.index();
        &self.by_through[self.by_through_off[i] as usize..self.by_through_off[i + 1] as usize]
    }

    /// Paths originating at flip-flop `net`.
    #[inline]
    pub(crate) fn paths_from(&self, net: GateId) -> &[PathId] {
        let i = net.index();
        &self.by_from[self.by_from_off[i] as usize..self.by_from_off[i + 1] as usize]
    }

    /// Status of path `id` under the value assignment `value`:
    /// `(nullified, w)` where `w` counts side inputs still unknown. The
    /// value oracle abstracts over the scalar engine, one lane of the
    /// word-parallel engine, or any other assignment source; the logic is
    /// the single authoritative implementation of the paper's path
    /// bookkeeping (a constant at the source FF or on a path gate blocks
    /// shifting; a non-sensitizing constant on a side input nullifies).
    pub(crate) fn path_status(&self, id: PathId, value: &impl Fn(GateId) -> Trit) -> (bool, u32) {
        let p = id.index();
        if value(self.source_gate(id)).is_known() {
            return (true, 0);
        }
        let (glo, ghi) = (self.gate_off[p] as usize, self.gate_off[p + 1] as usize);
        for &g in &self.gates[glo..ghi] {
            if value(GateId::from_index(g as usize)).is_known() {
                return (true, 0);
            }
        }
        let mut w = 0;
        let (slo, shi) = (self.side_off[p] as usize, self.side_off[p + 1] as usize);
        for &(src, sens) in &self.sides[slo..shi] {
            match value(GateId::from_index(src as usize)) {
                Trit::X => w += 1,
                v if Some(v) == sens => {}
                _ => return (true, 0),
            }
        }
        (false, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use tpi_netlist::NetlistBuilder;
    use tpi_sim::Implication;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("arena");
        b.input("x");
        b.input("d1");
        b.input("d4");
        b.dff("f1", "d1");
        b.dff("f4", "d4");
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "x"]);
        b.dff("f2", "g1");
        b.gate(tpi_netlist::GateKind::And, "g2", &["f2", "f4"]);
        b.dff("f3", "g2");
        b.output("o", "f3");
        b.finish().unwrap()
    }

    /// The arena's reverse indices must list exactly the paths the
    /// `PathSet` hash indices list, and `path_status` must agree with a
    /// straight re-derivation from the path record.
    #[test]
    fn arena_mirrors_pathset_indices() {
        let n = sample();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let arena = SweepArena::build(&n, &paths);
        for g in n.gate_ids() {
            let mut want: Vec<PathId> = paths.paths_with_side_source(g).to_vec();
            want.sort_unstable();
            want.dedup();
            assert_eq!(arena.paths_with_side_source(g), want, "side source {g}");
            let mut want: Vec<PathId> = paths.paths_through(g).to_vec();
            want.sort_unstable();
            want.dedup();
            assert_eq!(arena.paths_through(g), want, "through {g}");
            let mut want: Vec<PathId> = paths.paths_from(g).to_vec();
            want.sort_unstable();
            want.dedup();
            assert_eq!(arena.paths_from(g), want, "from {g}");
        }
        for (slot, ff) in n.dffs().into_iter().enumerate() {
            assert_eq!(arena.ff_slot(ff), Some(slot));
        }
        for id in paths.ids() {
            assert_eq!(arena.source_gate(id), paths.path(id).from);
            assert_eq!(arena.to_gate(id), paths.path(id).to);
        }
    }

    #[test]
    fn path_status_tracks_implication() {
        let n = sample();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let arena = SweepArena::build(&n, &paths);
        let mut imp = Implication::new(&n);
        // Initially every side input is unknown.
        for id in paths.ids() {
            let (nullified, w) = arena.path_status(id, &|g| imp.value(g));
            assert!(!nullified);
            assert_eq!(w as usize, paths.path(id).side_input_count());
        }
        // x = 0 sensitizes the OR side input of f1 -> f2.
        let x = n.find("x").unwrap();
        imp.force(x, Trit::Zero);
        let (f1, f2) = (n.find("f1").unwrap(), n.find("f2").unwrap());
        let id = paths.pair(f1, f2)[0];
        assert_eq!(arena.path_status(id, &|g| imp.value(g)), (false, 0));
    }
}
