//! [`FlowOptions`]: one builder for everything a flow run can carry.
//!
//! Before PR 4 the `threads` / [`Progress`] / deadline plumbing was
//! duplicated across `FullScanFlow`, `PartialScanFlow`, and the job
//! service's `JobSpec` — three slightly different spellings of the same
//! four knobs. `FlowOptions` is the shared spelling: build one, hand it
//! to [`FullScanFlow::run_with`](crate::flow::FullScanFlow::run_with) /
//! [`PartialScanFlow::run_with`](crate::flow::PartialScanFlow::run_with)
//! (or embed it in a `JobSpec`), and the flow resolves it into a
//! concrete progress token, worker count, and metrics recorder.
//!
//! ```
//! use std::time::Duration;
//! use tpi_core::FlowOptions;
//!
//! let opts = FlowOptions::new()
//!     .with_threads(0) // all hardware threads
//!     .with_deadline(Duration::from_secs(30));
//! assert_eq!(opts.threads(), Some(0));
//! ```

use crate::progress::Progress;
use crate::tpgreed::GainModel;
use std::sync::Arc;
use std::time::Duration;
use tpi_obs::Recorder;

/// Options shared by every flow entry point: worker threads, cooperative
/// progress/cancellation, a deadline, and a metrics recorder.
///
/// All knobs are optional; `FlowOptions::default()` reproduces the
/// flows' historical behavior (flow-configured thread count, fresh
/// progress token, no deadline, private recorder).
///
/// # Precedence rules
///
/// * **Threads**: [`FlowOptions::with_threads`] overrides the flow's own
///   (deprecated) thread knob; unset, the flow's configuration applies.
/// * **Progress vs deadline**: an explicit [`FlowOptions::with_progress`]
///   token wins — its own deadline (if any) governs, and
///   [`FlowOptions::with_deadline`] is ignored, because [`Progress`]
///   deadlines are fixed at construction. Without an explicit token, the
///   flow builds a fresh one from the deadline.
#[derive(Debug, Clone, Default)]
pub struct FlowOptions {
    threads: Option<usize>,
    progress: Option<Arc<Progress>>,
    deadline: Option<Duration>,
    metrics: Option<Arc<Recorder>>,
    gain_model: Option<GainModel>,
}

impl FlowOptions {
    /// All defaults: flow-configured threads, no deadline, fresh
    /// progress, private recorder.
    pub fn new() -> Self {
        FlowOptions::default()
    }

    /// Sets the worker-thread knob: `1` sequential, `0` all hardware
    /// threads. Flow *results* are identical for every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a shared progress token for cancellation and counters.
    /// Takes precedence over [`FlowOptions::with_deadline`] (see the
    /// type-level precedence rules).
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Gives the run `budget` of wall time from the moment it starts;
    /// past it, the flow stops at the next checkpoint with
    /// [`CancelKind::DeadlineExceeded`](crate::progress::CancelKind).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a metrics recorder; the flow records its phase spans and
    /// counters into it (in addition to returning the finished
    /// [`FlowMetrics`](tpi_obs::FlowMetrics) on the result). Useful for
    /// aggregating several runs into one recorder.
    pub fn with_metrics(mut self, recorder: Arc<Recorder>) -> Self {
        self.metrics = Some(recorder);
        self
    }

    /// Overrides the flow's TPGREED destination weight model. Unlike
    /// [`FlowOptions::with_threads`] this changes *selections* (it is
    /// part of the flow semantics, and of the service cache key);
    /// unset, the flow configuration's model applies.
    pub fn with_gain_model(mut self, model: GainModel) -> Self {
        self.gain_model = Some(model);
        self
    }

    /// The thread override, if one was set.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The gain-model override, if one was set.
    pub fn gain_model(&self) -> Option<GainModel> {
        self.gain_model
    }

    /// The thread override, or `default` (normally the flow's own
    /// configuration) when unset.
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }

    /// The attached progress token, if any.
    pub fn progress(&self) -> Option<&Arc<Progress>> {
        self.progress.as_ref()
    }

    /// The deadline budget, if one was set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The attached recorder, if any.
    pub fn metrics(&self) -> Option<&Arc<Recorder>> {
        self.metrics.as_ref()
    }

    /// Resolves the progress token a run should use: the explicit one if
    /// attached, else a fresh token armed with the deadline (if any).
    pub fn resolve_progress(&self) -> Arc<Progress> {
        match (&self.progress, self.deadline) {
            (Some(p), _) => Arc::clone(p),
            (None, Some(budget)) => Arc::new(Progress::with_deadline(budget)),
            (None, None) => Arc::new(Progress::new()),
        }
    }

    /// Resolves the recorder a run should write to: the explicit one if
    /// attached, else a fresh private recorder.
    pub fn resolve_recorder(&self) -> Arc<Recorder> {
        self.metrics.clone().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let o = FlowOptions::new();
        assert_eq!(o.threads(), None);
        assert_eq!(o.threads_or(7), 7);
        assert!(o.progress().is_none());
        assert!(o.deadline().is_none());
        assert!(o.metrics().is_none());
        assert!(o.gain_model().is_none());
        assert!(o.resolve_progress().checkpoint().is_ok());
    }

    #[test]
    fn explicit_progress_wins_over_deadline() {
        let token = Arc::new(Progress::new());
        let o = FlowOptions::new().with_progress(Arc::clone(&token)).with_deadline(Duration::ZERO);
        let resolved = o.resolve_progress();
        assert!(Arc::ptr_eq(&resolved, &token));
        assert!(resolved.checkpoint().is_ok(), "the token's (absent) deadline governs");
    }

    #[test]
    fn deadline_arms_a_fresh_token() {
        let o = FlowOptions::new().with_deadline(Duration::ZERO);
        assert!(o.resolve_progress().checkpoint().is_err());
    }

    #[test]
    fn attached_recorder_is_resolved_by_identity() {
        let rec = Arc::new(Recorder::new());
        let o = FlowOptions::new().with_metrics(Arc::clone(&rec));
        assert!(Arc::ptr_eq(&o.resolve_recorder(), &rec));
    }

    #[test]
    fn threads_override() {
        assert_eq!(FlowOptions::new().with_threads(0).threads_or(1), 0);
    }

    #[test]
    fn gain_model_override() {
        let o = FlowOptions::new().with_gain_model(GainModel::Scoap);
        assert_eq!(o.gain_model(), Some(GainModel::Scoap));
    }
}
