//! TPGREED: greedy test-point insertion for full scan (§III).
//!
//! The algorithm examines the combinational paths between flip-flops and
//! sequentially inserts test points `(connection, value)` with the
//! highest *gain* (Equation 1):
//!
//! ```text
//! gain(c, v) = Σ_j  max_i  max_{p ∈ A_ij ∩ S_c}  1 / w_p
//! ```
//!
//! where `S_c` is the set of paths whose side inputs receive sensitizing
//! values from the forward implication of `v` at `c`, and `w_p` is the
//! number of side inputs of path `p` still carrying unknown values. Paths
//! that receive a controlling value on a side input, or a constant on a
//! path gate, are *nullified* and removed. When `w_p` reaches zero the
//! path becomes a scan path; the scan chain is kept acyclic with at most
//! one incoming and one outgoing path per flip-flop.
//!
//! §III.C notes the full gain recomputation after each insertion is
//! expensive and suggests an incremental alternative; both are available
//! via [`GainUpdate`] and produce identical selections (see the
//! `ablation_gain` bench and the equivalence tests).

use crate::paths::{enumerate_paths_with, PathId, PathSet};
use crate::progress::{Canceled, Progress};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_par::Threads;
use tpi_sim::{Implication, Trit};

/// Gain bookkeeping strategy (§III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainUpdate {
    /// Recompute the gain of every candidate after each insertion — the
    /// paper's "current implementation".
    Full,
    /// Only recompute candidates whose implication cone or touched paths
    /// were affected by the last insertion — the paper's proposed
    /// improvement. Selections are identical to [`GainUpdate::Full`].
    #[default]
    Incremental,
}

/// Configuration for [`TpGreed`].
#[derive(Debug, Clone, PartialEq)]
pub struct TpGreedConfig {
    /// Maximum number of side inputs for a path to be considered
    /// (the paper's `K_bound`; experiments use 10).
    pub k_bound: usize,
    /// Stop when the best gain falls below this value (the paper's
    /// `gain_bound`; experiments use 0.5).
    pub gain_bound: f64,
    /// Gain bookkeeping strategy.
    pub gain_update: GainUpdate,
    /// Safety cap on the number of enumerated paths (clamped to
    /// `u32::MAX`, the `PathId` capacity).
    pub max_paths: usize,
    /// Worker threads for path enumeration and candidate-gain sweeps:
    /// `1` runs fully sequentially, `0` uses all hardware threads, any
    /// other value is an explicit count. Selections are **identical**
    /// for every setting — workers only split the per-sweep evaluation,
    /// results are merged in candidate order and the argmax tie-break
    /// (highest gain, then lowest candidate index) never depends on
    /// worker scheduling.
    pub threads: usize,
}

impl Default for TpGreedConfig {
    /// The paper's experimental setup: `K_bound = 10`, `gain_bound = 0.5`.
    fn default() -> Self {
        TpGreedConfig {
            k_bound: 10,
            gain_bound: 0.5,
            gain_update: GainUpdate::Incremental,
            max_paths: 1 << 22,
            threads: 1,
        }
    }
}

/// Result of a TPGREED run.
#[derive(Debug, Clone)]
pub struct TpGreedOutcome {
    /// Chosen test points `(net, value)` in insertion order. These are
    /// *virtual* until physically applied (an AND gate for 0, an OR gate
    /// for 1) by the full-scan flow.
    pub test_points: Vec<(GateId, Trit)>,
    /// Established scan paths.
    pub scan_paths: Vec<PathId>,
    /// Number of greedy iterations executed.
    pub iterations: usize,
    /// Number of candidate paths enumerated (the paper reports this
    /// figure for s38584: 270463).
    pub paths_considered: usize,
    /// Final per-net test-mode constants implied by the test points
    /// (useful for input assignment and verification).
    pub implied: Vec<(GateId, Trit)>,
}

impl TpGreedOutcome {
    /// Scan-path endpoints `(from, to)` in establishment order.
    pub fn scan_path_endpoints(&self, paths: &PathSet) -> Vec<(GateId, GateId)> {
        self.scan_paths.iter().map(|&id| (paths.path(id).from, paths.path(id).to)).collect()
    }
}

/// Per-path mutable state.
#[derive(Debug, Clone, Copy)]
struct PathState {
    alive: bool,
    established: bool,
    /// Unknown side inputs remaining (the paper's `w_k`).
    w: u32,
}

/// Union-find over flip-flops for chain-cycle prevention.
#[derive(Debug, Clone)]
struct Fragments {
    parent: Vec<usize>,
}

impl Fragments {
    fn new(n: usize) -> Self {
        Fragments { parent: (0..n).collect() }
    }
    /// Iterative find with full path compression. (A recursive version
    /// overflowed the stack on degenerate long union chains — e.g. a
    /// shift register with tens of thousands of flip-flops unioned in
    /// order before the first lookup.)
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The TPGREED runner. Construct with [`TpGreed::new`], execute with
/// [`TpGreed::run`].
///
/// # Example
///
/// Reproduce the paper's Figure 1: one AND test point at the output of
/// `F4` establishes the chain `F1 -> F2 -> F3` through existing gates.
/// See `tpi-workloads`' `fig1()` and the `figures` binary for the full
/// construction; the doctest below shows the API shape on a small case.
///
/// ```
/// use tpi_netlist::{Netlist, GateKind};
/// use tpi_core::tpgreed::{TpGreed, TpGreedConfig};
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let f1 = n.add_gate(GateKind::Dff, "f1");
/// let x = n.add_input("x");
/// let g = n.add_gate(GateKind::And, "g");
/// n.connect(f1, g)?;
/// n.connect(x, g)?;
/// let f2 = n.add_gate(GateKind::Dff, "f2");
/// n.connect(g, f2)?;
/// n.connect(x, f1)?;
/// let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
/// assert_eq!(outcome.scan_paths.len(), 1);
/// assert_eq!(outcome.test_points.len(), 1); // x = 1 forced by one point
/// # Ok(())
/// # }
/// ```
pub struct TpGreed<'a> {
    n: &'a Netlist,
    cfg: TpGreedConfig,
    paths: PathSet,
    imp: Implication<'a>,
    state: Vec<PathState>,
    /// FF -> dense index.
    ff_index: HashMap<GateId, usize>,
    out_taken: Vec<bool>,
    in_taken: Vec<bool>,
    frags: Fragments,
    /// Nets whose values are pinned by established paths (desired
    /// constants); value recorded for conflict detection.
    protected: HashMap<GateId, Trit>,
    /// Nets lying on an established path (must stay unknown).
    established_net: Vec<bool>,
    // --- outcome accumulators ---
    test_points: Vec<(GateId, Trit)>,
    established: Vec<PathId>,
    iterations: usize,
    // --- incremental-gain machinery ---
    gains: Vec<f64>,
    dirty: Vec<bool>,
    path_watchers: HashMap<PathId, Vec<usize>>,
    net_watchers: HashMap<GateId, Vec<usize>>,
    /// Frontier gates per candidate: a candidate's implication wave can
    /// *extend* through these gates once another insertion determines one
    /// of their inputs, so commits that touch their fanins re-dirty the
    /// registered candidates.
    gate_watchers: HashMap<GateId, Vec<usize>>,
    /// Cooperative cancellation token and run counters.
    progress: Arc<Progress>,
}

const GAIN_INVALID: f64 = -1.0;

impl<'a> TpGreed<'a> {
    /// Prepares a run over `n`: enumerates paths and initializes state.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn new(n: &'a Netlist, cfg: TpGreedConfig) -> Self {
        let paths =
            enumerate_paths_with(n, cfg.k_bound, cfg.max_paths, Threads::from_knob(cfg.threads));
        Self::with_paths(n, cfg, paths)
    }

    /// Like [`TpGreed::new`] but reuses a pre-enumerated [`PathSet`].
    pub fn with_paths(n: &'a Netlist, cfg: TpGreedConfig, paths: PathSet) -> Self {
        let imp = Implication::new(n);
        let ffs = n.dffs();
        let ff_index: HashMap<GateId, usize> =
            ffs.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let mut state = Vec::with_capacity(paths.len());
        for id in paths.ids() {
            let p = paths.path(id);
            let mut alive = true;
            let mut w = 0u32;
            for c in &p.side_inputs {
                let sens = sensitizing_for(n.kind(c.sink));
                match imp.value(c.source) {
                    Trit::X => w += 1,
                    v if Some(v) == sens => {}
                    _ => alive = false, // controlling constant at init
                }
            }
            // A constant on a path gate nullifies too.
            if p.gates.iter().any(|&g| imp.value(g).is_known()) {
                alive = false;
            }
            state.push(PathState { alive, established: false, w });
        }
        let candidate_count = n.gate_count() * 2;
        TpGreed {
            n,
            cfg,
            imp,
            state,
            ff_index,
            out_taken: vec![false; ffs.len()],
            in_taken: vec![false; ffs.len()],
            frags: Fragments::new(ffs.len()),
            protected: HashMap::new(),
            established_net: vec![false; n.gate_count()],
            test_points: Vec::new(),
            established: Vec::new(),
            iterations: 0,
            gains: vec![0.0; candidate_count],
            dirty: vec![true; candidate_count],
            path_watchers: HashMap::new(),
            net_watchers: HashMap::new(),
            gate_watchers: HashMap::new(),
            progress: Arc::new(Progress::new()),
            paths,
        }
    }

    /// Access to the enumerated path set.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Attaches a shared [`Progress`] token: the greedy loop checks it at
    /// every iteration boundary and reports its counters through it.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = progress;
        self
    }

    /// Runs the greedy loop to completion and returns the outcome.
    ///
    /// # Panics
    /// Panics if the attached [`Progress`] cancels the run; use
    /// [`TpGreed::try_run_with_paths`] when a token may fire.
    pub fn run(self) -> TpGreedOutcome {
        self.run_with_paths().0
    }

    /// Like [`TpGreed::run`] but also hands back the enumerated
    /// [`PathSet`] (the flows need it for input assignment, stitching and
    /// verification).
    ///
    /// # Panics
    /// Panics if the attached [`Progress`] cancels the run.
    pub fn run_with_paths(self) -> (TpGreedOutcome, PathSet) {
        self.try_run_with_paths().expect("run canceled; use try_run_with_paths")
    }

    /// Cancellable variant of [`TpGreed::run_with_paths`]: returns
    /// [`Canceled`] as soon as a checkpoint fires at an iteration
    /// boundary.
    ///
    /// # Errors
    /// [`Canceled`] when the attached [`Progress`] was canceled or timed
    /// out.
    pub fn try_run_with_paths(mut self) -> Result<(TpGreedOutcome, PathSet), Canceled> {
        self.progress.add_paths_enumerated(self.paths.len() as u64);
        // Free paths (w == 0, e.g. direct FF->FF connections) cost
        // nothing: establish them before any insertion, as ref. [13]'s
        // cost-free scan does.
        self.establish_ready_paths();

        match self.cfg.gain_update {
            GainUpdate::Full => self.run_full()?,
            GainUpdate::Incremental => self.run_incremental()?,
        }

        let implied = self
            .n
            .gate_ids()
            .filter(|g| self.imp.value(*g).is_known())
            .map(|g| (g, self.imp.value(g)))
            .collect();
        Ok((
            TpGreedOutcome {
                test_points: self.test_points,
                scan_paths: self.established,
                iterations: self.iterations,
                paths_considered: self.paths.len(),
                implied,
            },
            self.paths,
        ))
    }

    fn run_full(&mut self) -> Result<(), Canceled> {
        let all: Vec<usize> = (0..self.gains.len()).collect();
        loop {
            self.progress.checkpoint()?;
            self.progress.add_round();
            self.iterations += 1;
            let evals = self.sweep_gains(&all, false);
            let mut best: Option<(f64, usize)> = None;
            for (cand, e) in evals.iter().enumerate() {
                let g = e.gain;
                self.gains[cand] = g;
                if g > 0.0 && g >= self.cfg.gain_bound && best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, cand));
                }
            }
            let Some((_, cand)) = best else { break };
            self.commit(cand);
        }
        Ok(())
    }

    fn run_incremental(&mut self) -> Result<(), Canceled> {
        let mut heap: BinaryHeap<(OrdF64, std::cmp::Reverse<usize>)> = BinaryHeap::new();
        loop {
            self.progress.checkpoint()?;
            self.progress.add_round();
            self.iterations += 1;
            // Refresh dirty candidates (ascending order; the parallel
            // sweep returns results in that same order).
            let dirty: Vec<usize> = (0..self.gains.len()).filter(|&c| self.dirty[c]).collect();
            let evals = self.sweep_gains(&dirty, true);
            for (&cand, eval) in dirty.iter().zip(&evals) {
                self.dirty[cand] = false;
                self.gains[cand] = eval.gain;
                self.register_watchers(cand, eval);
                if eval.gain > 0.0 && eval.gain >= self.cfg.gain_bound {
                    heap.push((OrdF64(eval.gain), std::cmp::Reverse(cand)));
                }
            }
            // Pop the best non-stale entry.
            let mut chosen = None;
            while let Some((OrdF64(g), std::cmp::Reverse(cand))) = heap.pop() {
                if (self.gains[cand] - g).abs() > 1e-12 {
                    continue; // stale
                }
                chosen = Some(cand);
                break;
            }
            let Some(cand) = chosen else { break };
            self.commit(cand);
            // The committed candidate's own entries are now meaningless.
            let (net, _) = decode(cand);
            self.dirty[encode(net, Trit::Zero)] = true;
            self.dirty[encode(net, Trit::One)] = true;
        }
        Ok(())
    }

    /// Evaluates Equation 1 for every candidate in `cands`, returning the
    /// results in the same order.
    ///
    /// With `cfg.threads > 1` the candidates are fanned across a scoped
    /// thread pool; each worker owns one clone of the implication engine
    /// for the whole sweep, and `preview_force`/`undo_preview` stay
    /// thread-local to that clone. Evaluations are independent — a
    /// preview restores the engine exactly (see the
    /// `implication_preview_roundtrip` property) and the union-find roots
    /// are snapshotted up front — so the result vector is identical to
    /// the sequential sweep's, element for element.
    fn sweep_gains(&mut self, cands: &[usize], register: bool) -> Vec<GainEval> {
        // The sweep size is a pure function of the netlist and config
        // (never of worker scheduling), so this counter is identical at
        // every `threads` setting.
        self.progress.add_candidates_evaluated(cands.len() as u64);
        // Snapshot the chain-fragment roots so `pair_usable` needs no
        // mutable union-find access inside workers.
        let ff_roots: Vec<usize> = {
            let frags = &mut self.frags;
            (0..frags.parent.len()).map(|i| frags.find(i)).collect()
        };
        let ctx = EvalCtx {
            n: self.n,
            paths: &self.paths,
            state: &self.state,
            ff_index: &self.ff_index,
            out_taken: &self.out_taken,
            in_taken: &self.in_taken,
            ff_roots: &ff_roots,
            protected: &self.protected,
            established_net: &self.established_net,
        };
        let threads = Threads::from_knob(self.cfg.threads);
        // Below ~2 candidates per worker the clone + spawn overhead
        // dominates; the cutoff only affects speed, never results.
        if threads.get() <= 1 || cands.len() < 2 * threads.get() {
            let imp = &mut self.imp;
            cands.iter().map(|&cand| ctx.evaluate(imp, cand, register)).collect()
        } else {
            tpi_par::map_indexed(threads, cands.len(), &self.imp, |imp, i| {
                ctx.evaluate(imp, cands[i], register)
            })
        }
    }

    /// Records one candidate's watcher registrations (incremental mode).
    fn register_watchers(&mut self, cand: usize, eval: &GainEval) {
        for id in &eval.touched {
            self.path_watchers.entry(*id).or_default().push(cand);
        }
        for &net in &eval.watch_nets {
            self.net_watchers.entry(net).or_default().push(cand);
        }
        for &g in &eval.frontier {
            self.gate_watchers.entry(g).or_default().push(cand);
        }
    }

    fn pair_usable(&mut self, id: PathId) -> bool {
        let p = self.paths.path(id);
        let (Some(&i), Some(&j)) = (self.ff_index.get(&p.from), self.ff_index.get(&p.to)) else {
            return false;
        };
        !self.out_taken[i] && !self.in_taken[j] && self.frags.find(i) != self.frags.find(j)
    }

    /// Current status of a path under `self.imp`: (nullified, w). Used on
    /// the committed state; the preview-time twin lives on [`EvalCtx`].
    fn path_status(&self, id: PathId) -> (bool, u32) {
        path_status_in(self.n, &self.paths, &self.imp, id)
    }

    /// Commits the candidate: forces the constant, prunes nullified
    /// paths, updates `w`s, establishes completed paths, and marks
    /// incremental dirt.
    fn commit(&mut self, cand: usize) {
        let (net, value) = decode(cand);
        let delta = self.imp.force(net, value);
        self.test_points.push((net, value));
        self.progress.add_test_points_placed(1);

        let mut affected: Vec<PathId> = Vec::new();
        for a in &delta {
            affected.extend_from_slice(self.paths.paths_with_side_source(a.net));
            affected.extend_from_slice(self.paths.paths_through(a.net));
            affected.extend_from_slice(self.paths.paths_from(a.net));
            if let Some(watchers) = self.net_watchers.get(&a.net) {
                for &c in watchers {
                    self.dirty[c] = true;
                }
            }
            // A newly determined net can unblock a frontier gate of some
            // candidate's wave: re-examine candidates watching any sink
            // of this net.
            for &(sink, _) in self.n.fanout(a.net) {
                if let Some(watchers) = self.gate_watchers.get(&sink) {
                    for &c in watchers {
                        self.dirty[c] = true;
                    }
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        for id in affected {
            let st = self.state[id.index()];
            if !st.alive || st.established {
                continue;
            }
            let (nullified, w) = self.path_status(id);
            let changed = nullified || w != st.w;
            if nullified {
                self.state[id.index()].alive = false;
            } else {
                self.state[id.index()].w = w;
            }
            if changed {
                self.mark_path_dirty(id);
            }
        }
        self.establish_ready_paths();
    }

    fn mark_path_dirty(&mut self, id: PathId) {
        if let Some(watchers) = self.path_watchers.get(&id) {
            for &c in watchers {
                self.dirty[c] = true;
            }
        }
    }

    /// Establishes every alive, usable path with `w == 0`, updating chain
    /// constraints and protections; repeats until none remains.
    fn establish_ready_paths(&mut self) {
        for raw in 0..self.state.len() {
            let id = PathId(raw as u32);
            let st = self.state[raw];
            if !st.alive || st.established || st.w != 0 {
                continue;
            }
            if !self.pair_usable(id) {
                continue;
            }
            // Double-check liveness against the current implication state
            // (the cached state is authoritative, but cheap to re-verify).
            let (nullified, w) = self.path_status(id);
            if nullified || w != 0 {
                self.state[raw].alive = !nullified;
                self.state[raw].w = w;
                continue;
            }
            self.establish(id);
        }
    }

    fn establish(&mut self, id: PathId) {
        self.state[id.index()].established = true;
        self.established.push(id);
        let p = self.paths.path(id).clone();
        let i = self.ff_index[&p.from];
        let j = self.ff_index[&p.to];
        // Degree and acyclicity bookkeeping (the A_i* / A_*j / cycle
        // removals of §III.A).
        self.out_taken[i] = true;
        self.in_taken[j] = true;
        // Paths whose usability may flip get their watchers dirtied
        // (conservative superset; `pair_usable` is authoritative).
        let root_a = self.frags.find(i);
        let root_b = self.frags.find(j);
        let mut flipped: Vec<PathId> = Vec::new();
        {
            let frags = &mut self.frags;
            let ff_index = &self.ff_index;
            for (&(from, to), ids) in self.paths.pairs_with_ids() {
                let fi = ff_index[&from];
                let fj = ff_index[&to];
                let (ra, rb) = (frags.find(fi), frags.find(fj));
                let crosses = (ra == root_a && rb == root_b) || (ra == root_b && rb == root_a);
                if fi == i || fj == j || crosses {
                    flipped.extend(ids.iter().copied());
                }
            }
        }
        self.frags.union(i, j);
        for f in flipped {
            self.mark_path_dirty(f);
        }
        // Protect the sensitized side inputs; pin the path nets and the
        // source FF's output as must-stay-unknown.
        for c in &p.side_inputs {
            let v = self.imp.value(c.source);
            debug_assert!(v.is_known());
            self.protected.insert(c.source, v);
        }
        self.established_net[p.from.index()] = true;
        for &g in &p.gates {
            self.established_net[g.index()] = true;
        }
    }
}

/// Result of evaluating one candidate: the Equation 1 gain plus the
/// watcher registrations the incremental mode needs. Pure data — workers
/// produce these, the master merges them in candidate order.
#[derive(Debug, Clone, Default)]
struct GainEval {
    gain: f64,
    /// Paths examined under the preview (→ `path_watchers`).
    touched: Vec<PathId>,
    /// Nets the preview determined, or the candidate net itself when the
    /// value was already implied (→ `net_watchers`).
    watch_nets: Vec<GateId>,
    /// Frontier gates of the implication wave (→ `gate_watchers`).
    frontier: Vec<GateId>,
}

/// Immutable snapshot of everything `evaluate` reads besides the
/// implication engine. Shared by reference across workers; the engine
/// itself is the only mutable piece and each worker owns a clone.
struct EvalCtx<'s, 'a> {
    n: &'a Netlist,
    paths: &'s PathSet,
    state: &'s [PathState],
    ff_index: &'s HashMap<GateId, usize>,
    out_taken: &'s [bool],
    in_taken: &'s [bool],
    /// Union-find roots snapshotted before the sweep (`find` needs
    /// `&mut`, and path compression never changes roots, so a snapshot
    /// is exact).
    ff_roots: &'s [usize],
    protected: &'s HashMap<GateId, Trit>,
    established_net: &'s [bool],
}

impl EvalCtx<'_, '_> {
    /// Evaluates Equation 1 for candidate `cand` on `imp`. The preview is
    /// undone before returning, so `imp` is restored exactly and
    /// evaluations are order-independent. With `register`, the returned
    /// [`GainEval`] carries the watcher registrations (they are collected
    /// even for invalid candidates — an invalid implication can become
    /// valid or extend after a later commit, so the incremental mode must
    /// re-examine it when its cone changes).
    fn evaluate(&self, imp: &mut Implication<'_>, cand: usize, register: bool) -> GainEval {
        let (net, value) = decode(cand);
        if !self.is_candidate_net(net) {
            return GainEval { gain: GAIN_INVALID, ..Default::default() };
        }
        // A net already carrying a committed test point is off-limits:
        // physically, stacked gates at one net resolve in insertion
        // order (the outermost wins), which would diverge from the
        // implication model's last-write-wins override.
        if imp.is_forced(net) {
            return GainEval { gain: GAIN_INVALID, ..Default::default() };
        }
        if imp.value(net) == value {
            // No effect *now* — but a later override can revert this
            // net's implied value, so the incremental mode must know to
            // re-examine the candidate when the net changes.
            let watch_nets = if register { vec![net] } else { Vec::new() };
            return GainEval { gain: 0.0, watch_nets, ..Default::default() };
        }
        let preview = imp.preview_force(net, value);

        // Validity: the implication must not disturb protected constants
        // or put a constant on an established path.
        let mut valid = true;
        for a in preview.changes() {
            if let Some(&want) = self.protected.get(&a.net) {
                if want != a.value {
                    valid = false;
                    break;
                }
            }
            if self.established_net[a.net.index()] {
                valid = false;
                break;
            }
        }

        let mut gain = 0.0;
        let mut touched: Vec<PathId> = Vec::new();
        if valid {
            // Collect paths affected by the implied constants.
            let mut affected: Vec<PathId> = Vec::new();
            for a in preview.changes() {
                affected.extend_from_slice(self.paths.paths_with_side_source(a.net));
                affected.extend_from_slice(self.paths.paths_through(a.net));
                affected.extend_from_slice(self.paths.paths_from(a.net));
            }
            affected.sort_unstable();
            affected.dedup();
            // Per-destination maxima (Equation 1's  Σ_j max_i max_p).
            // BTreeMap: the float sum must accumulate in a fixed order,
            // or exact gain ties break differently across runs.
            let mut best_per_dest: std::collections::BTreeMap<GateId, f64> = Default::default();
            let mut kills = 0usize;
            for id in affected {
                touched.push(id);
                let st = self.state[id.index()];
                if !st.alive || st.established || !self.pair_usable(id) {
                    continue;
                }
                let (nullified, new_w) = path_status_in(self.n, self.paths, imp, id);
                if nullified {
                    kills += 1;
                    continue;
                }
                if new_w >= st.w {
                    continue; // no progress under this preview
                }
                let contribution = 1.0 / st.w as f64;
                let dest = self.paths.path(id).to;
                let e = best_per_dest.entry(dest).or_insert(0.0);
                if contribution > *e {
                    *e = contribution;
                }
            }
            gain = best_per_dest.values().sum();
            // Tie-breaker only (Equation 1 stays dominant): between
            // equal-gain candidates, prefer the one that nullifies fewer
            // still-usable paths.
            if gain > 0.0 {
                gain -= 1e-6 * kills as f64;
            }
        }

        let (watch_nets, frontier) = if register {
            (preview.changes().iter().map(|a| a.net).collect(), preview.frontier().to_vec())
        } else {
            (Vec::new(), Vec::new())
        };
        if !register {
            touched.clear();
        }
        imp.undo_preview(preview);
        let gain = if valid { gain } else { GAIN_INVALID };
        GainEval { gain, touched, watch_nets, frontier }
    }

    /// Pairwise usability of a path's endpoints (chain degree and
    /// acyclicity), against the snapshotted union-find roots.
    fn pair_usable(&self, id: PathId) -> bool {
        let p = self.paths.path(id);
        let (Some(&i), Some(&j)) = (self.ff_index.get(&p.from), self.ff_index.get(&p.to)) else {
            return false;
        };
        !self.out_taken[i] && !self.in_taken[j] && self.ff_roots[i] != self.ff_roots[j]
    }

    fn is_candidate_net(&self, net: GateId) -> bool {
        let kind = self.n.kind(net);
        if matches!(kind, GateKind::Output | GateKind::Const0 | GateKind::Const1) {
            return false;
        }
        if self.protected.contains_key(&net) || self.established_net[net.index()] {
            return false;
        }
        true
    }
}

/// Status of path `id` under the given implication state: (nullified, w).
fn path_status_in(n: &Netlist, paths: &PathSet, imp: &Implication<'_>, id: PathId) -> (bool, u32) {
    let p = paths.path(id);
    // A constant at the source FF's output (a test point spliced there)
    // or on any path gate blocks shifting.
    if imp.value(p.from).is_known() || p.gates.iter().any(|&g| imp.value(g).is_known()) {
        return (true, 0);
    }
    let mut w = 0;
    for c in &p.side_inputs {
        let sens = sensitizing_for(n.kind(c.sink));
        match imp.value(c.source) {
            Trit::X => w += 1,
            v if Some(v) == sens => {}
            _ => return (true, 0),
        }
    }
    (false, w)
}

fn sensitizing_for(kind: GateKind) -> Option<Trit> {
    kind.sensitizing_value().map(Trit::from)
}

#[inline]
fn encode(net: GateId, value: Trit) -> usize {
    net.index() * 2 + usize::from(value == Trit::One)
}

#[inline]
fn decode(cand: usize) -> (GateId, Trit) {
    let net = GateId::from_index(cand / 2);
    let value = if cand % 2 == 1 { Trit::One } else { Trit::Zero };
    (net, value)
}

/// Total-order wrapper for gain values (never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("gain values are never NaN")
    }
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

/// Re-verifies an outcome from scratch on a fresh implication engine:
/// every reported scan path must be fully sensitized by the test points,
/// keep unknown values on its path gates, and the set of `(from, to)`
/// edges must form vertex-disjoint simple paths (no FF with two incoming
/// or two outgoing scan edges, no cycles).
///
/// Returns a human-readable description of the first violation, if any.
pub fn verify_outcome(
    n: &Netlist,
    paths: &PathSet,
    outcome: &TpGreedOutcome,
) -> Result<(), String> {
    let mut imp = Implication::new(n);
    for &(net, v) in &outcome.test_points {
        imp.force(net, v);
    }
    let mut out_deg: HashMap<GateId, u32> = HashMap::new();
    let mut in_deg: HashMap<GateId, u32> = HashMap::new();
    let mut edges = Vec::new();
    for &id in &outcome.scan_paths {
        let p = paths.path(id);
        for c in &p.side_inputs {
            let sens = Trit::from(
                n.kind(c.sink)
                    .sensitizing_value()
                    .ok_or_else(|| format!("side input into non-sensitizable gate {}", c.sink))?,
            );
            if imp.value(c.source) != sens {
                return Err(format!(
                    "path {}->{} side input {} carries {:?}, want {:?}",
                    n.gate_name(p.from),
                    n.gate_name(p.to),
                    n.gate_name(c.source),
                    imp.value(c.source),
                    sens
                ));
            }
        }
        if imp.value(p.from).is_known() {
            return Err(format!(
                "source flip-flop {} is forced constant in test mode",
                n.gate_name(p.from)
            ));
        }
        for &g in &p.gates {
            if imp.value(g).is_known() {
                return Err(format!(
                    "path {}->{} gate {} is stuck at {:?} in test mode",
                    n.gate_name(p.from),
                    n.gate_name(p.to),
                    n.gate_name(g),
                    imp.value(g)
                ));
            }
        }
        *out_deg.entry(p.from).or_default() += 1;
        *in_deg.entry(p.to).or_default() += 1;
        edges.push((p.from, p.to));
    }
    if let Some((ff, _)) = out_deg.iter().find(|(_, &d)| d > 1) {
        return Err(format!("{} has two outgoing scan edges", n.gate_name(*ff)));
    }
    if let Some((ff, _)) = in_deg.iter().find(|(_, &d)| d > 1) {
        return Err(format!("{} has two incoming scan edges", n.gate_name(*ff)));
    }
    // Cycle check: follow successor links.
    let succ: HashMap<GateId, GateId> = edges.iter().copied().collect();
    for &(start, _) in &edges {
        let mut cur = start;
        let mut hops = 0;
        while let Some(&next) = succ.get(&cur) {
            cur = next;
            hops += 1;
            if cur == start {
                return Err(format!("scan edges form a cycle through {}", n.gate_name(start)));
            }
            if hops > edges.len() {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use tpi_netlist::NetlistBuilder;

    #[test]
    fn fragments_find_survives_deep_chains() {
        // A recursive find would blow the stack here: 200k unions in
        // order build one maximally deep parent chain before the first
        // compressing lookup.
        let mut f = Fragments::new(200_001);
        for i in 0..200_000 {
            f.union(i, i + 1);
        }
        let root = f.find(0);
        assert_eq!(f.find(200_000), root);
        assert_eq!(f.find(100_000), root);
    }

    /// The paper's Figure 1 skeleton: F1 -OR(x)-> F2 -AND(F4)-> F3, with
    /// F4 driven by x. One AND test point at F4's output (or the PI value
    /// x = 0) sensitizes both hops.
    fn fig1_like() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.input("x");
        b.input("d1");
        b.input("d4");
        b.dff("f1", "d1");
        b.dff("f4", "d4");
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "x"]);
        b.dff("f2", "g1");
        b.gate(tpi_netlist::GateKind::And, "g2", &["f2", "f4"]);
        b.dff("f3", "g2");
        b.output("o", "f3");
        b.finish().unwrap()
    }

    #[test]
    fn fig1_needs_few_test_points_for_two_paths() {
        let n = fig1_like();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 2, "F1->F2 and F2->F3");
        assert!(
            outcome.test_points.len() <= 2,
            "x=0 and F4=1 (or just x=0 when implication covers)"
        );
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn full_and_incremental_agree() {
        let n = fig1_like();
        let full = TpGreed::new(
            &n,
            TpGreedConfig { gain_update: GainUpdate::Full, ..TpGreedConfig::default() },
        )
        .run();
        let inc = TpGreed::new(
            &n,
            TpGreedConfig { gain_update: GainUpdate::Incremental, ..TpGreedConfig::default() },
        )
        .run();
        assert_eq!(full.test_points, inc.test_points);
        assert_eq!(full.scan_paths, inc.scan_paths);
    }

    #[test]
    fn free_paths_are_established_without_insertions() {
        // Pure shift register: every hop is free.
        let mut b = NetlistBuilder::new("sr");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.dff("f2", "f1");
        b.output("o", "f2");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 2);
        assert!(outcome.test_points.is_empty());
    }

    #[test]
    fn chain_degree_constraints_hold() {
        // f0 feeds both f1 and f2 directly: only one free path may be
        // taken from f0.
        let mut b = NetlistBuilder::new("fanout");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.dff("f2", "f0");
        b.output("o1", "f1");
        b.output("o2", "f2");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 1, "one outgoing edge per FF");
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn cycle_is_never_formed() {
        // f0 <-> f1 direct connections: both free, but taking both would
        // close a cycle.
        let mut b = NetlistBuilder::new("ring2");
        b.dff("f0", "f1");
        b.dff("f1", "f0");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 1);
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn gain_bound_terminates_early() {
        let n = fig1_like();
        let outcome =
            TpGreed::new(&n, TpGreedConfig { gain_bound: 10.0, ..TpGreedConfig::default() }).run();
        assert!(outcome.test_points.is_empty(), "no candidate reaches gain 10");
    }

    #[test]
    fn established_paths_survive_later_insertions() {
        let n = fig1_like();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        // verify_outcome re-plays everything from scratch: if a later
        // insertion had nullified an earlier path, this would fail.
        verify_outcome(&n, &paths, &outcome).unwrap();
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use tpi_workloads::{generate, CircuitSpec, StructureClass};

    fn workload(seed: u64) -> tpi_netlist::Netlist {
        generate(&CircuitSpec {
            name: format!("cfg{seed}"),
            inputs: 6,
            outputs: 3,
            ffs: 20,
            target_gates: 80,
            structure: StructureClass::mixed(0.6, 4, 3, 1),
            seed,
        })
    }

    /// Raising `gain_bound` can only reduce the number of insertions:
    /// every candidate accepted at a higher bound is accepted at a lower
    /// one too (the greedy sequences share a prefix until the higher
    /// bound cuts off).
    #[test]
    fn higher_gain_bound_means_fewer_insertions() {
        let n = workload(3);
        let mut prev = usize::MAX;
        for bound in [0.25, 0.5, 1.0, 2.0] {
            let outcome =
                TpGreed::new(&n, TpGreedConfig { gain_bound: bound, ..TpGreedConfig::default() })
                    .run();
            assert!(
                outcome.test_points.len() <= prev,
                "bound {bound}: {} > {}",
                outcome.test_points.len(),
                prev
            );
            prev = outcome.test_points.len();
        }
    }

    /// Shrinking `K_bound` can only shrink the *candidate* path set.
    /// (The greedy's established count is not monotone — extra candidates
    /// can redirect its choices — but it is always bounded by the
    /// candidates, and every outcome must verify.)
    #[test]
    fn smaller_k_bound_never_enumerates_more_candidates() {
        let n = workload(4);
        let mut prev = 0usize;
        for k in [0usize, 1, 2, 4, 10] {
            let cfg = TpGreedConfig { k_bound: k, ..TpGreedConfig::default() };
            let (outcome, paths) = TpGreed::new(&n, cfg).run_with_paths();
            assert!(paths.len() >= prev, "k {k}: candidate count {} < {}", paths.len(), prev);
            assert!(outcome.scan_paths.len() <= paths.len());
            verify_outcome(&n, &paths, &outcome).unwrap();
            prev = paths.len();
        }
    }

    /// The `threads` knob must never change the outcome: for both gain
    /// strategies, every worker count selects the exact same test-point
    /// sequence and scan paths as the sequential run.
    #[test]
    fn parallel_selections_match_sequential() {
        for seed in [7, 8, 9] {
            let n = workload(seed);
            for update in [GainUpdate::Full, GainUpdate::Incremental] {
                let base = TpGreed::new(
                    &n,
                    TpGreedConfig { gain_update: update, threads: 1, ..TpGreedConfig::default() },
                )
                .run();
                for threads in [2, 4, 0] {
                    let par = TpGreed::new(
                        &n,
                        TpGreedConfig { gain_update: update, threads, ..TpGreedConfig::default() },
                    )
                    .run();
                    assert_eq!(
                        par.test_points, base.test_points,
                        "seed {seed} {update:?} threads {threads}"
                    );
                    assert_eq!(
                        par.scan_paths, base.scan_paths,
                        "seed {seed} {update:?} threads {threads}"
                    );
                    assert_eq!(
                        par.iterations, base.iterations,
                        "seed {seed} {update:?} threads {threads}"
                    );
                }
            }
        }
    }

    /// The `max_paths` safety cap truncates enumeration but never breaks
    /// the invariants: the outcome still verifies.
    #[test]
    fn max_paths_cap_degrades_gracefully() {
        let n = workload(5);
        let (outcome, paths) =
            TpGreed::new(&n, TpGreedConfig { max_paths: 8, ..TpGreedConfig::default() })
                .run_with_paths();
        assert!(paths.len() <= 8);
        assert!(paths.truncated() > 0);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }
}
