//! TPGREED: greedy test-point insertion for full scan (§III).
//!
//! The algorithm examines the combinational paths between flip-flops and
//! sequentially inserts test points `(connection, value)` with the
//! highest *gain* (Equation 1):
//!
//! ```text
//! gain(c, v) = Σ_j  max_i  max_{p ∈ A_ij ∩ S_c}  1 / w_p
//! ```
//!
//! where `S_c` is the set of paths whose side inputs receive sensitizing
//! values from the forward implication of `v` at `c`, and `w_p` is the
//! number of side inputs of path `p` still carrying unknown values. Paths
//! that receive a controlling value on a side input, or a constant on a
//! path gate, are *nullified* and removed. When `w_p` reaches zero the
//! path becomes a scan path; the scan chain is kept acyclic with at most
//! one incoming and one outgoing path per flip-flop.
//!
//! §III.C notes the full gain recomputation after each insertion is
//! expensive and suggests an incremental alternative; both are available
//! via [`GainUpdate`] and produce identical selections (see the
//! `ablation_gain` bench and the equivalence tests).
//!
//! The candidate-gain sweep itself runs on one of two interchangeable
//! engines (see [`SweepEngine`]): the scalar `preview_force` round trip,
//! or the word-parallel [`LaneEngine`] that previews 64 candidates per
//! forward pass over two `u64` bit-planes per net. Both feed the same
//! scoring code with identical change/frontier lists, so selections are
//! byte-identical; the lane engine only changes how fast the answer
//! arrives.

use crate::arena::{PinRole, SweepArena};
use crate::paths::{enumerate_paths_with, PathId, PathSet};
use crate::progress::{Canceled, Progress};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_par::Threads;
use tpi_sim::{Assignment, Implication, LaneEngine, Trit, LANES};

/// Gain bookkeeping strategy (§III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainUpdate {
    /// Recompute the gain of every candidate after each insertion — the
    /// paper's "current implementation".
    Full,
    /// Only recompute candidates whose implication cone or touched paths
    /// were affected by the last insertion — the paper's proposed
    /// improvement. Selections are identical to [`GainUpdate::Full`].
    #[default]
    Incremental,
}

/// Implementation used for the candidate-gain sweep. Every engine
/// produces byte-identical selections (the change/frontier lists feeding
/// the scoring code are provably equal — see the lane-equivalence
/// property tests); the knob exists for benchmarking and bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// Pick per sweep: the word-parallel engine once a sweep has enough
    /// previews to fill lanes, the scalar engine below that.
    #[default]
    Auto,
    /// One `preview_force`/`undo_preview` round trip per candidate.
    Scalar,
    /// 64 candidate previews per forward pass (bit-plane lanes).
    Lanes,
}

/// Weight model for Equation 1's per-destination contributions.
///
/// Both models rank candidates by the same max-per-destination sum; the
/// difference is what one destination is worth. The weights are a pure
/// function of the *base* netlist (computed once before the greedy
/// loop), so selections stay byte-identical across thread counts and
/// sweep engines for either model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainModel {
    /// The paper's Equation 1: every destination flip-flop weighs 1,
    /// so a candidate's gain counts reachable scan paths.
    #[default]
    PathCount,
    /// SCOAP-weighted (ROADMAP item 4a): a destination weighs
    /// `1 + min(burden, cap) / 1024` where `burden` is the
    /// CC0+CC1+CO testability burden of its capture flip-flop's Q net
    /// per `tpi-dfa` — establishing a path into a hard-to-test
    /// register reduces CO·(CC0+CC1) where it matters most. The weight
    /// is an integer-derived rational (no transcendental math), so it
    /// is bit-exact across platforms.
    Scoap,
}

impl GainModel {
    /// Stable label, used by the cache key and the wire protocol.
    pub fn label(self) -> &'static str {
        match self {
            GainModel::PathCount => "path-count",
            GainModel::Scoap => "scoap",
        }
    }
}

/// Saturation cap on the SCOAP burden entering a destination weight:
/// everything above (including unobservable/uncontrollable nets at
/// `tpi_dfa::SAT`) is "maximally hard" with weight `1 + cap/1024`.
const SCOAP_BURDEN_CAP: u32 = 1 << 20;

/// Configuration for [`TpGreed`].
#[derive(Debug, Clone, PartialEq)]
pub struct TpGreedConfig {
    /// Maximum number of side inputs for a path to be considered
    /// (the paper's `K_bound`; experiments use 10).
    pub k_bound: usize,
    /// Stop when the best gain falls below this value (the paper's
    /// `gain_bound`; experiments use 0.5).
    pub gain_bound: f64,
    /// Gain bookkeeping strategy.
    pub gain_update: GainUpdate,
    /// Safety cap on the number of enumerated paths (clamped to
    /// `u32::MAX`, the `PathId` capacity).
    pub max_paths: usize,
    /// Worker threads for path enumeration and candidate-gain sweeps:
    /// `1` runs fully sequentially, `0` uses all hardware threads, any
    /// other value is an explicit count. Selections are **identical**
    /// for every setting — workers only split the per-sweep evaluation,
    /// results are merged in candidate order and the argmax tie-break
    /// (highest gain, then lowest candidate index) never depends on
    /// worker scheduling.
    pub threads: usize,
    /// Candidate-gain sweep implementation; selections are identical for
    /// every choice.
    pub sweep_engine: SweepEngine,
    /// Destination weight model for candidate gains. Unlike the knobs
    /// above, this *changes selections* — it is part of the flow
    /// semantics and of the `tpi-serve` cache key.
    pub gain_model: GainModel,
}

impl Default for TpGreedConfig {
    /// The paper's experimental setup: `K_bound = 10`, `gain_bound = 0.5`.
    fn default() -> Self {
        TpGreedConfig {
            k_bound: 10,
            gain_bound: 0.5,
            gain_update: GainUpdate::Incremental,
            max_paths: 1 << 22,
            threads: 1,
            sweep_engine: SweepEngine::Auto,
            gain_model: GainModel::PathCount,
        }
    }
}

/// Result of a TPGREED run.
#[derive(Debug, Clone)]
pub struct TpGreedOutcome {
    /// Chosen test points `(net, value)` in insertion order. These are
    /// *virtual* until physically applied (an AND gate for 0, an OR gate
    /// for 1) by the full-scan flow.
    pub test_points: Vec<(GateId, Trit)>,
    /// Established scan paths.
    pub scan_paths: Vec<PathId>,
    /// Number of greedy iterations executed.
    pub iterations: usize,
    /// Number of candidate paths enumerated (the paper reports this
    /// figure for s38584: 270463).
    pub paths_considered: usize,
    /// Final per-net test-mode constants implied by the test points
    /// (useful for input assignment and verification).
    pub implied: Vec<(GateId, Trit)>,
}

impl TpGreedOutcome {
    /// Scan-path endpoints `(from, to)` in establishment order.
    pub fn scan_path_endpoints(&self, paths: &PathSet) -> Vec<(GateId, GateId)> {
        self.scan_paths.iter().map(|&id| (paths.path(id).from, paths.path(id).to)).collect()
    }
}

/// Per-path mutable state.
#[derive(Debug, Clone, Copy)]
struct PathState {
    alive: bool,
    established: bool,
    /// Unknown side inputs remaining (the paper's `w_k`).
    w: u32,
}

/// Union-find over flip-flops for chain-cycle prevention.
#[derive(Debug, Clone)]
struct Fragments {
    parent: Vec<usize>,
}

impl Fragments {
    fn new(n: usize) -> Self {
        Fragments { parent: (0..n).collect() }
    }
    /// Iterative find with full path compression. (A recursive version
    /// overflowed the stack on degenerate long union chains — e.g. a
    /// shift register with tens of thousands of flip-flops unioned in
    /// order before the first lookup.)
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The TPGREED runner. Construct with [`TpGreed::new`], execute with
/// [`TpGreed::run`].
///
/// # Example
///
/// Reproduce the paper's Figure 1: one AND test point at the output of
/// `F4` establishes the chain `F1 -> F2 -> F3` through existing gates.
/// See `tpi-workloads`' `fig1()` and the `figures` binary for the full
/// construction; the doctest below shows the API shape on a small case.
///
/// ```
/// use tpi_netlist::{Netlist, GateKind};
/// use tpi_core::tpgreed::{TpGreed, TpGreedConfig};
/// # fn main() -> Result<(), tpi_netlist::NetlistError> {
/// let mut n = Netlist::new("t");
/// let f1 = n.add_gate(GateKind::Dff, "f1");
/// let x = n.add_input("x");
/// let g = n.add_gate(GateKind::And, "g");
/// n.connect(f1, g)?;
/// n.connect(x, g)?;
/// let f2 = n.add_gate(GateKind::Dff, "f2");
/// n.connect(g, f2)?;
/// n.connect(x, f1)?;
/// let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
/// assert_eq!(outcome.scan_paths.len(), 1);
/// assert_eq!(outcome.test_points.len(), 1); // x = 1 forced by one point
/// # Ok(())
/// # }
/// ```
pub struct TpGreed<'a> {
    n: &'a Netlist,
    cfg: TpGreedConfig,
    paths: PathSet,
    imp: Implication<'a>,
    /// Word-parallel twin of `imp`, kept in lock-step after every commit.
    lanes: LaneEngine,
    /// Dense per-run snapshot of the path set's reverse indices, the
    /// per-path side-input/sensitizing data, and the FF numbering.
    arena: SweepArena,
    state: Vec<PathState>,
    out_taken: Vec<bool>,
    in_taken: Vec<bool>,
    frags: Fragments,
    /// Nets whose values are pinned by established paths (desired
    /// constants, indexed by gate; `X` = unprotected — protected values
    /// are always known).
    protected: Vec<Trit>,
    /// Nets lying on an established path (must stay unknown).
    established_net: Vec<bool>,
    /// Committed trit per net — a dense snapshot of `imp`'s values,
    /// refreshed from each commit delta. The lane scorer classifies every
    /// union change as an O(1) transition `committed class -> trial
    /// class` instead of re-walking path status.
    committed: Vec<Trit>,
    /// Per-gate destination weight under the configured [`GainModel`]:
    /// all 1.0 for [`GainModel::PathCount`] (reproducing Equation 1
    /// bit for bit), SCOAP-derived for [`GainModel::Scoap`]. Computed
    /// once from the base netlist, shared read-only by every worker.
    dest_weight: Vec<f64>,
    // --- outcome accumulators ---
    test_points: Vec<(GateId, Trit)>,
    established: Vec<PathId>,
    iterations: usize,
    // --- incremental-gain machinery ---
    gains: Vec<f64>,
    dirty: Vec<bool>,
    /// Registration epoch per candidate: bumped on every
    /// `register_watchers`, so entries from earlier registrations are
    /// recognizably stale (watcher lists carry the epoch they were
    /// written under) and heap entries from earlier refreshes too.
    watch_epoch: Vec<u32>,
    /// Path -> watching candidates, indexed by path. Stale entries
    /// (epoch no longer current) are dropped lazily on marking and on
    /// re-registration growth. Lane sweeps register batch-wide
    /// [`WatchEntry::Group`] masks here, like the net/gate lists.
    path_watchers: Vec<Vec<WatchEntry>>,
    /// Net -> candidates whose preview determined that net, indexed by
    /// gate. Lane sweeps register whole batches at once (see
    /// [`WatchEntry::Group`]): one entry per *union* net instead of one
    /// per `(net, lane)` pair — registration is the only per-change cost
    /// the lane engine would otherwise still pay at scalar rates.
    net_watchers: Vec<Vec<WatchEntry>>,
    /// Frontier gates per candidate: a candidate's implication wave can
    /// *extend* through these gates once another insertion determines one
    /// of their inputs, so commits that touch their fanins re-dirty the
    /// registered candidates. Indexed by gate.
    gate_watchers: Vec<Vec<WatchEntry>>,
    /// Lane-batch registration table: group id -> per-lane `(candidate,
    /// epoch at registration)`. [`WatchEntry::Group`] masks index into
    /// this. Entries are never removed — a group goes dead once all its
    /// lanes re-register — but the table is bounded by one record per
    /// batch per sweep (~megabytes across a full run, reclaimed with the
    /// runner).
    watch_groups: Vec<Vec<(u32, u32)>>,
    /// Cone-clustering sort key for lane batching (see
    /// [`tpi_sim::NetView::cone_order`] — computed once per run).
    cone_order: Vec<u32>,
    /// Cooperative cancellation token and run counters.
    progress: Arc<Progress>,
    /// Reusable per-sweep scoring scratch (stamp-dedup arrays).
    scratch: ScoreScratch,
}

/// Reusable scoring scratch: stamp arrays replace the per-preview
/// sort+dedup of affected paths and the `BTreeMap` of per-destination
/// maxima with O(1) amortized lookups. One instance lives on [`TpGreed`]
/// for sequential sweeps; parallel sweeps clone one per worker alongside
/// the engine.
#[derive(Debug, Clone)]
struct ScoreScratch {
    /// Last stamp that visited each path (dedup across the three reverse
    /// indices).
    path_stamp: Vec<u32>,
    /// Last stamp that touched each destination gate.
    dest_stamp: Vec<u32>,
    /// Best per-destination contribution under the current stamp.
    dest_best: Vec<f64>,
    /// Destinations touched under the current stamp.
    dests: Vec<u32>,
    stamp: u32,
    // --- lane-batch accumulators (see `EvalCtx::lane_group`) ---
    /// Last batch round that touched each path.
    acc_stamp: Vec<u32>,
    /// Path -> index into `accs` under the current batch round.
    acc_slot: Vec<u32>,
    /// Per-path accumulators of the open batch, in first-touch order.
    accs: Vec<BatchAcc>,
    acc_round: u32,
    /// Per-lane `(destination, contribution)` lists of the open batch.
    lane_contrib: Vec<Vec<(u32, f64)>>,
}

/// Per-path accumulator of one lane batch: which lanes touched the path,
/// which nullified it, and each lane's side-input delta `dw` relative to
/// the committed `w`. Built from O(1) per-pin class transitions instead
/// of a full `path_status` walk per `(path, lane)` pair.
#[derive(Debug, Clone, Copy)]
struct BatchAcc {
    path: u32,
    touched: u64,
    null: u64,
    dw: [i8; LANES],
}

impl ScoreScratch {
    fn new(path_count: usize, gate_count: usize) -> Self {
        ScoreScratch {
            path_stamp: vec![0; path_count],
            dest_stamp: vec![0; gate_count],
            dest_best: vec![0.0; gate_count],
            dests: Vec::new(),
            stamp: 0,
            acc_stamp: vec![0; path_count],
            acc_slot: vec![0; path_count],
            accs: Vec::new(),
            acc_round: 0,
            lane_contrib: (0..LANES).map(|_| Vec::new()).collect(),
        }
    }

    /// Starts a new evaluation: returns a stamp no array currently holds.
    fn next_stamp(&mut self) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.path_stamp.fill(0);
            self.dest_stamp.fill(0);
            self.stamp = 1;
        }
        self.stamp
    }

    /// Starts a new lane batch: clears the accumulators.
    fn begin_batch(&mut self) {
        self.accs.clear();
        self.acc_round = self.acc_round.wrapping_add(1);
        if self.acc_round == 0 {
            self.acc_stamp.fill(0);
            self.acc_round = 1;
        }
    }

    /// The accumulator for `path` under the current batch round,
    /// creating it zeroed on first touch.
    #[inline]
    fn acc_for(&mut self, path: u32) -> &mut BatchAcc {
        let pi = path as usize;
        if self.acc_stamp[pi] != self.acc_round {
            self.acc_stamp[pi] = self.acc_round;
            self.acc_slot[pi] = self.accs.len() as u32;
            self.accs.push(BatchAcc { path, touched: 0, null: 0, dw: [0; LANES] });
        }
        &mut self.accs[self.acc_slot[pi] as usize]
    }
}

/// One parallel sweep worker: an engine clone plus its scoring scratch.
#[derive(Clone)]
struct Worker<E> {
    eng: E,
    sc: ScoreScratch,
}

const GAIN_INVALID: f64 = -1.0;

/// Sweeps with at least this many non-trivial previews use the lane
/// engine under [`SweepEngine::Auto`]: below it, a single batch would run
/// mostly empty lanes and the scalar engine's smaller per-preview setup
/// wins.
const LANE_MIN_PREVIEWS: usize = 16;

/// Per-sweep work threshold for spawning workers, measured in previews:
/// under ~512 previews the engine clone + thread spawn overhead exceeds
/// the sweep itself (measured on the `smoke_*` circuits, where the old
/// `cands.len() < 2 * threads` cutoff let every tiny incremental refresh
/// pay for a pool — the PR4 `--threads 2` regression). The threshold
/// compares *previews*, not candidates: trivially answered candidates
/// (forced/implied/ineligible nets) cost nanoseconds and never justify a
/// spawn.
const SPAWN_MIN_PREVIEWS: usize = 512;

impl<'a> TpGreed<'a> {
    /// Prepares a run over `n`: enumerates paths and initializes state.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn new(n: &'a Netlist, cfg: TpGreedConfig) -> Self {
        let paths =
            enumerate_paths_with(n, cfg.k_bound, cfg.max_paths, Threads::from_knob(cfg.threads));
        Self::with_paths(n, cfg, paths)
    }

    /// Like [`TpGreed::new`] but reuses a pre-enumerated [`PathSet`].
    pub fn with_paths(n: &'a Netlist, cfg: TpGreedConfig, paths: PathSet) -> Self {
        let imp = Implication::new(n);
        let lanes = LaneEngine::mirror(&imp);
        let arena = SweepArena::build(n, &paths);
        let ffs = n.dffs();
        let mut state = Vec::with_capacity(paths.len());
        for id in paths.ids() {
            let p = paths.path(id);
            let mut alive = true;
            let mut w = 0u32;
            for c in &p.side_inputs {
                let sens = sensitizing_for(n.kind(c.sink));
                match imp.value(c.source) {
                    Trit::X => w += 1,
                    v if Some(v) == sens => {}
                    _ => alive = false, // controlling constant at init
                }
            }
            // A constant on a path gate nullifies too.
            if p.gates.iter().any(|&g| imp.value(g).is_known()) {
                alive = false;
            }
            state.push(PathState { alive, established: false, w });
        }
        let candidate_count = n.gate_count() * 2;
        let committed = (0..n.gate_count()).map(|i| imp.value(GateId::from_index(i))).collect();
        let cone_order = imp.view().cone_order();
        let dest_weight = match cfg.gain_model {
            GainModel::PathCount => vec![1.0; n.gate_count()],
            GainModel::Scoap => {
                let scoap = tpi_dfa::Scoap::analyze(imp.view());
                (0..n.gate_count())
                    .map(|g| 1.0 + f64::from(scoap.burden(g).min(SCOAP_BURDEN_CAP)) / 1024.0)
                    .collect()
            }
        };
        TpGreed {
            n,
            cfg,
            imp,
            lanes,
            arena,
            state,
            out_taken: vec![false; ffs.len()],
            in_taken: vec![false; ffs.len()],
            frags: Fragments::new(ffs.len()),
            protected: vec![Trit::X; n.gate_count()],
            established_net: vec![false; n.gate_count()],
            committed,
            dest_weight,
            test_points: Vec::new(),
            established: Vec::new(),
            iterations: 0,
            gains: vec![0.0; candidate_count],
            dirty: vec![true; candidate_count],
            watch_epoch: vec![0; candidate_count],
            path_watchers: vec![Vec::new(); paths.len()],
            net_watchers: vec![Vec::new(); n.gate_count()],
            gate_watchers: vec![Vec::new(); n.gate_count()],
            watch_groups: Vec::new(),
            cone_order,
            progress: Arc::new(Progress::new()),
            scratch: ScoreScratch::new(paths.len(), n.gate_count()),
            paths,
        }
    }

    /// Access to the enumerated path set.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Attaches a shared [`Progress`] token: the greedy loop checks it at
    /// every iteration boundary and reports its counters through it.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = progress;
        self
    }

    /// Runs the greedy loop to completion and returns the outcome.
    ///
    /// # Panics
    /// Panics if the attached [`Progress`] cancels the run; use
    /// [`TpGreed::try_run_with_paths`] when a token may fire.
    pub fn run(self) -> TpGreedOutcome {
        self.run_with_paths().0
    }

    /// Like [`TpGreed::run`] but also hands back the enumerated
    /// [`PathSet`] (the flows need it for input assignment, stitching and
    /// verification).
    ///
    /// # Panics
    /// Panics if the attached [`Progress`] cancels the run.
    pub fn run_with_paths(self) -> (TpGreedOutcome, PathSet) {
        self.try_run_with_paths().expect("run canceled; use try_run_with_paths")
    }

    /// Cancellable variant of [`TpGreed::run_with_paths`]: returns
    /// [`Canceled`] as soon as a checkpoint fires at an iteration
    /// boundary.
    ///
    /// # Errors
    /// [`Canceled`] when the attached [`Progress`] was canceled or timed
    /// out.
    pub fn try_run_with_paths(mut self) -> Result<(TpGreedOutcome, PathSet), Canceled> {
        self.progress.add_paths_enumerated(self.paths.len() as u64);
        // Free paths (w == 0, e.g. direct FF->FF connections) cost
        // nothing: establish them before any insertion, as ref. [13]'s
        // cost-free scan does.
        self.establish_ready_paths();

        match self.cfg.gain_update {
            GainUpdate::Full => self.run_full()?,
            GainUpdate::Incremental => self.run_incremental()?,
        }

        let implied = self
            .n
            .gate_ids()
            .filter(|g| self.imp.value(*g).is_known())
            .map(|g| (g, self.imp.value(g)))
            .collect();
        Ok((
            TpGreedOutcome {
                test_points: self.test_points,
                scan_paths: self.established,
                iterations: self.iterations,
                paths_considered: self.paths.len(),
                implied,
            },
            self.paths,
        ))
    }

    fn run_full(&mut self) -> Result<(), Canceled> {
        let all: Vec<usize> = (0..self.gains.len()).collect();
        loop {
            self.progress.checkpoint()?;
            self.progress.add_round();
            self.iterations += 1;
            let evals = self.sweep_gains(&all, false).evals;
            let mut best: Option<(f64, usize)> = None;
            for (cand, e) in evals.iter().enumerate() {
                let g = e.gain;
                self.gains[cand] = g;
                if g > 0.0 && g >= self.cfg.gain_bound && best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, cand));
                }
            }
            let Some((_, cand)) = best else { break };
            self.commit(cand);
        }
        Ok(())
    }

    fn run_incremental(&mut self) -> Result<(), Canceled> {
        // Heap entries carry the candidate's registration epoch at push
        // time: a later re-evaluation bumps the epoch, making every older
        // entry recognizably stale. (An earlier version compared the
        // entry's gain against `self.gains[cand]` within an epsilon — a
        // float-equality proxy that accepted stale entries whenever a
        // re-evaluation landed within epsilon of the old gain, e.g. under
        // the `1e-6 * kills` tie-break nudge.)
        let mut heap: BinaryHeap<(OrdF64, std::cmp::Reverse<usize>, u32)> = BinaryHeap::new();
        loop {
            self.progress.checkpoint()?;
            self.progress.add_round();
            self.iterations += 1;
            // Refresh dirty candidates (ascending order; the parallel
            // sweep returns results in that same order).
            let dirty: Vec<usize> = (0..self.gains.len()).filter(|&c| self.dirty[c]).collect();
            let sweep = self.sweep_gains(&dirty, true);
            for (&cand, eval) in dirty.iter().zip(&sweep.evals) {
                self.dirty[cand] = false;
                self.gains[cand] = eval.gain;
                self.register_watchers(cand, eval);
                if eval.gain > 0.0 && eval.gain >= self.cfg.gain_bound {
                    heap.push((OrdF64(eval.gain), std::cmp::Reverse(cand), self.watch_epoch[cand]));
                }
            }
            // Lane-batch net/frontier registrations, applied after every
            // epoch bump above so the group snapshots carry the current
            // epochs.
            for reg in &sweep.groups {
                self.register_group(reg);
            }
            // Pop the best non-stale entry. Ties on (gain, candidate)
            // pop the freshest epoch first, which is the live one.
            let mut chosen = None;
            while let Some((_, std::cmp::Reverse(cand), epoch)) = heap.pop() {
                if self.watch_epoch[cand] != epoch {
                    continue; // stale: the candidate was re-evaluated
                }
                chosen = Some(cand);
                break;
            }
            let Some(cand) = chosen else { break };
            self.commit(cand);
            // The committed candidate's own entries are now meaningless.
            let (net, _) = decode(cand);
            self.dirty[encode(net, Trit::Zero)] = true;
            self.dirty[encode(net, Trit::One)] = true;
        }
        Ok(())
    }

    /// Evaluates Equation 1 for every candidate in `cands`, returning the
    /// results in the same order.
    ///
    /// Candidates answered from the committed state alone (ineligible or
    /// already-forced nets, values the implication already carries) are
    /// classified out first; the remaining *previews* run on the engine
    /// selected by `cfg.sweep_engine` — scalar round trips or 64-wide
    /// lane batches, grouped in candidate order.
    ///
    /// With `cfg.threads > 1` and at least [`SPAWN_MIN_PREVIEWS`] worth
    /// of preview work, the jobs are fanned across a scoped thread pool;
    /// each worker owns one clone of its engine for the whole sweep, and
    /// previews stay thread-local to that clone. Evaluations are
    /// independent — a preview restores the engine exactly (see the
    /// `implication_preview_roundtrip` property) and the union-find roots
    /// are snapshotted up front — so the result vector is identical to
    /// the sequential sweep's, element for element, at every `threads`
    /// setting and on every engine.
    fn sweep_gains(&mut self, cands: &[usize], register: bool) -> SweepResult {
        // The sweep size is a pure function of the netlist and config
        // (never of worker scheduling), so this counter is identical at
        // every `threads` setting.
        self.progress.add_candidates_evaluated(cands.len() as u64);
        // Snapshot the chain-fragment roots so `pair_usable` needs no
        // mutable union-find access inside workers.
        let ff_roots: Vec<usize> = {
            let frags = &mut self.frags;
            (0..frags.parent.len()).map(|i| frags.find(i)).collect()
        };
        let ctx = EvalCtx {
            n: self.n,
            arena: &self.arena,
            state: &self.state,
            out_taken: &self.out_taken,
            in_taken: &self.in_taken,
            ff_roots: &ff_roots,
            protected: &self.protected,
            established_net: &self.established_net,
            committed: &self.committed,
            dest_weight: &self.dest_weight,
        };
        // Classify: trivial candidates are answered in place, the rest
        // become preview jobs `(output slot, candidate)`.
        let mut out: Vec<GainEval> = Vec::with_capacity(cands.len());
        let mut jobs: Vec<(u32, u32)> = Vec::new();
        for (slot, &cand) in cands.iter().enumerate() {
            match ctx.classify(&self.imp, cand, register) {
                Some(eval) => out.push(eval),
                None => {
                    out.push(GainEval::default());
                    jobs.push((slot as u32, cand as u32));
                }
            }
        }
        if jobs.is_empty() {
            return SweepResult { evals: out, groups: Vec::new() };
        }
        let threads = Threads::from_knob(self.cfg.threads);
        let use_lanes = match self.cfg.sweep_engine {
            SweepEngine::Scalar => false,
            SweepEngine::Lanes => true,
            SweepEngine::Auto => jobs.len() >= LANE_MIN_PREVIEWS,
        };
        let mut group_regs: Vec<GroupReg> = Vec::new();
        if use_lanes {
            // Cone-cluster the jobs before chunking: lanes rooted in the
            // same fanout cone share most of their implication wave, so
            // the batch's union record — the cost every lane shares —
            // shrinks. Per-lane results are grouping-independent (each
            // lane previews its own root) and the slot index maps them
            // back, so this reorder cannot change any gain. The key
            // includes the candidate id, making the order total and the
            // grouping a pure function of the job list, never of
            // scheduling.
            jobs.sort_unstable_by_key(|&(_, cand)| (self.cone_order[cand as usize / 2], cand));
            let groups: Vec<&[(u32, u32)]> = jobs.chunks(LANES).collect();
            let spawn = threads.get() > 1
                && jobs.len() >= SPAWN_MIN_PREVIEWS
                && groups.len() >= threads.get();
            let results: Vec<(Vec<(u32, GainEval)>, GroupReg)> = if spawn {
                let proto = Worker { eng: self.lanes.clone(), sc: self.scratch.clone() };
                tpi_par::map_indexed(threads, groups.len(), &proto, |w, gi| {
                    ctx.lane_group(&mut w.eng, &mut w.sc, groups[gi], register)
                })
            } else {
                let eng = &mut self.lanes;
                let sc = &mut self.scratch;
                groups.iter().map(|group| ctx.lane_group(eng, sc, group, register)).collect()
            };
            for (evals, reg) in results {
                for (slot, eval) in evals {
                    out[slot as usize] = eval;
                }
                if register {
                    group_regs.push(reg);
                }
            }
        } else if threads.get() > 1 && jobs.len() >= SPAWN_MIN_PREVIEWS {
            let proto = Worker { eng: self.imp.clone(), sc: self.scratch.clone() };
            let results = tpi_par::map_indexed(threads, jobs.len(), &proto, |w, i| {
                ctx.evaluate(&mut w.eng, &mut w.sc, jobs[i].1 as usize, register)
            });
            for ((slot, _), eval) in jobs.iter().zip(results) {
                out[*slot as usize] = eval;
            }
        } else {
            let imp = &mut self.imp;
            let sc = &mut self.scratch;
            for &(slot, cand) in &jobs {
                out[slot as usize] = ctx.evaluate(imp, sc, cand as usize, register);
            }
        }
        SweepResult { evals: out, groups: group_regs }
    }

    /// Records one candidate's watcher registrations (incremental mode)
    /// under a fresh epoch. Entries written under earlier epochs become
    /// stale and are dropped lazily — on marking, and on append when a
    /// list is about to grow — so re-evaluating a candidate never
    /// accumulates duplicate registrations.
    fn register_watchers(&mut self, cand: usize, eval: &GainEval) {
        let epoch = self.watch_epoch[cand].wrapping_add(1);
        self.watch_epoch[cand] = epoch;
        let entry = (cand as u32, epoch);
        for id in &eval.touched {
            push_entry_watcher(
                &mut self.path_watchers[id.index()],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Cand(entry.0, entry.1),
            );
        }
        for &net in &eval.watch_nets {
            push_entry_watcher(
                &mut self.net_watchers[net.index()],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Cand(entry.0, entry.1),
            );
        }
        for &g in &eval.frontier {
            push_entry_watcher(
                &mut self.gate_watchers[g.index()],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Cand(entry.0, entry.1),
            );
        }
    }

    /// Applies one lane batch's net/frontier registrations: snapshots the
    /// lanes' `(candidate, epoch)` pairs into the group table — epochs
    /// were bumped by the per-candidate [`TpGreed::register_watchers`]
    /// pass just before — and pushes one [`WatchEntry::Group`] per union
    /// net and frontier gate.
    fn register_group(&mut self, reg: &GroupReg) {
        if reg.cands.is_empty() {
            return;
        }
        let gid = self.watch_groups.len() as u32;
        let lanes: Vec<(u32, u32)> =
            reg.cands.iter().map(|&c| (c, self.watch_epoch[c as usize])).collect();
        self.watch_groups.push(lanes);
        for &(net, mask) in &reg.nets {
            push_entry_watcher(
                &mut self.net_watchers[net as usize],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Group(gid, mask),
            );
        }
        for &(gate, mask) in &reg.gates {
            push_entry_watcher(
                &mut self.gate_watchers[gate as usize],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Group(gid, mask),
            );
        }
        for &(path, mask) in &reg.paths {
            push_entry_watcher(
                &mut self.path_watchers[path as usize],
                &self.watch_epoch,
                &self.watch_groups,
                WatchEntry::Group(gid, mask),
            );
        }
    }

    fn pair_usable(&mut self, id: PathId) -> bool {
        let (Some(i), Some(j)) = (
            self.arena.ff_slot(self.arena.source_gate(id)),
            self.arena.ff_slot(self.arena.to_gate(id)),
        ) else {
            return false;
        };
        !self.out_taken[i] && !self.in_taken[j] && self.frags.find(i) != self.frags.find(j)
    }

    /// Current status of a path under `self.imp`: (nullified, w). Used on
    /// the committed state; the preview-time twin lives on [`EvalCtx`].
    fn path_status(&self, id: PathId) -> (bool, u32) {
        self.arena.path_status(id, &|g| self.imp.value(g))
    }

    /// Commits the candidate: forces the constant, prunes nullified
    /// paths, updates `w`s, establishes completed paths, and marks
    /// incremental dirt.
    fn commit(&mut self, cand: usize) {
        let (net, value) = decode(cand);
        let delta = self.imp.force(net, value);
        // Keep the word-parallel twin in lock-step: later lane batches
        // must preview against exactly this committed state.
        self.lanes.apply_committed(net, &delta);
        self.test_points.push((net, value));
        self.progress.add_test_points_placed(1);

        let view = Arc::clone(self.imp.view());
        // Delta-driven path update: instead of re-walking every affected
        // path with `path_status`, accumulate the exact (nullified, Δw)
        // effect of each changed net through its pin list — the same
        // class-transition rules the lane scorer applies, on lane 0.
        // Transitions ignore the pre-commit value: for a still-alive path
        // a from/through pin was X and a side pin was X or sensitizing,
        // which pins down the old class; paths already dead accumulate
        // garbage but are skipped below.
        self.scratch.begin_batch();
        for a in &delta {
            self.committed[a.net.index()] = a.value;
            if self.arena.path_relevant(a.net) {
                for pin in self.arena.pins(a.net.index()) {
                    let acc = self.scratch.acc_for(pin.path.0);
                    match pin.role {
                        PinRole::Through | PinRole::From => {
                            if a.value != Trit::X {
                                acc.null |= 1;
                            }
                        }
                        PinRole::Side(sens) => {
                            if a.value == Trit::X {
                                // Sensitizing value receded: pin is free again.
                                acc.dw[0] += 1;
                            } else if sens == Some(a.value) {
                                acc.dw[0] -= 1;
                            } else {
                                acc.null |= 1;
                            }
                        }
                    }
                }
            }
            mark_entry_watchers(
                &mut self.dirty,
                &self.watch_epoch,
                &self.watch_groups,
                &mut self.net_watchers[a.net.index()],
            );
            // A newly determined net can unblock a frontier gate of some
            // candidate's wave: re-examine candidates watching any sink
            // of this net. (Frontier gates are always combinational, so
            // the combinational fanouts cover every possible watcher.)
            for &sink in view.comb_fanouts(a.net.index()) {
                mark_entry_watchers(
                    &mut self.dirty,
                    &self.watch_epoch,
                    &self.watch_groups,
                    &mut self.gate_watchers[sink as usize],
                );
            }
        }
        for ai in 0..self.scratch.accs.len() {
            let acc = self.scratch.accs[ai];
            let pi = acc.path as usize;
            let st = self.state[pi];
            if !st.alive || st.established {
                continue;
            }
            let nullified = acc.null != 0;
            let w = (st.w as i32 + i32::from(acc.dw[0])) as u32;
            let changed = nullified || w != st.w;
            if nullified {
                debug_assert!(self.path_status(PathId(acc.path)).0);
                self.state[pi].alive = false;
            } else {
                debug_assert_eq!((false, w), self.path_status(PathId(acc.path)));
                self.state[pi].w = w;
            }
            if changed {
                self.mark_path_dirty(PathId(acc.path));
            }
        }
        self.establish_ready_paths();
    }

    fn mark_path_dirty(&mut self, id: PathId) {
        mark_entry_watchers(
            &mut self.dirty,
            &self.watch_epoch,
            &self.watch_groups,
            &mut self.path_watchers[id.index()],
        );
    }

    /// Establishes every alive, usable path with `w == 0`, updating chain
    /// constraints and protections; repeats until none remains.
    ///
    /// The repeat matters for the contract, not (today) for the result:
    /// establishment is monotone-disqualifying — `establish` only unions
    /// chain fragments, takes endpoint degrees, and protects constants,
    /// none of which can make a previously skipped path newly ready — so
    /// a second pass finds nothing and the loop exits after one extra
    /// sweep. Looping to fixpoint keeps the code correct if establishment
    /// ever gains a side effect that *enables* paths (say, forcing a
    /// helper constant), and the `establishment_is_single_pass_stable`
    /// regression test pins the current one-pass behavior.
    fn establish_ready_paths(&mut self) {
        loop {
            let mut established_any = false;
            for raw in 0..self.state.len() {
                let id = PathId(raw as u32);
                let st = self.state[raw];
                if !st.alive || st.established || st.w != 0 {
                    continue;
                }
                if !self.pair_usable(id) {
                    continue;
                }
                // Double-check liveness against the current implication
                // state (the cached state is authoritative, but cheap to
                // re-verify).
                let (nullified, w) = self.path_status(id);
                if nullified || w != 0 {
                    self.state[raw].alive = !nullified;
                    self.state[raw].w = w;
                    continue;
                }
                self.establish(id);
                established_any = true;
            }
            if !established_any {
                break;
            }
        }
    }

    fn establish(&mut self, id: PathId) {
        self.state[id.index()].established = true;
        self.established.push(id);
        let p = self.paths.path(id).clone();
        let i = self.arena.ff_slot(p.from).expect("path endpoints are FFs");
        let j = self.arena.ff_slot(p.to).expect("path endpoints are FFs");
        // Degree and acyclicity bookkeeping (the A_i* / A_*j / cycle
        // removals of §III.A).
        self.out_taken[i] = true;
        self.in_taken[j] = true;
        // Paths whose usability may flip get their watchers dirtied
        // (conservative superset; `pair_usable` is authoritative).
        let root_a = self.frags.find(i);
        let root_b = self.frags.find(j);
        let mut flipped: Vec<PathId> = Vec::new();
        {
            let frags = &mut self.frags;
            let arena = &self.arena;
            for (&(from, to), ids) in self.paths.pairs_with_ids() {
                let fi = arena.ff_slot(from).expect("path endpoints are FFs");
                let fj = arena.ff_slot(to).expect("path endpoints are FFs");
                let (ra, rb) = (frags.find(fi), frags.find(fj));
                let crosses = (ra == root_a && rb == root_b) || (ra == root_b && rb == root_a);
                if fi == i || fj == j || crosses {
                    flipped.extend(ids.iter().copied());
                }
            }
        }
        self.frags.union(i, j);
        for f in flipped {
            self.mark_path_dirty(f);
        }
        // Protect the sensitized side inputs; pin the path nets and the
        // source FF's output as must-stay-unknown.
        for c in &p.side_inputs {
            let v = self.imp.value(c.source);
            debug_assert!(v.is_known());
            self.protected[c.source.index()] = v;
        }
        self.established_net[p.from.index()] = true;
        for &g in &p.gates {
            self.established_net[g.index()] = true;
        }
    }
}

/// Result of evaluating one candidate: the Equation 1 gain plus the
/// watcher registrations the incremental mode needs. Pure data — workers
/// produce these, the master merges them in candidate order.
#[derive(Debug, Clone, Default)]
struct GainEval {
    gain: f64,
    /// Paths examined under the preview (→ `path_watchers`).
    touched: Vec<PathId>,
    /// Nets the preview determined, or the candidate net itself when the
    /// value was already implied (→ `net_watchers`). Lane sweeps leave
    /// this empty — their net/frontier registrations travel batched in
    /// [`GroupReg`].
    watch_nets: Vec<GateId>,
    /// Frontier gates of the implication wave (→ `gate_watchers`).
    frontier: Vec<GateId>,
}

/// One lane batch's net/frontier registrations, produced by
/// [`EvalCtx::lane_group`] under `register` and applied by the master
/// after the per-candidate epoch bumps. Where the scalar path registers
/// each candidate on each of its changed nets individually, a batch
/// registers its *union* change record once — one entry per union net
/// carrying the lanes-changed mask — which is what makes registration
/// cost per change drop with lane occupancy. Pure data; workers produce
/// these, the master applies them in group order.
#[derive(Debug, Clone, Default)]
struct GroupReg {
    /// Candidates by lane, in lane order.
    cands: Vec<u32>,
    /// Union change record `(net index, lanes-changed mask)`.
    nets: Vec<(u32, u64)>,
    /// Union frontier record `(gate index, lanes-at-frontier mask)`.
    gates: Vec<(u32, u64)>,
    /// Touched-path record `(path index, lanes-that-touched mask)`,
    /// invalid lanes already excluded.
    paths: Vec<(u32, u64)>,
}

/// What a sweep returns: per-candidate evaluations (in candidate order)
/// plus, for registering lane sweeps, the batch registration records (in
/// group order).
struct SweepResult {
    evals: Vec<GainEval>,
    groups: Vec<GroupReg>,
}

/// How much watcher material [`EvalCtx::score_preview`] should collect.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Reg {
    /// Non-registering sweep (Full mode): collect nothing.
    Off,
    /// Scalar sweep: collect touched paths, changed nets and frontier.
    Full,
}

/// A net/gate watcher list entry: either one candidate's registration or
/// a whole lane batch's, referencing `watch_groups` by id with a mask of
/// the lanes registered here. Both carry enough to detect staleness
/// lazily (a lane is stale once its candidate's epoch moved on).
#[derive(Debug, Clone, Copy)]
enum WatchEntry {
    /// `(candidate, epoch)` — scalar and classify-time registrations.
    Cand(u32, u32),
    /// `(group id, lane mask)` — lane-batch registrations.
    Group(u32, u64),
}

impl WatchEntry {
    /// Whether any lane of the entry still holds a current registration.
    fn live(&self, epochs: &[u32], groups: &[Vec<(u32, u32)>]) -> bool {
        match *self {
            WatchEntry::Cand(cand, epoch) => epochs[cand as usize] == epoch,
            WatchEntry::Group(gid, mask) => {
                let lanes = &groups[gid as usize];
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (cand, epoch) = lanes[lane];
                    if epochs[cand as usize] == epoch {
                        return true;
                    }
                }
                false
            }
        }
    }
}

/// Sets `dirty` for every *live* lane of every entry of a watcher list
/// and drops entries with no live lane left (a lane is stale once its
/// candidate's registration epoch moved on). Free function over disjoint
/// field borrows so the borrow checker accepts `&mut self.dirty`
/// alongside `&mut self.net_watchers[i]`.
fn mark_entry_watchers(
    dirty: &mut [bool],
    epochs: &[u32],
    groups: &[Vec<(u32, u32)>],
    list: &mut Vec<WatchEntry>,
) {
    list.retain(|e| match *e {
        WatchEntry::Cand(cand, epoch) => {
            let live = epochs[cand as usize] == epoch;
            if live {
                dirty[cand as usize] = true;
            }
            live
        }
        WatchEntry::Group(gid, mask) => {
            let lanes = &groups[gid as usize];
            let mut any = false;
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                let (cand, epoch) = lanes[lane];
                if epochs[cand as usize] == epoch {
                    dirty[cand as usize] = true;
                    any = true;
                }
            }
            any
        }
    });
}

/// Appends a watcher entry, compacting stale entries out first whenever
/// the push would otherwise grow the allocation. Amortized O(1): a list
/// doubles only when at least half its entries are live.
fn push_entry_watcher(
    list: &mut Vec<WatchEntry>,
    epochs: &[u32],
    groups: &[Vec<(u32, u32)>],
    entry: WatchEntry,
) {
    if list.len() == list.capacity() && !list.is_empty() {
        list.retain(|e| e.live(epochs, groups));
    }
    list.push(entry);
}

/// Immutable snapshot of everything `evaluate` reads besides the
/// implication engine. Shared by reference across workers; the engine
/// itself is the only mutable piece and each worker owns a clone.
struct EvalCtx<'s, 'a> {
    n: &'a Netlist,
    arena: &'s SweepArena,
    state: &'s [PathState],
    out_taken: &'s [bool],
    in_taken: &'s [bool],
    /// Union-find roots snapshotted before the sweep (`find` needs
    /// `&mut`, and path compression never changes roots, so a snapshot
    /// is exact).
    ff_roots: &'s [usize],
    /// Dense by gate index; `X` = unprotected.
    protected: &'s [Trit],
    established_net: &'s [bool],
    /// Committed trit per net (see [`TpGreed::committed`]); the lane
    /// scorer's baseline for O(1) pin class transitions.
    committed: &'s [Trit],
    /// Per-gate destination weight (see [`TpGreed::dest_weight`]).
    dest_weight: &'s [f64],
}

impl EvalCtx<'_, '_> {
    /// Answers candidates decidable from the committed state alone,
    /// without a preview; returns `None` when the candidate needs one.
    /// Every `None` satisfies the preview precondition shared by both
    /// engines: the net is unforced and the trial value differs from the
    /// committed value.
    fn classify(&self, imp: &Implication<'_>, cand: usize, register: bool) -> Option<GainEval> {
        let (net, value) = decode(cand);
        if !self.is_candidate_net(net) {
            return Some(GainEval { gain: GAIN_INVALID, ..Default::default() });
        }
        // A net already carrying a committed test point is off-limits:
        // physically, stacked gates at one net resolve in insertion
        // order (the outermost wins), which would diverge from the
        // implication model's last-write-wins override.
        if imp.is_forced(net) {
            return Some(GainEval { gain: GAIN_INVALID, ..Default::default() });
        }
        if imp.value(net) == value {
            // No effect *now* — but a later override can revert this
            // net's implied value, so the incremental mode must know to
            // re-examine the candidate when the net changes.
            let watch_nets = if register { vec![net] } else { Vec::new() };
            return Some(GainEval { gain: 0.0, watch_nets, ..Default::default() });
        }
        None
    }

    /// Evaluates Equation 1 for one candidate on the scalar engine. The
    /// preview is undone before returning, so `imp` is restored exactly
    /// and evaluations are order-independent. Only called for candidates
    /// [`EvalCtx::classify`] passed through.
    fn evaluate(
        &self,
        imp: &mut Implication<'_>,
        sc: &mut ScoreScratch,
        cand: usize,
        register: bool,
    ) -> GainEval {
        let (net, value) = decode(cand);
        let preview = imp.preview_force(net, value);
        let reg = if register { Reg::Full } else { Reg::Off };
        let eval =
            self.score_preview(sc, preview.changes(), preview.frontier(), &|g| imp.value(g), reg);
        imp.undo_preview(preview);
        eval
    }

    /// Evaluates one lane group — up to [`LANES`] candidates previewed by
    /// a single batched forward pass — returning `(output slot, eval)`
    /// pairs plus the batch's registration record (empty unless
    /// `register`).
    ///
    /// Scoring is *union-driven*: instead of reconstructing 64 per-lane
    /// change lists and walking `path_status` per `(path, lane)` pair,
    /// the batch's union change record is processed once. Each union net
    /// contributes validity masks (bitwise, against the protection
    /// planes) and, through the arena's pin index, O(1) class transitions
    /// per listed path pin — `committed class -> trial class` decides
    /// nullification and the side-weight delta `dw` for every changed
    /// lane at once. A path's status under lane L is then `st.w + dw[L]`
    /// (nullified iff a null bit is set), which equals what the full
    /// `path_status` walk computes: a lane's change set is exactly the
    /// nets where its trial valuation differs from the committed one, and
    /// an alive path's unchanged pins keep their committed class. The
    /// per-lane gain then runs the same max-per-destination sum, in the
    /// same ascending destination order, over the same
    /// `dest_weight/st.w` contributions as [`EvalCtx::score_preview`] —
    /// so gains are
    /// byte-identical to the scalar engine's (the equivalence tests pin
    /// this); only the registration *representation* differs (batched
    /// union records instead of per-candidate lists, marking the same
    /// candidates dirty on the same commits).
    fn lane_group(
        &self,
        eng: &mut LaneEngine,
        sc: &mut ScoreScratch,
        group: &[(u32, u32)],
        register: bool,
    ) -> (Vec<(u32, GainEval)>, GroupReg) {
        let roots: Vec<(GateId, Trit)> =
            group.iter().map(|&(_, cand)| decode(cand as usize)).collect();
        eng.preview_batch(&roots);

        // --- one pass over the union change record ---
        sc.begin_batch();
        let mut invalid: u64 = 0;
        for &(net, ch) in eng.union_changes() {
            let i = net as usize;
            // Validity: the implication must not disturb protected
            // constants or put a constant on an established path (same
            // predicate as `score_preview`, per changed lane).
            if self.established_net[i] {
                invalid |= ch;
            } else {
                let want = self.protected[i];
                if want != Trit::X {
                    let (vw, kw) = eng.planes(i);
                    let ok = if want == Trit::One { kw & vw } else { kw & !vw };
                    invalid |= ch & !ok;
                }
            }
            if !self.arena.path_relevant(GateId::from_index(i)) {
                continue; // no path lists this net anywhere
            }
            let (vw, kw) = eng.planes(i);
            let old = self.committed[i];
            for pin in self.arena.pins(i) {
                let acc = sc.acc_for(pin.path.0);
                acc.touched |= ch;
                match pin.role {
                    // A known on a path gate (through or source)
                    // nullifies; alive paths have these committed-X, so
                    // `changed & known` is exactly the nullifying set.
                    PinRole::Through | PinRole::From => acc.null |= ch & kw,
                    PinRole::Side(sens) => {
                        let sens_mask = match sens {
                            Some(Trit::One) => kw & vw,
                            Some(Trit::Zero) => kw & !vw,
                            // `X` never appears as a sensitizing value;
                            // `None` (no sensitizing value for the gate
                            // kind) means any known side nullifies.
                            _ => 0,
                        };
                        if old == Trit::X {
                            // X -> sensitizing: one fewer X side input.
                            // X -> controlling known: nullified.
                            acc.null |= ch & kw & !sens_mask;
                            let mut m = ch & sens_mask;
                            while m != 0 {
                                let lane = m.trailing_zeros() as usize;
                                m &= m - 1;
                                acc.dw[lane] -= 1;
                            }
                        } else {
                            // Alive paths have known sides committed at
                            // the sensitizing value, so a change is
                            // either -> X (one more X side input) or
                            // -> controlling known (nullified).
                            acc.null |= ch & kw & !sens_mask;
                            let mut m = ch & !kw;
                            while m != 0 {
                                let lane = m.trailing_zeros() as usize;
                                m &= m - 1;
                                acc.dw[lane] += 1;
                            }
                        }
                    }
                }
            }
        }

        // --- finalize each touched path once ---
        for v in sc.lane_contrib.iter_mut() {
            v.clear();
        }
        let mut kills = [0u32; LANES];
        let mut reg_paths: Vec<(u32, u64)> = Vec::new();
        for ai in 0..sc.accs.len() {
            let acc = sc.accs[ai];
            let pi = acc.path as usize;
            let st = self.state[pi];
            // Monotone disqualification — same skip (and same exclusion
            // from the touched registration) as `score_preview`.
            if !st.alive || st.established || !self.pair_usable(PathId(acc.path)) {
                continue;
            }
            let m = acc.touched & !invalid;
            if register && m != 0 {
                reg_paths.push((acc.path, m));
            }
            let di = self.arena.to_gate(PathId(acc.path)).index() as u32;
            let mut m = m;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                if acc.null & (1u64 << lane) != 0 {
                    kills[lane] += 1;
                    continue;
                }
                if acc.dw[lane] >= 0 {
                    continue; // no progress under this preview
                }
                sc.lane_contrib[lane].push((di, self.dest_weight[di as usize] / st.w as f64));
            }
        }

        // --- per-lane gain: max per destination, summed ascending ---
        let mut out = Vec::with_capacity(group.len());
        for (lane, &(slot, cand)) in group.iter().enumerate() {
            let _ = cand;
            let gain = if invalid & (1u64 << lane) != 0 {
                GAIN_INVALID
            } else {
                let stamp = sc.next_stamp();
                sc.dests.clear();
                for &(di, c) in &sc.lane_contrib[lane] {
                    let d = di as usize;
                    if sc.dest_stamp[d] != stamp {
                        sc.dest_stamp[d] = stamp;
                        sc.dest_best[d] = c;
                        sc.dests.push(di);
                    } else if c > sc.dest_best[d] {
                        sc.dest_best[d] = c;
                    }
                }
                sc.dests.sort_unstable();
                let mut gain = 0.0;
                for &di in &sc.dests {
                    gain += sc.dest_best[di as usize];
                }
                if gain > 0.0 {
                    gain -= 1e-6 * f64::from(kills[lane]);
                }
                gain
            };
            out.push((slot, GainEval { gain, ..Default::default() }));
        }

        let group_reg = if register {
            GroupReg {
                cands: group.iter().map(|&(_, cand)| cand).collect(),
                nets: eng.union_changes().to_vec(),
                gates: eng.union_frontier().to_vec(),
                paths: reg_paths,
            }
        } else {
            GroupReg::default()
        };
        eng.undo_batch();
        (out, group_reg)
    }

    /// Scores one preview — the engine-independent core of Equation 1.
    /// `changes` and `frontier` describe the trial implication wave;
    /// `value` reads the trial value of any net under that wave. Under a
    /// registering `reg`, the returned [`GainEval`] carries the watcher
    /// registrations (they are collected even for invalid candidates — an
    /// invalid implication can become valid or extend after a later
    /// commit, so the incremental mode must re-examine it when its cone
    /// changes).
    fn score_preview(
        &self,
        sc: &mut ScoreScratch,
        changes: &[Assignment],
        frontier: &[GateId],
        value: &impl Fn(GateId) -> Trit,
        reg: Reg,
    ) -> GainEval {
        // Validity: the implication must not disturb protected constants
        // or put a constant on an established path.
        let mut valid = true;
        for a in changes {
            let want = self.protected[a.net.index()];
            if want != Trit::X && want != a.value {
                valid = false;
                break;
            }
            if self.established_net[a.net.index()] {
                valid = false;
                break;
            }
        }

        let mut gain = 0.0;
        let mut touched: Vec<PathId> = Vec::new();
        if valid {
            // Walk the paths affected by the implied constants, once
            // each: the stamp array dedups across the three reverse
            // indices and across changed nets without sorting.
            let stamp = sc.next_stamp();
            sc.dests.clear();
            let mut kills = 0usize;
            for a in changes {
                if !self.arena.path_relevant(a.net) {
                    continue; // no path lists this net anywhere
                }
                let lists = [
                    self.arena.paths_with_side_source(a.net),
                    self.arena.paths_through(a.net),
                    self.arena.paths_from(a.net),
                ];
                for id in lists.into_iter().flatten() {
                    let id = *id;
                    let pi = id.index();
                    if sc.path_stamp[pi] == stamp {
                        continue;
                    }
                    sc.path_stamp[pi] = stamp;
                    let st = self.state[pi];
                    // Dead, established, or pair-unusable paths can never
                    // contribute again (all three conditions are
                    // monotone: nullification and establishment are
                    // permanent, chain endpoints only fill up and
                    // fragments only merge) — skip them here and leave
                    // them out of `touched`, so candidates stop watching
                    // paths whose state can no longer change their gain.
                    if !st.alive || st.established || !self.pair_usable(id) {
                        continue;
                    }
                    touched.push(id);
                    let (nullified, new_w) = self.arena.path_status(id, value);
                    if nullified {
                        kills += 1;
                        continue;
                    }
                    if new_w >= st.w {
                        continue; // no progress under this preview
                    }
                    let di = self.arena.to_gate(id).index();
                    let contribution = self.dest_weight[di] / st.w as f64;
                    if sc.dest_stamp[di] != stamp {
                        sc.dest_stamp[di] = stamp;
                        sc.dest_best[di] = contribution;
                        sc.dests.push(di as u32);
                    } else if contribution > sc.dest_best[di] {
                        sc.dest_best[di] = contribution;
                    }
                }
            }
            // Per-destination maxima (Equation 1's  Σ_j max_i max_p),
            // summed in ascending destination order: the float sum must
            // accumulate in a fixed order, or exact gain ties break
            // differently across runs and engines.
            sc.dests.sort_unstable();
            for &di in &sc.dests {
                gain += sc.dest_best[di as usize];
            }
            // Tie-breaker only (Equation 1 stays dominant): between
            // equal-gain candidates, prefer the one that nullifies fewer
            // still-usable paths.
            if gain > 0.0 {
                gain -= 1e-6 * kills as f64;
            }
        }

        let (watch_nets, frontier) = if reg == Reg::Full {
            (changes.iter().map(|a| a.net).collect(), frontier.to_vec())
        } else {
            (Vec::new(), Vec::new())
        };
        if reg == Reg::Off {
            touched.clear();
        }
        let gain = if valid { gain } else { GAIN_INVALID };
        GainEval { gain, touched, watch_nets, frontier }
    }

    /// Pairwise usability of a path's endpoints (chain degree and
    /// acyclicity), against the snapshotted union-find roots.
    fn pair_usable(&self, id: PathId) -> bool {
        let (Some(i), Some(j)) = (
            self.arena.ff_slot(self.arena.source_gate(id)),
            self.arena.ff_slot(self.arena.to_gate(id)),
        ) else {
            return false;
        };
        !self.out_taken[i] && !self.in_taken[j] && self.ff_roots[i] != self.ff_roots[j]
    }

    fn is_candidate_net(&self, net: GateId) -> bool {
        let kind = self.n.kind(net);
        if matches!(kind, GateKind::Output | GateKind::Const0 | GateKind::Const1) {
            return false;
        }
        if self.protected[net.index()] != Trit::X || self.established_net[net.index()] {
            return false;
        }
        true
    }
}

fn sensitizing_for(kind: GateKind) -> Option<Trit> {
    kind.sensitizing_value().map(Trit::from)
}

#[inline]
fn encode(net: GateId, value: Trit) -> usize {
    net.index() * 2 + usize::from(value == Trit::One)
}

#[inline]
fn decode(cand: usize) -> (GateId, Trit) {
    let net = GateId::from_index(cand / 2);
    let value = if cand % 2 == 1 { Trit::One } else { Trit::Zero };
    (net, value)
}

/// Total-order wrapper for gain values (never NaN).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("gain values are never NaN")
    }
}

// ---------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------

/// Re-verifies an outcome from scratch on a fresh implication engine:
/// every reported scan path must be fully sensitized by the test points,
/// keep unknown values on its path gates, and the set of `(from, to)`
/// edges must form vertex-disjoint simple paths (no FF with two incoming
/// or two outgoing scan edges, no cycles).
///
/// Returns a human-readable description of the first violation, if any.
pub fn verify_outcome(
    n: &Netlist,
    paths: &PathSet,
    outcome: &TpGreedOutcome,
) -> Result<(), String> {
    let mut imp = Implication::new(n);
    for &(net, v) in &outcome.test_points {
        imp.force(net, v);
    }
    let mut out_deg: HashMap<GateId, u32> = HashMap::new();
    let mut in_deg: HashMap<GateId, u32> = HashMap::new();
    let mut edges = Vec::new();
    for &id in &outcome.scan_paths {
        let p = paths.path(id);
        for c in &p.side_inputs {
            let sens = Trit::from(
                n.kind(c.sink)
                    .sensitizing_value()
                    .ok_or_else(|| format!("side input into non-sensitizable gate {}", c.sink))?,
            );
            if imp.value(c.source) != sens {
                return Err(format!(
                    "path {}->{} side input {} carries {:?}, want {:?}",
                    n.gate_name(p.from),
                    n.gate_name(p.to),
                    n.gate_name(c.source),
                    imp.value(c.source),
                    sens
                ));
            }
        }
        if imp.value(p.from).is_known() {
            return Err(format!(
                "source flip-flop {} is forced constant in test mode",
                n.gate_name(p.from)
            ));
        }
        for &g in &p.gates {
            if imp.value(g).is_known() {
                return Err(format!(
                    "path {}->{} gate {} is stuck at {:?} in test mode",
                    n.gate_name(p.from),
                    n.gate_name(p.to),
                    n.gate_name(g),
                    imp.value(g)
                ));
            }
        }
        *out_deg.entry(p.from).or_default() += 1;
        *in_deg.entry(p.to).or_default() += 1;
        edges.push((p.from, p.to));
    }
    if let Some((ff, _)) = out_deg.iter().find(|(_, &d)| d > 1) {
        return Err(format!("{} has two outgoing scan edges", n.gate_name(*ff)));
    }
    if let Some((ff, _)) = in_deg.iter().find(|(_, &d)| d > 1) {
        return Err(format!("{} has two incoming scan edges", n.gate_name(*ff)));
    }
    // Cycle check: follow successor links.
    let succ: HashMap<GateId, GateId> = edges.iter().copied().collect();
    for &(start, _) in &edges {
        let mut cur = start;
        let mut hops = 0;
        while let Some(&next) = succ.get(&cur) {
            cur = next;
            hops += 1;
            if cur == start {
                return Err(format!("scan edges form a cycle through {}", n.gate_name(start)));
            }
            if hops > edges.len() {
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use tpi_netlist::NetlistBuilder;

    #[test]
    fn fragments_find_survives_deep_chains() {
        // A recursive find would blow the stack here: 200k unions in
        // order build one maximally deep parent chain before the first
        // compressing lookup.
        let mut f = Fragments::new(200_001);
        for i in 0..200_000 {
            f.union(i, i + 1);
        }
        let root = f.find(0);
        assert_eq!(f.find(200_000), root);
        assert_eq!(f.find(100_000), root);
    }

    /// The paper's Figure 1 skeleton: F1 -OR(x)-> F2 -AND(F4)-> F3, with
    /// F4 driven by x. One AND test point at F4's output (or the PI value
    /// x = 0) sensitizes both hops.
    fn fig1_like() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.input("x");
        b.input("d1");
        b.input("d4");
        b.dff("f1", "d1");
        b.dff("f4", "d4");
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "x"]);
        b.dff("f2", "g1");
        b.gate(tpi_netlist::GateKind::And, "g2", &["f2", "f4"]);
        b.dff("f3", "g2");
        b.output("o", "f3");
        b.finish().unwrap()
    }

    #[test]
    fn fig1_needs_few_test_points_for_two_paths() {
        let n = fig1_like();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 2, "F1->F2 and F2->F3");
        assert!(
            outcome.test_points.len() <= 2,
            "x=0 and F4=1 (or just x=0 when implication covers)"
        );
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn full_and_incremental_agree() {
        let n = fig1_like();
        let full = TpGreed::new(
            &n,
            TpGreedConfig { gain_update: GainUpdate::Full, ..TpGreedConfig::default() },
        )
        .run();
        let inc = TpGreed::new(
            &n,
            TpGreedConfig { gain_update: GainUpdate::Incremental, ..TpGreedConfig::default() },
        )
        .run();
        assert_eq!(full.test_points, inc.test_points);
        assert_eq!(full.scan_paths, inc.scan_paths);
    }

    #[test]
    fn free_paths_are_established_without_insertions() {
        // Pure shift register: every hop is free.
        let mut b = NetlistBuilder::new("sr");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.dff("f2", "f1");
        b.output("o", "f2");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 2);
        assert!(outcome.test_points.is_empty());
    }

    #[test]
    fn chain_degree_constraints_hold() {
        // f0 feeds both f1 and f2 directly: only one free path may be
        // taken from f0.
        let mut b = NetlistBuilder::new("fanout");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.dff("f2", "f0");
        b.output("o1", "f1");
        b.output("o2", "f2");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 1, "one outgoing edge per FF");
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn cycle_is_never_formed() {
        // f0 <-> f1 direct connections: both free, but taking both would
        // close a cycle.
        let mut b = NetlistBuilder::new("ring2");
        b.dff("f0", "f1");
        b.dff("f1", "f0");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.scan_paths.len(), 1);
        let paths = enumerate_paths(&n, 10, usize::MAX);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    #[test]
    fn gain_bound_terminates_early() {
        let n = fig1_like();
        let outcome =
            TpGreed::new(&n, TpGreedConfig { gain_bound: 10.0, ..TpGreedConfig::default() }).run();
        assert!(outcome.test_points.is_empty(), "no candidate reaches gain 10");
    }

    #[test]
    fn established_paths_survive_later_insertions() {
        let n = fig1_like();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        // verify_outcome re-plays everything from scratch: if a later
        // insertion had nullified an earlier path, this would fail.
        verify_outcome(&n, &paths, &outcome).unwrap();
    }

    /// Establishment is monotone-disqualifying: once
    /// `establish_ready_paths` returns, an immediate second call finds
    /// nothing new. This pins the property the fixpoint loop's doc
    /// relies on (the loop exists for the contract, not the result).
    #[test]
    fn establishment_is_single_pass_stable() {
        // A shift register plus the fig1 skeleton: several free paths
        // compete for endpoints, so the first call establishes a batch.
        let mut b = NetlistBuilder::new("sp");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.dff("f2", "f1");
        b.dff("f3", "f2");
        b.output("o", "f3");
        let n = b.finish().unwrap();
        let cfg = TpGreedConfig::default();
        let paths = enumerate_paths(&n, cfg.k_bound, cfg.max_paths);
        let mut tp = TpGreed::with_paths(&n, cfg, paths);
        tp.establish_ready_paths();
        let first = tp.established.len();
        assert!(first > 0, "free paths must establish");
        tp.establish_ready_paths();
        assert_eq!(tp.established.len(), first, "second call must be a no-op");
    }

    /// Re-evaluating dirty candidates across iterations must not
    /// accumulate duplicate watcher registrations: per list, at most one
    /// *live* entry (current epoch) per candidate. The pre-epoch code
    /// appended on every re-evaluation, growing the lists — and the
    /// per-commit dirty marking — without bound.
    #[test]
    fn watcher_lists_hold_one_live_entry_per_candidate() {
        let n = fig1_like();
        let cfg = TpGreedConfig::default();
        let paths = enumerate_paths(&n, cfg.k_bound, cfg.max_paths);
        let mut tp = TpGreed::with_paths(&n, cfg, paths);
        tp.establish_ready_paths();
        tp.run_incremental().unwrap();
        assert!(!tp.test_points.is_empty(), "the run must exercise re-evaluation");
        let lists = tp.path_watchers.iter().chain(&tp.net_watchers).chain(&tp.gate_watchers);
        for list in lists {
            let mut live: Vec<u32> = Vec::new();
            for e in list {
                match *e {
                    WatchEntry::Cand(cand, epoch) => {
                        if tp.watch_epoch[cand as usize] == epoch {
                            live.push(cand);
                        }
                    }
                    WatchEntry::Group(gid, mask) => {
                        let lanes = &tp.watch_groups[gid as usize];
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros() as usize;
                            m &= m - 1;
                            let (cand, epoch) = lanes[lane];
                            if tp.watch_epoch[cand as usize] == epoch {
                                live.push(cand);
                            }
                        }
                    }
                }
            }
            let before = live.len();
            live.sort_unstable();
            live.dedup();
            assert_eq!(live.len(), before, "duplicate live watcher entries");
        }
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use tpi_workloads::{generate, CircuitSpec, StructureClass};

    fn workload(seed: u64) -> tpi_netlist::Netlist {
        generate(&CircuitSpec {
            name: format!("cfg{seed}"),
            inputs: 6,
            outputs: 3,
            ffs: 20,
            target_gates: 80,
            structure: StructureClass::mixed(0.6, 4, 3, 1),
            seed,
        })
    }

    /// Raising `gain_bound` can only reduce the number of insertions:
    /// every candidate accepted at a higher bound is accepted at a lower
    /// one too (the greedy sequences share a prefix until the higher
    /// bound cuts off).
    #[test]
    fn higher_gain_bound_means_fewer_insertions() {
        let n = workload(3);
        let mut prev = usize::MAX;
        for bound in [0.25, 0.5, 1.0, 2.0] {
            let outcome =
                TpGreed::new(&n, TpGreedConfig { gain_bound: bound, ..TpGreedConfig::default() })
                    .run();
            assert!(
                outcome.test_points.len() <= prev,
                "bound {bound}: {} > {}",
                outcome.test_points.len(),
                prev
            );
            prev = outcome.test_points.len();
        }
    }

    /// Shrinking `K_bound` can only shrink the *candidate* path set.
    /// (The greedy's established count is not monotone — extra candidates
    /// can redirect its choices — but it is always bounded by the
    /// candidates, and every outcome must verify.)
    #[test]
    fn smaller_k_bound_never_enumerates_more_candidates() {
        let n = workload(4);
        let mut prev = 0usize;
        for k in [0usize, 1, 2, 4, 10] {
            let cfg = TpGreedConfig { k_bound: k, ..TpGreedConfig::default() };
            let (outcome, paths) = TpGreed::new(&n, cfg).run_with_paths();
            assert!(paths.len() >= prev, "k {k}: candidate count {} < {}", paths.len(), prev);
            assert!(outcome.scan_paths.len() <= paths.len());
            verify_outcome(&n, &paths, &outcome).unwrap();
            prev = paths.len();
        }
    }

    /// The `threads` knob must never change the outcome: for both gain
    /// strategies, every worker count selects the exact same test-point
    /// sequence and scan paths as the sequential run.
    #[test]
    fn parallel_selections_match_sequential() {
        for seed in [7, 8, 9] {
            let n = workload(seed);
            for update in [GainUpdate::Full, GainUpdate::Incremental] {
                let base = TpGreed::new(
                    &n,
                    TpGreedConfig { gain_update: update, threads: 1, ..TpGreedConfig::default() },
                )
                .run();
                for threads in [2, 4, 0] {
                    let par = TpGreed::new(
                        &n,
                        TpGreedConfig { gain_update: update, threads, ..TpGreedConfig::default() },
                    )
                    .run();
                    assert_eq!(
                        par.test_points, base.test_points,
                        "seed {seed} {update:?} threads {threads}"
                    );
                    assert_eq!(
                        par.scan_paths, base.scan_paths,
                        "seed {seed} {update:?} threads {threads}"
                    );
                    assert_eq!(
                        par.iterations, base.iterations,
                        "seed {seed} {update:?} threads {threads}"
                    );
                }
            }
        }
    }

    /// The sweep engine must never change the outcome: Scalar, Lanes and
    /// Auto select identical test points and scan paths for both gain
    /// strategies, sequentially and with all hardware threads.
    #[test]
    fn sweep_engines_select_identically() {
        for seed in [7, 8, 9] {
            let n = workload(seed);
            for update in [GainUpdate::Full, GainUpdate::Incremental] {
                let base = TpGreed::new(
                    &n,
                    TpGreedConfig {
                        gain_update: update,
                        sweep_engine: SweepEngine::Scalar,
                        ..TpGreedConfig::default()
                    },
                )
                .run();
                for engine in [SweepEngine::Lanes, SweepEngine::Auto] {
                    for threads in [1, 0] {
                        let alt = TpGreed::new(
                            &n,
                            TpGreedConfig {
                                gain_update: update,
                                sweep_engine: engine,
                                threads,
                                ..TpGreedConfig::default()
                            },
                        )
                        .run();
                        assert_eq!(
                            alt.test_points, base.test_points,
                            "seed {seed} {update:?} {engine:?} threads {threads}"
                        );
                        assert_eq!(
                            alt.scan_paths, base.scan_paths,
                            "seed {seed} {update:?} {engine:?} threads {threads}"
                        );
                        assert_eq!(
                            alt.iterations, base.iterations,
                            "seed {seed} {update:?} {engine:?} threads {threads}"
                        );
                    }
                }
            }
        }
    }

    /// The `max_paths` safety cap truncates enumeration but never breaks
    /// the invariants: the outcome still verifies.
    #[test]
    fn max_paths_cap_degrades_gracefully() {
        let n = workload(5);
        let (outcome, paths) =
            TpGreed::new(&n, TpGreedConfig { max_paths: 8, ..TpGreedConfig::default() })
                .run_with_paths();
        assert!(paths.len() <= 8);
        assert!(paths.truncated() > 0);
        verify_outcome(&n, &paths, &outcome).unwrap();
    }
}
