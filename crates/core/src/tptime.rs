//! TPTIME: timing-driven scan-path design by test point insertion (§IV).
//!
//! To scan a flip-flop whose D input has insufficient slack for a scan
//! multiplexer, the recursive cost functions of Equations 2–4 search the
//! flip-flop's *non-reconvergent fanin region* for the cheapest placement
//! of one MUX (the scan entry, possibly far upstream of the flip-flop,
//! Fig. 4) plus AND/OR test points or primary-input values that sensitize
//! the logic between the MUX and the flip-flop — all on nets whose slack
//! can absorb the inserted gate, so the clock period is untouched.
//!
//! Constants created along the chosen justification are **desired
//! constants** and are protected from later insertions; constants merely
//! implied as a by-product are **side-effect constants** and may be
//! overridden (§IV.A, Fig. 6).

use crate::progress::Progress;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tpi_netlist::Region;
use tpi_netlist::{GateId, GateKind, Netlist, TechLibrary};
use tpi_scan::ChainLink;
use tpi_sim::{Implication, Trit};
use tpi_sta::{ClockConstraint, Sta};

/// One structural action of a [`ScanPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanAction {
    /// Splice a scan multiplexer into the net (the scan entry point).
    InsertMux {
        /// Net to splice at.
        at: GateId,
    },
    /// Splice an AND test point (forces 0 in test mode).
    InsertAnd {
        /// Net to splice at.
        at: GateId,
    },
    /// Splice an OR test point (forces 1 in test mode).
    InsertOr {
        /// Net to splice at.
        at: GateId,
    },
    /// Hold a primary input at a constant in test mode (free).
    AssignPi {
        /// The primary input.
        pi: GateId,
        /// The held value.
        value: Trit,
    },
}

/// A zero-degradation plan to scan one flip-flop.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// The flip-flop being scanned.
    pub ff: GateId,
    /// Structural edits, in application order.
    pub actions: Vec<PlanAction>,
    /// Area cost (library units) of the inserted gates.
    pub area: f64,
    /// Polarity of the scan data from the MUX to the flip-flop.
    pub inverting: bool,
    /// Desired constants `(net, value)` this plan relies on; protected
    /// from later insertions.
    pub desired: Vec<(GateId, Trit)>,
    /// Nets the scan data rides through; must stay non-constant and
    /// unshared.
    pub route: Vec<GateId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Want {
    Scan,
    C0,
    C1,
}

impl Want {
    fn of(v: Trit) -> Want {
        match v {
            Trit::Zero => Want::C0,
            Trit::One => Want::C1,
            Trit::X => unreachable!("constants are always known"),
        }
    }
    fn value(self) -> Trit {
        match self {
            Want::C0 => Trit::Zero,
            Want::C1 => Trit::One,
            Want::Scan => Trit::X,
        }
    }
}

#[derive(Debug, Clone)]
struct Solution {
    cost: f64,
    actions: Vec<PlanAction>,
    desired: Vec<(GateId, Trit)>,
    route: Vec<GateId>,
    inverting: bool,
}

impl Solution {
    fn free(net: GateId, v: Trit) -> Self {
        Solution {
            cost: 0.0,
            actions: vec![],
            desired: vec![(net, v)],
            route: vec![],
            inverting: false,
        }
    }
    fn merge(mut self, other: Solution) -> Self {
        self.cost += other.cost;
        self.actions.extend(other.actions);
        self.desired.extend(other.desired);
        self.route.extend(other.route);
        self.inverting ^= other.inverting;
        self
    }
}

fn better(a: Option<Solution>, b: Option<Solution>) -> Option<Solution> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.cost < x.cost { y } else { x }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The evolving TPTIME state: owns the netlist, the (frozen-clock) STA,
/// the test-mode constant state, and the protections.
///
/// Typical use: [`ScanPlanner::new`], then per flip-flop either
/// [`ScanPlanner::plan_zero_degradation`] + [`ScanPlanner::commit`] or
/// the fallback [`ScanPlanner::scan_conventionally`]; finally
/// [`ScanPlanner::into_parts`] to stitch the chain.
///
/// # Example
///
/// See the `timing_driven_partial_scan` example and
/// `tpi_core::flow::PartialScanFlow` for end-to-end use.
#[derive(Debug)]
pub struct ScanPlanner {
    n: Netlist,
    lib: TechLibrary,
    sta: Sta,
    baseline_delay: f64,
    protected: HashMap<GateId, Trit>,
    route: HashSet<GateId>,
    pi_assign: HashMap<GateId, Trit>,
    values: Vec<Trit>,
    links: Vec<ChainLink>,
    test_points_inserted: usize,
    /// Physically inserted test-point gates with the constant each one
    /// forces, in insertion order (feeds the independent verifier).
    physical_tps: Vec<(GateId, Trit)>,
    /// Per committed plan: the target flip-flop and every gate the plan
    /// inserted (mux and test points), for the region-placement check.
    placements: Vec<(GateId, Vec<GateId>)>,
    /// Dangling-input placeholder wired to every scan mux's d0 pin until
    /// chain stitching rewires it; stays X in test mode so the constant
    /// analysis sees the mux output as (unknown) scan data.
    scan_stub: Option<GateId>,
    /// Run counters (planning attempts, placed test points). Atomic, so
    /// parallel speculative planning over `&ScanPlanner` counts too.
    progress: Arc<Progress>,
}

impl ScanPlanner {
    /// Takes ownership of the netlist, runs the baseline STA (longest
    /// path as the constraint, per the paper's setup) and freezes the
    /// clock.
    ///
    /// # Panics
    /// Panics if the netlist has a combinational cycle.
    pub fn new(n: Netlist, lib: TechLibrary) -> Self {
        let mut sta = Sta::analyze(&n, &lib, ClockConstraint::LongestPath);
        let baseline_delay = sta.circuit_delay();
        sta.freeze_clock();
        let values = compute_values(&n, &HashMap::new());
        ScanPlanner {
            n,
            lib,
            sta,
            baseline_delay,
            protected: HashMap::new(),
            route: HashSet::new(),
            pi_assign: HashMap::new(),
            values,
            links: Vec::new(),
            test_points_inserted: 0,
            physical_tps: Vec::new(),
            placements: Vec::new(),
            scan_stub: None,
            progress: Arc::new(Progress::new()),
        }
    }

    /// Attaches a shared [`Progress`] token for run counters. Planning is
    /// read-only, so the counters are atomic and speculative parallel
    /// planning (see `PartialScanFlow`) counts through a shared
    /// reference; `plans_attempted` is therefore the one counter that may
    /// vary with the worker count.
    pub fn with_progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = progress;
        self
    }

    fn ensure_scan_stub(n: &mut Netlist, slot: &mut Option<GateId>) -> GateId {
        *slot.get_or_insert_with(|| n.add_input("scan_stub"))
    }

    /// The circuit delay before any DFT edit.
    #[inline]
    pub fn baseline_delay(&self) -> f64 {
        self.baseline_delay
    }

    /// The current circuit delay.
    #[inline]
    pub fn current_delay(&self) -> f64 {
        self.sta.circuit_delay()
    }

    /// The evolving netlist.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.n
    }

    /// The current timing view.
    #[inline]
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Chain links committed so far.
    #[inline]
    pub fn links(&self) -> &[ChainLink] {
        &self.links
    }

    /// Primary-input constants required in test mode.
    pub fn pi_assignments(&self) -> Vec<(GateId, Trit)> {
        let mut v: Vec<_> = self.pi_assign.iter().map(|(&k, &x)| (k, x)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Test points physically inserted so far.
    #[inline]
    pub fn test_point_count(&self) -> usize {
        self.test_points_inserted
    }

    /// Physically inserted test-point gates and the constant each one
    /// forces, in insertion order.
    #[inline]
    pub fn physical_test_points(&self) -> &[(GateId, Trit)] {
        &self.physical_tps
    }

    /// Per committed plan: the target flip-flop and the gates the plan
    /// inserted for it. Conventional conversions are not listed — only
    /// region-planned commits, which is exactly what the placement
    /// verifier re-checks against Definition 1.
    #[inline]
    pub fn placements(&self) -> &[(GateId, Vec<GateId>)] {
        &self.placements
    }

    /// True when a conventional scan mux fits the flip-flop's D
    /// connection without touching the clock (the TD-CB selectability
    /// rule of ref. \[7\]).
    pub fn mux_fits_directly(&self, ff: GateId) -> bool {
        let t_mux = self.lib.cell(GateKind::Mux).delay(1.0);
        self.sta.endpoint_slack(&self.n, ff) > t_mux
    }

    /// Searches the flip-flop's non-reconvergent fanin region for a
    /// zero-degradation scan plan (Equations 2–4). Returns `None` when no
    /// such plan exists; the caller then marks the flip-flop, as §IV.B
    /// prescribes.
    pub fn plan_zero_degradation(&self, ff: GateId) -> Option<ScanPlan> {
        debug_assert_eq!(self.n.kind(ff), GateKind::Dff);
        self.progress.add_plans_attempted(1);
        let d = self.n.fanin(ff)[0];
        let region = Region::build(&self.n, d);
        let mut memo: HashMap<(GateId, Want), Option<Solution>> = HashMap::new();
        let sol = self.solve(d, Want::Scan, &region, &mut memo)?;
        // Reject plans whose PI requirements conflict internally or with
        // the accumulated assignment.
        let mut pis: HashMap<GateId, Trit> = self.pi_assign.clone();
        for a in &sol.actions {
            if let PlanAction::AssignPi { pi, value } = *a {
                if let Some(&prev) = pis.get(&pi) {
                    if prev != value {
                        return None;
                    }
                }
                pis.insert(pi, value);
            }
        }
        let mut route = sol.route.clone();
        route.push(d);
        route.sort_unstable();
        route.dedup();
        // A memoized sub-solution can appear in several branches of the
        // same plan (e.g. one shared control pin sensitizing two side
        // inputs): keep the first occurrence of each action so the
        // physical edit happens exactly once.
        let mut seen = HashSet::new();
        let actions: Vec<PlanAction> =
            sol.actions.iter().copied().filter(|a| seen.insert(*a)).collect();
        let plan = ScanPlan {
            ff,
            actions,
            area: sol.cost,
            inverting: sol.inverting,
            desired: sol.desired,
            route,
        };
        // Global validation on a scratch copy: the plan's physical
        // side effects must not disturb any earlier desired constant or
        // put a constant on any scan route (the paper's rule that
        // subsequent insertions never destroy previous efforts).
        if self.plan_globally_consistent(&plan, &pis) {
            Some(plan)
        } else {
            None
        }
    }

    /// Applies `plan` to a clone of the netlist and re-derives the
    /// test-mode constants; checks every protection.
    fn plan_globally_consistent(&self, plan: &ScanPlan, pis: &HashMap<GateId, Trit>) -> bool {
        let mut trial = self.n.clone();
        let mut stub_slot = self.scan_stub;
        let mut renames: HashMap<GateId, GateId> = HashMap::new();
        for action in &plan.actions {
            let ok = match *action {
                PlanAction::InsertMux { at } => {
                    trial.ensure_test_input();
                    let stub = Self::ensure_scan_stub(&mut trial, &mut stub_slot);
                    trial.insert_scan_mux(at, stub).is_ok()
                }
                PlanAction::InsertAnd { at } => match trial.insert_and_test_point(at) {
                    Ok(tp) => {
                        renames.insert(at, tp);
                        true
                    }
                    Err(_) => false,
                },
                PlanAction::InsertOr { at } => match trial.insert_or_test_point(at) {
                    Ok(tp) => {
                        renames.insert(at, tp);
                        true
                    }
                    Err(_) => false,
                },
                PlanAction::AssignPi { .. } => true,
            };
            if !ok {
                return false;
            }
        }
        let values = compute_values(&trial, pis);
        // Earlier desired constants must survive.
        for (&net, &v) in &self.protected {
            if values[net.index()] != v {
                return false;
            }
        }
        // This plan's own desired constants must be realized.
        for &(net, v) in &plan.desired {
            let eff = renames.get(&net).copied().unwrap_or(net);
            if values[eff.index()] != v {
                return false;
            }
        }
        // No constant may land on any scan route, old or new.
        for &r in self.route.iter().chain(plan.route.iter()) {
            if values[r.index()].is_known() {
                return false;
            }
        }
        true
    }

    /// The Eq. 2–4 recursion. `want` selects the equation: `Scan` for
    /// Eq. 2, `C0`/`C1` for Eqs. 3 and 4.
    fn solve(
        &self,
        net: GateId,
        want: Want,
        region: &Region,
        memo: &mut HashMap<(GateId, Want), Option<Solution>>,
    ) -> Option<Solution> {
        if let Some(hit) = memo.get(&(net, want)) {
            return hit.clone();
        }
        let sol = self.solve_uncached(net, want, region, memo);
        memo.insert((net, want), sol.clone());
        sol
    }

    fn solve_uncached(
        &self,
        net: GateId,
        want: Want,
        region: &Region,
        memo: &mut HashMap<(GateId, Want), Option<Solution>>,
    ) -> Option<Solution> {
        let kind = self.n.kind(net);
        let cur = self.values[net.index()];
        let prot = self.protected.get(&net).copied();
        let on_route = self.route.contains(&net);

        if want != Want::Scan {
            let v = want.value();
            // Already carried (desired or side-effect constant of the
            // right polarity): free.
            if cur == v {
                return Some(Solution::free(net, v));
            }
            // A desired constant of the opposite polarity, or a net
            // already carrying scan data, must not be disturbed.
            if prot.is_some_and(|p| p != v) || on_route {
                return None;
            }
        } else {
            // Scan data cannot ride a net another chain element uses, nor
            // a net pinned to a desired constant.
            if on_route || prot.is_some() {
                return None;
            }
        }

        // Case 1 of each equation: splice a gate here if the slack
        // absorbs it (and the net is not protected — checked above).
        let direct: Option<Solution> = {
            let (gk, act): (GateKind, fn(GateId) -> PlanAction) = match want {
                Want::Scan => (GateKind::Mux, |g| PlanAction::InsertMux { at: g }),
                Want::C0 => (GateKind::And, |g| PlanAction::InsertAnd { at: g }),
                Want::C1 => (GateKind::Or, |g| PlanAction::InsertOr { at: g }),
            };
            if self.sta.can_insert(net, gk) {
                let mut s = Solution {
                    cost: self.lib.cell(gk).area,
                    actions: vec![act(net)],
                    desired: vec![],
                    route: vec![],
                    inverting: false,
                };
                match want {
                    Want::Scan => s.route.push(net),
                    _ => s.desired.push((net, want.value())),
                }
                Some(s)
            } else {
                None
            }
        };

        // Recursive cases: only within the non-reconvergent fanin region
        // (Theorem 1 lets us treat slack() as constant there).
        let recursive: Option<Solution> = if !region.single_path(net) {
            None
        } else {
            let fanins: Vec<GateId> = self.n.fanin(net).to_vec();
            match (kind, want) {
                (GateKind::Input, Want::C0 | Want::C1) => {
                    let v = want.value();
                    match self.pi_assign.get(&net) {
                        Some(&p) if p != v => None,
                        _ => Some(Solution {
                            cost: 0.0,
                            actions: vec![PlanAction::AssignPi { pi: net, value: v }],
                            desired: vec![(net, v)],
                            route: vec![],
                            inverting: false,
                        }),
                    }
                }
                (GateKind::Const0, Want::C0) | (GateKind::Const1, Want::C1) => {
                    Some(Solution::free(net, want.value()))
                }
                (GateKind::Inv, w) => {
                    let inner = match w {
                        Want::Scan => Want::Scan,
                        Want::C0 => Want::C1,
                        Want::C1 => Want::C0,
                    };
                    self.solve(fanins[0], inner, region, memo).map(|mut s| {
                        if w == Want::Scan {
                            s.inverting = !s.inverting;
                            s.route.push(net);
                        } else {
                            s.desired.push((net, w.value()));
                        }
                        s
                    })
                }
                (GateKind::Buf, w) => self.solve(fanins[0], w, region, memo).map(|mut s| {
                    if w == Want::Scan {
                        s.route.push(net);
                    } else {
                        s.desired.push((net, w.value()));
                    }
                    s
                }),
                (GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor, Want::Scan) => {
                    let sens = Trit::from(!kind.controlling_value().expect("and/or family"));
                    let mut best: Option<Solution> = None;
                    for (j, &fj) in fanins.iter().enumerate() {
                        let Some(ride) = self.solve(fj, Want::Scan, region, memo) else { continue };
                        let mut total = Some(ride);
                        for (k, &fk) in fanins.iter().enumerate() {
                            if k == j {
                                continue;
                            }
                            total = match (total, self.solve(fk, Want::of(sens), region, memo)) {
                                (Some(t), Some(s)) => Some(t.merge(s)),
                                _ => None,
                            };
                        }
                        best = better(best, total);
                    }
                    best.map(|mut s| {
                        if kind.inverts() {
                            s.inverting = !s.inverting;
                        }
                        s.route.push(net);
                        s
                    })
                }
                (GateKind::Xor | GateKind::Xnor, Want::Scan) => {
                    // The side value picks the polarity: XOR with side 0
                    // buffers, with side 1 inverts (XNOR is the mirror).
                    let mut best: Option<Solution> = None;
                    for (j, &fj) in fanins.iter().enumerate() {
                        let Some(ride) = self.solve(fj, Want::Scan, region, memo) else { continue };
                        let fk = fanins[1 - j];
                        for side in [Trit::Zero, Trit::One] {
                            let Some(cst) = self.solve(fk, Want::of(side), region, memo) else {
                                continue;
                            };
                            let mut t = ride.clone().merge(cst);
                            let flips = (side == Trit::One) ^ (kind == GateKind::Xnor);
                            if flips {
                                t.inverting = !t.inverting;
                            }
                            best = better(best, Some(t));
                        }
                    }
                    best.map(|mut s| {
                        s.route.push(net);
                        s
                    })
                }
                (GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor, w) => {
                    let v = w.value();
                    let ctrl = Trit::from(kind.controlling_value().expect("and/or family"));
                    let out_for_ctrl = if kind.inverts() { !ctrl } else { ctrl };
                    let sol = if v == out_for_ctrl {
                        // One controlling input suffices: pick cheapest.
                        let mut best: Option<Solution> = None;
                        for &f in &fanins {
                            best = better(best, self.solve(f, Want::of(ctrl), region, memo));
                        }
                        best
                    } else {
                        // Every input must be sensitizing.
                        let mut total = Some(Solution {
                            cost: 0.0,
                            actions: vec![],
                            desired: vec![],
                            route: vec![],
                            inverting: false,
                        });
                        for &f in &fanins {
                            total = match (total, self.solve(f, Want::of(!ctrl), region, memo)) {
                                (Some(t), Some(s)) => Some(t.merge(s)),
                                _ => None,
                            };
                        }
                        total
                    };
                    sol.map(|mut s| {
                        s.desired.push((net, v));
                        s
                    })
                }
                (GateKind::Xor | GateKind::Xnor, w) => {
                    let vwant = w.value();
                    let mut best: Option<Solution> = None;
                    for first in [Trit::Zero, Trit::One] {
                        let second = match kind {
                            GateKind::Xor => first.xor(vwant),
                            _ => !first.xor(vwant),
                        };
                        let t = match (
                            self.solve(fanins[0], Want::of(first), region, memo),
                            self.solve(fanins[1], Want::of(second), region, memo),
                        ) {
                            (Some(a), Some(b)) => Some(a.merge(b)),
                            _ => None,
                        };
                        best = better(best, t);
                    }
                    best.map(|mut s| {
                        s.desired.push((net, vwant));
                        s
                    })
                }
                // FLIP-FLOP (Eqs. 2–4 last row), MUX, ports: no recursion.
                _ => None,
            }
        };

        better(direct, recursive)
    }

    /// Applies a plan physically: splices the gates, records protections,
    /// updates timing incrementally, recomputes the test-mode constants
    /// and appends the resulting chain link.
    ///
    /// # Panics
    /// Panics (in debug builds) if the committed plan fails its own
    /// post-conditions: desired constants not realized or clock period
    /// degraded.
    pub fn commit(&mut self, plan: &ScanPlan) -> ChainLink {
        let mut mux: Option<GateId> = None;
        let mut inserted: Vec<GateId> = Vec::new();
        // Net translation: inserting a gate at `net` moves the constant
        // seen by consumers to the new gate's output.
        let mut renames: HashMap<GateId, GateId> = HashMap::new();
        for action in &plan.actions {
            match *action {
                PlanAction::InsertMux { at } => {
                    self.n.ensure_test_input();
                    let stub = Self::ensure_scan_stub(&mut self.n, &mut self.scan_stub);
                    let m = self.n.insert_scan_mux(at, stub).expect("plan nets are valid");
                    self.seed_sta(m, at);
                    mux = Some(m);
                    self.route.insert(m);
                    inserted.push(m);
                }
                PlanAction::InsertAnd { at } => {
                    let tp = self.n.insert_and_test_point(at).expect("plan nets are valid");
                    self.seed_sta(tp, at);
                    renames.insert(at, tp);
                    self.test_points_inserted += 1;
                    self.physical_tps.push((tp, Trit::Zero));
                    inserted.push(tp);
                }
                PlanAction::InsertOr { at } => {
                    let tp = self.n.insert_or_test_point(at).expect("plan nets are valid");
                    self.seed_sta(tp, at);
                    renames.insert(at, tp);
                    self.test_points_inserted += 1;
                    self.physical_tps.push((tp, Trit::One));
                    inserted.push(tp);
                }
                PlanAction::AssignPi { pi, value } => {
                    self.pi_assign.insert(pi, value);
                }
            }
        }
        self.placements.push((plan.ff, inserted));
        self.progress.add_test_points_placed(
            plan.actions
                .iter()
                .filter(|a| matches!(a, PlanAction::InsertAnd { .. } | PlanAction::InsertOr { .. }))
                .count() as u64,
        );
        for &(net, v) in &plan.desired {
            // Splicing a gate at `net` moves the constant consumers see to
            // the new gate's output; protect the effective net.
            let effective = renames.get(&net).copied().unwrap_or(net);
            self.protected.insert(effective, v);
        }
        for &r in &plan.route {
            self.route.insert(r);
        }
        self.values = compute_values(&self.n, &self.pi_assign);
        debug_assert!(self.verify_desired(), "desired constants must hold after commit");
        debug_assert!(
            self.sta.circuit_delay() <= self.baseline_delay + 1e-9,
            "zero-degradation plan must not move the clock: {} -> {}",
            self.baseline_delay,
            self.sta.circuit_delay()
        );
        let link = ChainLink::Mux {
            mux: mux.expect("every scan plan contains exactly one mux"),
            ff: plan.ff,
            inverting: plan.inverting,
        };
        self.links.push(link);
        link
    }

    /// Conventional MUXed-D conversion at the flip-flop's D pin,
    /// regardless of slack (the CB baseline and the minimal-degradation
    /// fallback both use this).
    pub fn scan_conventionally(&mut self, ff: GateId) -> ChainLink {
        self.n.ensure_test_input();
        let stub = Self::ensure_scan_stub(&mut self.n, &mut self.scan_stub);
        let mux =
            self.n.insert_scan_mux_at_pin(ff, 0, stub).expect("flip-flops always have a D pin");
        self.seed_sta(mux, ff);
        self.values = compute_values(&self.n, &self.pi_assign);
        let link = ChainLink::Mux { mux, ff, inverting: false };
        self.links.push(link);
        link
    }

    fn seed_sta(&mut self, new_gate: GateId, spliced_at: GateId) {
        let mut seeds = vec![new_gate, spliced_at];
        seeds.extend(self.n.fanin(new_gate).iter().copied());
        if let Some(t) = self.n.test_input() {
            seeds.push(t);
        }
        if let Some(tb) = self.n.test_input_bar() {
            seeds.push(tb);
        }
        self.sta.update_after_edit(&self.n, &seeds);
    }

    fn verify_desired(&self) -> bool {
        self.protected.iter().all(|(&net, &v)| self.values[net.index()] == v)
    }

    /// Decomposes the planner into the transformed netlist, the chain
    /// links, the final timing view and the PI assignments.
    pub fn into_parts(self) -> (Netlist, Vec<ChainLink>, Sta, Vec<(GateId, Trit)>) {
        let pis = self.pi_assignments();
        (self.n, self.links, self.sta, pis)
    }
}

/// Test-mode constant state: `T = 0` (and therefore `T' = 1`) plus the
/// accumulated PI assignments, propagated through the netlist.
fn compute_values(n: &Netlist, pi_assign: &HashMap<GateId, Trit>) -> Vec<Trit> {
    let mut imp = Implication::new(n);
    if let Some(t) = n.test_input() {
        imp.force(t, Trit::Zero);
    }
    for (&pi, &v) in pi_assign {
        imp.force(pi, v);
    }
    n.gate_ids().map(|g| imp.value(g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::NetlistBuilder;

    /// The paper's Figure 3 shape: a critical path runs through g1/g2
    /// into F2, so a mux directly at F2's D would degrade timing; but
    /// side inputs a (OR-able) and c (via b) have slack, so test points
    /// establish F1 -> g1 -> g2 -> F2 with zero degradation.
    fn fig3_like() -> (Netlist, GateId) {
        let mut b = NetlistBuilder::new("fig3");
        b.input("pi_a");
        b.input("pi_b");
        b.input("crit");
        b.input("d1");
        b.dff("f1", "d1");
        // long critical chain from `crit`
        b.gate(GateKind::Inv, "c1", &["crit"]);
        b.gate(GateKind::Inv, "c2", &["c1"]);
        b.gate(GateKind::Inv, "c3", &["c2"]);
        b.gate(GateKind::Inv, "c4", &["c3"]);
        b.gate(GateKind::Inv, "c5", &["c4"]);
        // b -> c side logic (short: has slack)
        b.gate(GateKind::Inv, "cnet", &["pi_b"]);
        // g1 = OR(f1, a-side) ; g2 = AND(g1, cnet, critical)
        b.gate(GateKind::Or, "g1", &["f1", "pi_a"]);
        b.gate(GateKind::And, "g2", &["g1", "cnet", "c5"]);
        b.dff("f2", "g2");
        b.output("o", "f2");
        let n = b.finish().unwrap();
        let f2 = n.find("f2").unwrap();
        (n, f2)
    }

    #[test]
    fn conventional_mux_fits_when_slack_allows() {
        let mut b = NetlistBuilder::new("t");
        b.input("d");
        b.input("crit");
        b.dff("fa", "d");
        // make a long path elsewhere so `fa`'s D has slack
        b.gate(GateKind::Inv, "i1", &["crit"]);
        b.gate(GateKind::Inv, "i2", &["i1"]);
        b.gate(GateKind::Inv, "i3", &["i2"]);
        b.gate(GateKind::Inv, "i4", &["i3"]);
        b.dff("fb", "i4");
        b.output("o", "fb");
        let n = b.finish().unwrap();
        let fa = n.find("fa").unwrap();
        let fb = n.find("fb").unwrap();
        let planner = ScanPlanner::new(n, TechLibrary::paper());
        assert!(planner.mux_fits_directly(fa));
        assert!(!planner.mux_fits_directly(fb), "fb's D is the critical endpoint");
    }

    #[test]
    fn zero_degradation_plan_exists_for_fig3() {
        let (n, f2) = fig3_like();
        let planner = ScanPlanner::new(n, TechLibrary::paper());
        assert!(!planner.mux_fits_directly(f2), "f2 sits at the end of the critical path");
        let plan = planner.plan_zero_degradation(f2).expect("fig3 has a zero-cost route");
        assert!(plan.actions.iter().any(|a| matches!(a, PlanAction::InsertMux { .. })));
        assert!(plan.area > 0.0);
    }

    #[test]
    fn committed_plan_keeps_the_clock() {
        let (n, f2) = fig3_like();
        let mut planner = ScanPlanner::new(n, TechLibrary::paper());
        let d0 = planner.baseline_delay();
        let plan = planner.plan_zero_degradation(f2).unwrap();
        let link = planner.commit(&plan);
        assert!(matches!(link, ChainLink::Mux { ff, .. } if ff == f2));
        assert!(planner.current_delay() <= d0 + 1e-9, "{} > {}", planner.current_delay(), d0);
        planner.netlist().validate().unwrap();
    }

    #[test]
    fn conventional_conversion_may_degrade() {
        let (n, f2) = fig3_like();
        let mut planner = ScanPlanner::new(n, TechLibrary::paper());
        let d0 = planner.baseline_delay();
        planner.scan_conventionally(f2);
        assert!(planner.current_delay() > d0, "mux on the critical D must slow the clock");
    }

    #[test]
    fn desired_constants_block_later_conflicting_plans() {
        let (n, f2) = fig3_like();
        let mut planner = ScanPlanner::new(n, TechLibrary::paper());
        let plan = planner.plan_zero_degradation(f2).unwrap();
        planner.commit(&plan);
        // Re-planning the same FF must fail: its D net is now on a route.
        assert!(planner.plan_zero_degradation(f2).is_none());
    }

    #[test]
    fn pi_assignment_is_used_when_cheapest() {
        // F1 -> OR(f1, pi_a) -> F2, where g1 carries a heavy fanout load
        // (mux there would cost 3.0 slack against 2.8 available) but F1's
        // net has room for the 2.2 mux. The cheapest plan rides from F1
        // and sensitizes the OR's side input by assigning pi_a = 0 for
        // free: exactly one paid gate (the MUX, Fig. 4's transformation).
        let mut b = NetlistBuilder::new("t");
        b.input("pi_a");
        b.input("d1");
        b.input("crit");
        b.dff("f1", "d1");
        b.gate(GateKind::Or, "g1", &["f1", "pi_a"]);
        b.dff("f2", "g1");
        // Extra fanout load on g1 (dangling sinks are fine for STA).
        b.gate(GateKind::Inv, "l1", &["g1"]);
        b.gate(GateKind::Inv, "l2", &["g1"]);
        b.gate(GateKind::Inv, "l3", &["g1"]);
        b.gate(GateKind::Inv, "l4", &["g1"]);
        // Critical path elsewhere: 10 inverters set the clock to 7.0.
        b.gate(GateKind::Inv, "i1", &["crit"]);
        b.gate(GateKind::Inv, "i2", &["i1"]);
        b.gate(GateKind::Inv, "i3", &["i2"]);
        b.gate(GateKind::Inv, "i4", &["i3"]);
        b.gate(GateKind::Inv, "i5", &["i4"]);
        b.gate(GateKind::Inv, "i6", &["i5"]);
        b.gate(GateKind::Inv, "i7", &["i6"]);
        b.gate(GateKind::Inv, "i8", &["i7"]);
        b.gate(GateKind::Inv, "i9", &["i8"]);
        b.gate(GateKind::Inv, "i10", &["i9"]);
        b.dff("f3", "i10");
        b.output("o", "f2");
        b.output("o2", "f3");
        let n = b.finish().unwrap();
        let f2 = n.find("f2").unwrap();
        let f1 = n.find("f1").unwrap();
        let pi_a = n.find("pi_a").unwrap();
        let planner = ScanPlanner::new(n, TechLibrary::paper());
        let plan = planner.plan_zero_degradation(f2).unwrap();
        let mux_area = TechLibrary::paper().cell(GateKind::Mux).area;
        assert!((plan.area - mux_area).abs() < 1e-9, "one mux, PI side free: {}", plan.area);
        assert!(plan
            .actions
            .iter()
            .any(|a| matches!(a, PlanAction::AssignPi { pi, value } if *pi == pi_a && *value == Trit::Zero)));
        assert!(plan
            .actions
            .iter()
            .any(|a| matches!(a, PlanAction::InsertMux { at } if *at == f1)));
    }
}
