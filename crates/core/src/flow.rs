//! End-to-end DFT flows: the paper's two experiments.
//!
//! * [`FullScanFlow`] (§III, Table I): TPGREED + input assignment +
//!   physical insertion + conventional muxes for the uncovered flip-flops
//!   + chain stitching + flush verification.
//! * [`PartialScanFlow`] (§IV, Table III): cycle-breaking partial scan in
//!   three flavors — CB (Lee–Reddy, timing-oblivious), TD-CB (Jou–Cheng,
//!   timing-driven selection) and TPTIME (this paper: test points route
//!   scan paths around the critical logic).

use crate::input_assign::assign_inputs;
use crate::options::FlowOptions;
use crate::paths::enumerate_paths_with;
use crate::phases;
use crate::progress::{CancelKind, Canceled, CounterSnapshot, Progress};
use crate::report::{Table1Row, Table3Row};
use crate::tpgreed::{verify_outcome, GainModel, TpGreed, TpGreedConfig};
use crate::tptime::{ScanPlan, ScanPlanner};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use tpi_lint::{verify_flow, ClaimedPath, DftClaims, Diagnostic, Placement, ReportedCounts};
use tpi_netlist::{GateId, Netlist, NetlistStats, TechLibrary};
use tpi_obs::{FlowMetrics, Recorder};
use tpi_par::Threads;
use tpi_scan::{
    break_cycles, flush_test_inductive, ChainLink, CycleBreakOptions, FlushReport, SGraph,
    ScanChain,
};
use tpi_sim::Trit;
use tpi_sta::{ClockConstraint, Sta};

/// Structured failure of a flow's §V flush verification: the produced
/// chain did not shift the alternating pattern through cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushFailure {
    /// The flip-flop the miscompare was observed at (the chain's
    /// scan-out stage).
    pub gate: GateId,
    /// Its name in the transformed netlist.
    pub gate_name: String,
    /// 0-based position in the scan-out stream.
    pub position: usize,
    /// The bit the chain should have delivered.
    pub expected: Trit,
    /// The value actually observed (possibly `X`).
    pub observed: Trit,
    /// Chain length, for context.
    pub chain_len: usize,
}

impl fmt::Display for FlushFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flush test failed at scan-out bit {} of the {}-FF chain: \
             observed {:?} at {} , expected {:?}",
            self.position, self.chain_len, self.observed, self.gate_name, self.expected
        )
    }
}

/// Errors from the checked flow entry points ([`FullScanFlow::run_checked`],
/// [`PartialScanFlow::run_checked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The run was stopped at an iteration boundary by its [`Progress`]
    /// token (explicit cancellation or an expired deadline).
    Canceled(CancelKind),
    /// The produced scan chain failed the §V flush test; carries the
    /// observing gate and the first miscomparing bit.
    FlushFailed(FlushFailure),
    /// The independent `tpi-lint` verifier found `Error`-severity
    /// problems in the flow's claims (unsensitized paths, illegal test
    /// points, malformed chain, …). Carries every diagnostic the
    /// verifier emitted, warnings included.
    Verification(Vec<Diagnostic>),
    /// The netlist has no flip-flops: a scan chain needs at least one
    /// sequential element to thread, so a combinational-only design has
    /// nothing to scan. A user error, not a flow bug.
    NoFlipFlops,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Canceled(CancelKind::Canceled) => write!(f, "flow canceled"),
            FlowError::Canceled(CancelKind::DeadlineExceeded) => {
                write!(f, "flow deadline exceeded")
            }
            FlowError::FlushFailed(x) => write!(f, "{x}"),
            FlowError::Verification(diags) => {
                let errors =
                    diags.iter().filter(|d| d.severity == tpi_lint::Severity::Error).count();
                write!(f, "flow verification failed with {errors} error(s)")?;
                if let Some(first) = diags.first() {
                    write!(f, ": {}", first.render_text())?;
                }
                Ok(())
            }
            FlowError::NoFlipFlops => {
                write!(f, "netlist has no flip-flops: nothing to thread a scan chain through")
            }
        }
    }
}

/// Runs the independent verifier and promotes `Error`-severity findings
/// to a [`FlowError::Verification`].
fn check_claims(
    original: &Netlist,
    transformed: &Netlist,
    claims: &DftClaims,
) -> Result<(), FlowError> {
    let diags = verify_flow(original, transformed, claims);
    if tpi_lint::has_errors(&diags) {
        return Err(FlowError::Verification(diags));
    }
    Ok(())
}

impl std::error::Error for FlowError {}

impl From<Canceled> for FlowError {
    fn from(c: Canceled) -> Self {
        FlowError::Canceled(c.kind)
    }
}

/// Folds a run's counter deltas into `rec`: the deterministic four under
/// their canonical names, and the speculative `plans_attempted`
/// quarantined as non-deterministic (it may grow with the worker count).
/// Every key is recorded even at zero so the deterministic JSON carries
/// the same fields on every input.
fn record_counters(rec: &Recorder, before: &CounterSnapshot, after: &CounterSnapshot) {
    rec.add("paths_enumerated", after.paths_enumerated.saturating_sub(before.paths_enumerated));
    rec.add(
        "candidates_evaluated",
        after.candidates_evaluated.saturating_sub(before.candidates_evaluated),
    );
    rec.add(
        "test_points_placed",
        after.test_points_placed.saturating_sub(before.test_points_placed),
    );
    rec.add("rounds", after.rounds.saturating_sub(before.rounds));
    rec.add_nd("plans_attempted", after.plans_attempted.saturating_sub(before.plans_attempted));
}

/// Converts a failing [`FlushReport`] into the structured error variant;
/// passing reports yield `Ok(())`.
fn check_flush(n: &Netlist, report: &FlushReport) -> Result<(), FlowError> {
    match report.first_mismatch() {
        None => Ok(()),
        Some(m) => Err(FlowError::FlushFailed(FlushFailure {
            gate: m.gate,
            gate_name: n.gate_name(m.gate).to_string(),
            position: m.position,
            expected: m.expected,
            observed: m.observed,
            chain_len: report.chain_len,
        })),
    }
}

/// The full-scan flow of §III.
#[derive(Debug, Clone)]
pub struct FullScanFlow {
    /// TPGREED parameters.
    pub config: TpGreedConfig,
    /// Technology library (defaults to the paper's).
    pub lib: TechLibrary,
}

impl Default for FullScanFlow {
    fn default() -> Self {
        FullScanFlow { config: TpGreedConfig::default(), lib: TechLibrary::paper() }
    }
}

impl FullScanFlow {
    /// Sets the worker-thread knob (`0` = all hardware threads). Results
    /// are identical for every setting; see [`TpGreedConfig::threads`].
    #[deprecated(since = "0.2.0", note = "use `FlowOptions::with_threads` with `run_with`")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }
}

/// Everything the full-scan flow produces.
#[derive(Debug)]
pub struct FullScanResult {
    /// The Table-I-shaped summary.
    pub row: Table1Row,
    /// The transformed netlist (test points + scan muxes + chain).
    pub netlist: Netlist,
    /// The stitched scan chain.
    pub chain: ScanChain,
    /// Flush-test verdict for the chain (§V).
    pub flush: FlushReport,
    /// Primary-input values required in test mode.
    pub pi_values: Vec<(GateId, Trit)>,
    /// The flow's claims in `tpi-lint` vocabulary, ready for
    /// [`tpi_lint::verify_flow`] (which [`FullScanFlow::run_with`]
    /// invokes automatically).
    pub claims: DftClaims,
    /// Per-phase spans and counters recorded by the run. Populated by
    /// [`FullScanFlow::run_with`]; empty from the unchecked
    /// [`FullScanFlow::run`] convenience wrapper.
    pub metrics: FlowMetrics,
}

impl FullScanFlow {
    /// Runs the flow on (a copy of) `n`.
    ///
    /// # Panics
    /// Panics if the netlist has no flip-flops (a user error — the
    /// fallible [`run_with`](Self::run_with) reports it as
    /// [`FlowError::NoFlipFlops`]), if the netlist is invalid (validate
    /// first), or if internal verification of the produced scan
    /// structure fails — the latter two indicate bugs.
    pub fn run(&self, n: &Netlist) -> FullScanResult {
        assert!(
            !n.dffs().is_empty(),
            "full-scan flow needs at least one flip-flop; use run_with for a fallible check"
        );
        self.run_impl(
            n,
            &Arc::new(Progress::new()),
            &Recorder::new(),
            self.config.threads,
            self.config.gain_model,
        )
        .expect("a fresh Progress never cancels")
    }

    /// The canonical fallible entry point: runs the flow under `opts`.
    ///
    /// [`FlowOptions`] supplies the worker-thread override, the
    /// cooperative [`Progress`] token (cancellation and deadlines stop
    /// the run between rounds), and an optional shared metrics recorder.
    /// The run records one span per phase (see [`crate::phases`]) plus
    /// the deterministic counters, verifies the produced chain — §V
    /// flush test and the independent `tpi-lint` check — and attaches
    /// the finished [`FlowMetrics`] to the result.
    pub fn run_with(&self, n: &Netlist, opts: &FlowOptions) -> Result<FullScanResult, FlowError> {
        if n.dffs().is_empty() {
            return Err(FlowError::NoFlipFlops);
        }
        let progress = opts.resolve_progress();
        let rec = opts.resolve_recorder();
        let threads = opts.threads_or(self.config.threads);
        let gain_model = opts.gain_model().unwrap_or(self.config.gain_model);
        let before = progress.snapshot();
        let outcome = (|| -> Result<FullScanResult, FlowError> {
            let _root = rec.span(phases::FULL_SCAN);
            let r = self.run_impl(n, &progress, &rec, threads, gain_model)?;
            let _v = rec.span(phases::VERIFY);
            check_flush(&r.netlist, &r.flush)?;
            check_claims(n, &r.netlist, &r.claims)?;
            Ok(r)
        })();
        record_counters(&rec, &before, &progress.snapshot());
        let mut r = outcome?;
        r.metrics = rec.finish();
        Ok(r)
    }

    /// Like [`run`](Self::run), but cooperative and fallible.
    #[deprecated(since = "0.2.0", note = "use `run_with` with `FlowOptions::with_progress`")]
    pub fn run_checked(
        &self,
        n: &Netlist,
        progress: &Arc<Progress>,
    ) -> Result<FullScanResult, FlowError> {
        self.run_with(n, &FlowOptions::new().with_progress(Arc::clone(progress)))
    }

    fn run_impl(
        &self,
        n: &Netlist,
        progress: &Arc<Progress>,
        rec: &Recorder,
        threads: usize,
        gain_model: GainModel,
    ) -> Result<FullScanResult, Canceled> {
        progress.checkpoint()?;
        {
            let _s = rec.span(phases::ANALYSIS);
            let analysis = tpi_dfa::NetlistAnalysis::run(&tpi_sim::NetView::new(n));
            for (k, v) in analysis.metrics() {
                rec.add_analysis(k, v);
            }
        }
        progress.checkpoint()?;
        let paths = {
            let _s = rec.span(phases::ENUMERATE_PATHS);
            enumerate_paths_with(
                n,
                self.config.k_bound,
                self.config.max_paths,
                Threads::from_knob(threads),
            )
        };
        let (outcome, paths) = {
            let _s = rec.span(phases::TPGREED);
            let mut cfg = self.config.clone();
            cfg.threads = threads;
            cfg.gain_model = gain_model;
            TpGreed::with_paths(n, cfg, paths)
                .with_progress(Arc::clone(progress))
                .try_run_with_paths()?
        };
        verify_outcome(n, &paths, &outcome).expect("TPGREED must produce a verifiable outcome");
        let assignment = {
            let _s = rec.span(phases::INPUT_ASSIGN);
            assign_inputs(n, &paths, &outcome)
        };

        // --- Physical realization on a working copy. ---
        progress.checkpoint()?;
        let mut work = n.clone();
        let mut physical: Vec<(GateId, Trit)> = Vec::with_capacity(assignment.physical.len());
        {
            let _s = rec.span(phases::INSERT_TEST_POINTS);
            work.ensure_test_input();
            for &(net, v) in &assignment.physical {
                let tp = match v {
                    Trit::Zero => work.insert_and_test_point(net).expect("tpgreed nets are valid"),
                    Trit::One => work.insert_or_test_point(net).expect("tpgreed nets are valid"),
                    Trit::X => unreachable!("test points always carry constants"),
                };
                physical.push((tp, v));
            }
        }

        // --- Chain construction. ---
        // Established paths dictate `from -> to` links; every fragment
        // head (and every uncovered flip-flop) gets a conventional mux.
        let chain = {
            let _s = rec.span(phases::STITCH_CHAIN);
            let succ: HashMap<GateId, (GateId, bool)> = outcome
                .scan_paths
                .iter()
                .map(|&id| {
                    let p = paths.path(id);
                    (p.from, (p.to, p.inverting))
                })
                .collect();
            let has_incoming: HashSet<GateId> =
                outcome.scan_paths.iter().map(|&id| paths.path(id).to).collect();
            let mut links: Vec<ChainLink> = Vec::new();
            let stub = work.add_input("scan_stub");
            for ff in n.dffs() {
                if has_incoming.contains(&ff) {
                    continue; // covered by a test-point path; not a head
                }
                // Head of a fragment: conventional mux entry, then follow
                // the established paths.
                let mux = work
                    .insert_scan_mux_at_pin(ff, 0, stub)
                    .expect("flip-flops always have a D pin");
                links.push(ChainLink::Mux { mux, ff, inverting: false });
                let mut cur = ff;
                while let Some(&(next, inverting)) = succ.get(&cur) {
                    links.push(ChainLink::Path { from: cur, ff: next, inverting });
                    cur = next;
                }
            }
            let chain =
                ScanChain::stitch(&mut work, links).expect("chain fragments are consistent");
            work.validate().expect("transformed netlist must stay valid");
            chain
        };

        // --- Flush verification (§V). ---
        let pi_values = assignment.pi_values.clone();
        let flush = {
            let _s = rec.span(phases::FLUSH_CHECK);
            flush_test_inductive(&work, &chain, &pi_values).expect("test input exists")
        };

        // Timing is the caller's concern (bins wrap the run in their own
        // clock; the job service reports wall time per job); the flow
        // itself reports deterministic per-phase counters via `progress`.
        let row = Table1Row {
            circuit: n.name().to_string(),
            ff_count: n.dffs().len(),
            insertions: outcome.test_points.len(),
            free: assignment.free.len(),
            scan_paths: outcome.scan_paths.len(),
            cpu_seconds: 0.0,
        };
        let claims = DftClaims {
            test_points: outcome.test_points.clone(),
            pi_values: pi_values.clone(),
            paths: outcome
                .scan_paths
                .iter()
                .map(|&id| {
                    let p = paths.path(id);
                    ClaimedPath {
                        from: p.from,
                        to: p.to,
                        gates: p.gates.clone(),
                        side_inputs: p.side_inputs.clone(),
                        inverting: p.inverting,
                    }
                })
                .collect(),
            physical,
            links: chain.links().to_vec(),
            placements: Vec::new(),
            claims_acyclic: true,
            reported: Some(ReportedCounts {
                ff_count: row.ff_count,
                insertions: row.insertions,
                free: row.free,
                scan_paths: row.scan_paths,
            }),
        };
        Ok(FullScanResult {
            row,
            netlist: work,
            chain,
            flush,
            pi_values,
            claims,
            metrics: FlowMetrics::default(),
        })
    }
}

/// Which partial-scan method to run (the three columns of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialScanMethod {
    /// Lee–Reddy cycle breaking, timing-oblivious (paper ref. \[6\]).
    Cb,
    /// Timing-driven cycle breaking (paper ref. \[7\]).
    TdCb,
    /// This paper: cycle breaking + test-point scan routing.
    TpTime,
}

impl PartialScanMethod {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            PartialScanMethod::Cb => "CB",
            PartialScanMethod::TdCb => "TD-CB",
            PartialScanMethod::TpTime => "TPTIME",
        }
    }
}

/// The timing-driven partial-scan flow of §IV.
#[derive(Debug, Clone)]
pub struct PartialScanFlow {
    /// Method under evaluation.
    pub method: PartialScanMethod,
    /// Technology library (defaults to the paper's).
    pub lib: TechLibrary,
    /// Worker threads for TPTIME's per-round zero-degradation planning:
    /// `1` is sequential, `0` uses all hardware threads. Selections are
    /// identical for every setting (planning is read-only; commits happen
    /// on the main thread in cycle-breaker order).
    pub threads: usize,
}

impl PartialScanFlow {
    /// Creates a flow for `method` with the paper's library.
    pub fn new(method: PartialScanMethod) -> Self {
        PartialScanFlow { method, lib: TechLibrary::paper(), threads: 1 }
    }

    /// Sets the worker-thread knob (`0` = all hardware threads).
    #[deprecated(since = "0.2.0", note = "use `FlowOptions::with_threads` with `run_with`")]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// What one `selection_loop` round did: the flip-flop it scanned (if
/// any) and the candidates it rejected before that — only those may be
/// marked, exactly as the sequential early-exit walk would.
#[derive(Debug, Default)]
struct RoundOutcome {
    scanned: Option<GateId>,
    marked: Vec<GateId>,
}

/// Everything a partial-scan run produces.
#[derive(Debug)]
pub struct PartialScanResult {
    /// The Table-III-shaped summary.
    pub row: Table3Row,
    /// The transformed netlist.
    pub netlist: Netlist,
    /// The stitched scan chain (absent when no flip-flop was selected).
    pub chain: Option<ScanChain>,
    /// Flush verdict (absent when no chain exists).
    pub flush: Option<FlushReport>,
    /// Whether every cycle in the s-graph was broken.
    pub acyclic: bool,
    /// The flow's claims in `tpi-lint` vocabulary, ready for
    /// [`tpi_lint::verify_flow`] (which [`PartialScanFlow::run_with`]
    /// invokes automatically).
    pub claims: DftClaims,
    /// Per-phase spans and counters recorded by the run. Populated by
    /// [`PartialScanFlow::run_with`]; empty from the unchecked
    /// [`PartialScanFlow::run`] convenience wrapper.
    pub metrics: FlowMetrics,
}

impl PartialScanFlow {
    /// Runs the selected method on (a copy of) `n`.
    ///
    /// # Panics
    /// Panics on invalid input netlists or internal verification
    /// failures.
    pub fn run(&self, n: &Netlist) -> PartialScanResult {
        self.run_impl(n, &Arc::new(Progress::new()), &Recorder::new(), self.threads)
            .expect("a fresh Progress never cancels")
    }

    /// The canonical fallible entry point: runs the selected method
    /// under `opts`.
    ///
    /// [`FlowOptions`] supplies the worker-thread override, the
    /// cooperative [`Progress`] token (the selection loop checkpoints it
    /// between rounds), and an optional shared metrics recorder. The run
    /// records one span per phase (see [`crate::phases`]) plus the
    /// deterministic counters, verifies the produced chain — §V flush
    /// test and the independent `tpi-lint` check — and attaches the
    /// finished [`FlowMetrics`] to the result.
    pub fn run_with(
        &self,
        n: &Netlist,
        opts: &FlowOptions,
    ) -> Result<PartialScanResult, FlowError> {
        let progress = opts.resolve_progress();
        let rec = opts.resolve_recorder();
        let threads = opts.threads_or(self.threads);
        let before = progress.snapshot();
        let outcome = (|| -> Result<PartialScanResult, FlowError> {
            let _root = rec.span(phases::PARTIAL_SCAN);
            let r = self.run_impl(n, &progress, &rec, threads)?;
            let _v = rec.span(phases::VERIFY);
            if let Some(flush) = &r.flush {
                check_flush(&r.netlist, flush)?;
            }
            check_claims(n, &r.netlist, &r.claims)?;
            Ok(r)
        })();
        record_counters(&rec, &before, &progress.snapshot());
        let mut r = outcome?;
        r.metrics = rec.finish();
        Ok(r)
    }

    /// Like [`run`](Self::run), but cooperative and fallible.
    #[deprecated(since = "0.2.0", note = "use `run_with` with `FlowOptions::with_progress`")]
    pub fn run_checked(
        &self,
        n: &Netlist,
        progress: &Arc<Progress>,
    ) -> Result<PartialScanResult, FlowError> {
        self.run_with(n, &FlowOptions::new().with_progress(Arc::clone(progress)))
    }

    fn run_impl(
        &self,
        n: &Netlist,
        progress: &Arc<Progress>,
        rec: &Recorder,
        threads: usize,
    ) -> Result<PartialScanResult, Canceled> {
        progress.checkpoint()?;
        let baseline_span = rec.span(phases::BASELINE_ANALYSIS);
        let base_stats = NetlistStats::compute(n, &self.lib);
        let base_delay = Sta::analyze(n, &self.lib, ClockConstraint::LongestPath).circuit_delay();
        let sgraph = SGraph::build(n);
        let mut planner =
            ScanPlanner::new(n.clone(), self.lib.clone()).with_progress(Arc::clone(progress));
        drop(baseline_span);

        let selection_span = rec.span(phases::SELECTION);
        match self.method {
            PartialScanMethod::Cb => {
                progress.add_round();
                let r = break_cycles(&sgraph, &CycleBreakOptions::classic());
                progress.add_candidates_evaluated(r.selected.len() as u64);
                for ff in r.selected {
                    progress.checkpoint()?;
                    planner.scan_conventionally(ff);
                }
            }
            PartialScanMethod::TdCb => {
                // Ref. [7]: re-time after each conversion; a flip-flop is
                // selectable only while its D slack absorbs the mux.
                Self::selection_loop(&sgraph, &mut planner, progress, |planner, selected| {
                    let mut round = RoundOutcome::default();
                    for &ff in selected {
                        if planner.mux_fits_directly(ff) {
                            planner.scan_conventionally(ff);
                            round.scanned = Some(ff);
                            break;
                        }
                        round.marked.push(ff);
                    }
                    round
                })?;
            }
            PartialScanMethod::TpTime => {
                // This paper: when the mux does not fit, search the
                // non-reconvergent fanin region for a test-point plan.
                // Planning is read-only, so with threads > 1 the round's
                // candidates are planned concurrently and the walk below
                // commits the first hit in cycle-breaker order — the same
                // flip-flop the sequential early-exit walk would pick.
                let threads = Threads::from_knob(threads);
                // Planning is an early-exit search, so parallelism here is
                // speculation: cap the batch width at the physical core
                // count or the wasted plans can never be repaid.
                let width = threads.speculation_width();
                Self::selection_loop(&sgraph, &mut planner, progress, |planner, selected| {
                    let plans: Vec<Option<ScanPlan>> = if width <= 1 || selected.len() < 2 {
                        let mut plans = Vec::new();
                        for &ff in selected {
                            let plan = planner.plan_zero_degradation(ff);
                            let hit = plan.is_some();
                            plans.push(plan);
                            if hit {
                                break; // later candidates are never inspected
                            }
                        }
                        plans
                    } else {
                        // Speculate one chunk of `width` candidates at a
                        // time: the work wasted past the committed hit is
                        // bounded by one chunk, and each chunk's plans run
                        // on distinct cores.
                        let shared: &ScanPlanner = planner;
                        let mut plans: Vec<Option<ScanPlan>> = Vec::with_capacity(selected.len());
                        for chunk in selected.chunks(width) {
                            let batch = tpi_par::map_indexed(threads, chunk.len(), &(), |_, i| {
                                shared.plan_zero_degradation(chunk[i])
                            });
                            let hit = batch.iter().any(Option::is_some);
                            plans.extend(batch);
                            if hit {
                                break;
                            }
                        }
                        plans
                    };
                    let mut round = RoundOutcome::default();
                    for (i, plan) in plans.into_iter().enumerate() {
                        if let Some(plan) = plan {
                            planner.commit(&plan);
                            round.scanned = Some(selected[i]);
                            break;
                        }
                        round.marked.push(selected[i]);
                    }
                    round
                })?;
            }
        }
        drop(selection_span);

        let scanned: Vec<GateId> = planner.links().iter().map(|l| l.ff()).collect();
        let acyclic = !sgraph.has_cycle(&scanned);
        let selected = scanned.len();
        let links = planner.links().to_vec();
        let physical = planner.physical_test_points().to_vec();
        let placements: Vec<Placement> = planner
            .placements()
            .iter()
            .map(|(ff, inserted)| Placement { ff: *ff, inserted: inserted.clone() })
            .collect();
        let (mut netlist, _, _, pi_values) = planner.into_parts();

        // The stitch and flush spans open even when no flip-flop was
        // selected, so the span-tree *structure* is input-independent.
        let chain = {
            let _s = rec.span(phases::STITCH_CHAIN);
            if links.is_empty() {
                None
            } else {
                Some(ScanChain::stitch(&mut netlist, links).expect("mux links always stitch"))
            }
        };
        let flush = {
            let _s = rec.span(phases::FLUSH_CHECK);
            chain
                .as_ref()
                .map(|c| flush_test_inductive(&netlist, c, &pi_values).expect("test input exists"))
        };
        netlist.validate().expect("transformed netlist must stay valid");

        let final_span = rec.span(phases::FINAL_ANALYSIS);
        let final_stats = NetlistStats::compute(&netlist, &self.lib);
        let final_delay =
            Sta::analyze(&netlist, &self.lib, ClockConstraint::LongestPath).circuit_delay();
        drop(final_span);
        // As in the full-scan flow, wall-clock timing belongs to callers;
        // the flow reports deterministic counters via `progress`.
        let row = Table3Row {
            circuit: n.name().to_string(),
            method: self.method.label().to_string(),
            selected_ffs: selected,
            area: final_stats.area,
            area_pct: 0.0,
            delay: final_delay,
            delay_pct: 0.0,
            cpu_seconds: 0.0,
        }
        .with_baselines(base_stats.area, base_delay);
        // Scan-path sensitization (TPI101/102) is a TPGREED-vocabulary
        // claim; TPTIME's shift paths are implied by its mux links, so
        // `paths` stays empty here and the verifier exercises the
        // test-point, chain, region and s-graph checks instead.
        let claims = DftClaims {
            test_points: Vec::new(),
            pi_values: pi_values.clone(),
            paths: Vec::new(),
            physical,
            links: chain.as_ref().map(|c| c.links().to_vec()).unwrap_or_default(),
            placements,
            claims_acyclic: acyclic,
            reported: None,
        };
        Ok(PartialScanResult {
            row,
            netlist,
            chain,
            flush,
            acyclic,
            claims,
            metrics: FlowMetrics::default(),
        })
    }

    /// §IV.B's interleaved loop, shared by TD-CB and TPTIME: run the
    /// cycle-breaking selection, let `process_round` attempt a
    /// zero-degradation conversion over the selected flip-flops (it
    /// reports the one it scanned, if any, plus the rejected prefix),
    /// mark the rejects and re-select; when no marked-free selection
    /// remains, fall back to minimal-degradation conventional scan
    /// (largest D slack first).
    fn selection_loop(
        sgraph: &SGraph,
        planner: &mut ScanPlanner,
        progress: &Progress,
        mut process_round: impl FnMut(&mut ScanPlanner, &[GateId]) -> RoundOutcome,
    ) -> Result<(), Canceled> {
        let mut scanned: Vec<GateId> = Vec::new();
        let mut marked: HashSet<GateId> = HashSet::new();
        loop {
            progress.checkpoint()?;
            let remaining = sgraph.without(&scanned);
            if !remaining.has_cycle(&[]) {
                break;
            }
            progress.add_round();
            let r = {
                let marked_view = &marked;
                let opts = CycleBreakOptions::timing_driven(move |ff| !marked_view.contains(&ff));
                break_cycles(&remaining, &opts)
            };
            let round = process_round(planner, &r.selected);
            // Inspected candidates this round = the rejected prefix plus
            // the committed hit (if any) — the same count the sequential
            // early-exit walk makes, so it is thread-count-independent
            // even when TPTIME plans chunks speculatively.
            progress.add_candidates_evaluated(
                (round.marked.len() + usize::from(round.scanned.is_some())) as u64,
            );
            let mut newly_marked = false;
            for ff in round.marked {
                newly_marked |= marked.insert(ff);
            }
            let progressed = round.scanned.is_some();
            if let Some(ff) = round.scanned {
                scanned.push(ff);
            }
            if progressed || newly_marked {
                // Fresh marks change the selectability landscape: let the
                // cycle breaker propose alternates before giving up
                // ("instruct cycle breaking procedure to choose another").
                continue;
            }
            // No zero-degradation selection possible: minimal-degradation
            // fallback — among the flip-flops actually on remaining
            // cycles, scan the one whose D connection has the largest
            // slack (≈ smallest degradation), per §IV.B.
            let candidates: Vec<GateId> = remaining.cyclic_nodes();
            let Some(&victim) = candidates.iter().max_by(|&&a, &&b| {
                let sa = planner.sta().endpoint_slack(planner.netlist(), a);
                let sb = planner.sta().endpoint_slack(planner.netlist(), b);
                sa.partial_cmp(&sb).expect("slacks are finite")
            }) else {
                break; // nothing left to try
            };
            if std::env::var_os("TPI_TRACE").is_some() {
                eprintln!(
                    "[selection_loop] fallback scans {} (D slack {:.2})",
                    planner.netlist().gate_name(victim),
                    planner.sta().endpoint_slack(planner.netlist(), victim)
                );
            }
            planner.scan_conventionally(victim);
            scanned.push(victim);
            marked.remove(&victim);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, NetlistBuilder};

    /// A small circuit with one FF ring (needs breaking) and a FF pair
    /// connected by sensitizable logic (good for test-point paths).
    fn mixed_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("mixed");
        b.input("a");
        b.input("en");
        b.input("d");
        // ring f0 -> f1 -> f0 through inverters
        b.gate(GateKind::Inv, "r0", &["f0"]);
        b.dff("f1", "r0");
        b.gate(GateKind::Inv, "r1", &["f1"]);
        b.dff("f0", "r1");
        // pipeline f2 -> AND(en) -> f3
        b.dff("f2", "d");
        b.gate(GateKind::And, "p0", &["f2", "en"]);
        b.dff("f3", "p0");
        // some combinational depth for timing texture
        b.gate(GateKind::Inv, "x0", &["a"]);
        b.gate(GateKind::Inv, "x1", &["x0"]);
        b.gate(GateKind::And, "x2", &["x1", "f3"]);
        b.output("o", "x2");
        b.output("o1", "f0");
        b.finish().unwrap()
    }

    #[test]
    fn full_scan_flow_produces_verified_chain() {
        let n = mixed_circuit();
        let flow = FullScanFlow::default();
        let r = flow.run(&n);
        assert_eq!(r.row.ff_count, 4);
        assert_eq!(r.chain.len(), 4, "full scan covers every FF");
        assert!(r.flush.passed(), "flush must pass: {:?}", r.flush);
        assert!(r.row.scan_paths >= 1, "f2->f3 (at least) rides through logic");
        assert!(r.row.reduction() > 0.0);
    }

    #[test]
    fn partial_scan_cb_breaks_all_cycles() {
        let n = mixed_circuit();
        let r = PartialScanFlow::new(PartialScanMethod::Cb).run(&n);
        assert!(r.acyclic);
        assert_eq!(r.row.selected_ffs, 1, "one FF breaks the 2-ring");
        if let Some(f) = &r.flush {
            assert!(f.passed());
        }
    }

    #[test]
    fn partial_scan_methods_are_ordered_on_delay() {
        let n = mixed_circuit();
        let cb = PartialScanFlow::new(PartialScanMethod::Cb).run(&n);
        let td = PartialScanFlow::new(PartialScanMethod::TdCb).run(&n);
        let tp = PartialScanFlow::new(PartialScanMethod::TpTime).run(&n);
        assert!(cb.acyclic && td.acyclic && tp.acyclic);
        // The paper's headline ordering: TPTIME's delay never exceeds
        // TD-CB's, which never exceeds CB's... on circuits where it
        // matters. Here we only require TPTIME to be no worse than CB.
        assert!(tp.row.delay <= cb.row.delay + 1e-9);
        assert!(td.row.delay <= cb.row.delay + 1e-9);
    }

    #[test]
    fn tptime_flush_passes() {
        let n = mixed_circuit();
        let r = PartialScanFlow::new(PartialScanMethod::TpTime).run(&n);
        assert!(r.acyclic);
        let f = r.flush.expect("a chain exists");
        assert!(f.passed(), "{:?} vs {:?}", f.observed, f.expected);
    }

    #[test]
    fn threads_knob_never_changes_flow_results() {
        let n = mixed_circuit();
        let base_full = FullScanFlow::default().run(&n);
        let base_tp = PartialScanFlow::new(PartialScanMethod::TpTime).run(&n);
        for threads in [2, 0] {
            let opts = FlowOptions::new().with_threads(threads);
            let full = FullScanFlow::default().run_with(&n, &opts).expect("flow succeeds");
            assert_eq!(full.row.insertions, base_full.row.insertions);
            assert_eq!(full.row.scan_paths, base_full.row.scan_paths);
            assert_eq!(full.pi_values, base_full.pi_values);
            let tp = PartialScanFlow::new(PartialScanMethod::TpTime)
                .run_with(&n, &opts)
                .expect("flow succeeds");
            assert_eq!(tp.row.selected_ffs, base_tp.row.selected_ffs);
            assert!((tp.row.delay - base_tp.row.delay).abs() < 1e-12);
            assert!((tp.row.area - base_tp.row.area).abs() < 1e-12);
        }
    }

    #[test]
    fn canceled_progress_stops_flows_at_the_first_checkpoint() {
        let n = mixed_circuit();
        let progress = Arc::new(Progress::new());
        progress.cancel();
        let opts = FlowOptions::new().with_progress(Arc::clone(&progress));
        let full = FullScanFlow::default().run_with(&n, &opts);
        assert!(matches!(full, Err(FlowError::Canceled(CancelKind::Canceled))));
        let tp = PartialScanFlow::new(PartialScanMethod::TpTime).run_with(&n, &opts);
        assert!(matches!(tp, Err(FlowError::Canceled(CancelKind::Canceled))));
    }

    #[test]
    fn run_with_accumulates_deterministic_counters() {
        let n = mixed_circuit();
        let progress = Arc::new(Progress::new());
        let r = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new().with_progress(Arc::clone(&progress)))
            .expect("flow succeeds");
        let snap = progress.snapshot();
        assert!(snap.paths_enumerated > 0);
        assert!(snap.candidates_evaluated > 0);
        assert_eq!(snap.test_points_placed as usize, r.row.insertions);
        // The same numbers land in the result's metrics.
        assert_eq!(r.metrics.counter("paths_enumerated"), snap.paths_enumerated);
        assert_eq!(r.metrics.counter("test_points_placed"), snap.test_points_placed);

        // The thread knob must not change any deterministic counter.
        let p2 = Arc::new(Progress::new());
        FullScanFlow::default()
            .run_with(&n, &FlowOptions::new().with_threads(2).with_progress(Arc::clone(&p2)))
            .expect("flow succeeds");
        let s2 = p2.snapshot();
        assert_eq!(snap.paths_enumerated, s2.paths_enumerated);
        assert_eq!(snap.candidates_evaluated, s2.candidates_evaluated);
        assert_eq!(snap.test_points_placed, s2.test_points_placed);
        assert_eq!(snap.rounds, s2.rounds);
    }

    #[test]
    fn tptime_counters_are_thread_count_independent() {
        let n = mixed_circuit();
        let a = PartialScanFlow::new(PartialScanMethod::TpTime)
            .run_with(&n, &FlowOptions::new())
            .expect("flow runs")
            .metrics;
        let b = PartialScanFlow::new(PartialScanMethod::TpTime)
            .run_with(&n, &FlowOptions::new().with_threads(4))
            .expect("flow runs")
            .metrics;
        assert_eq!(a.counter("candidates_evaluated"), b.counter("candidates_evaluated"));
        assert_eq!(a.counter("test_points_placed"), b.counter("test_points_placed"));
        assert_eq!(a.counter("rounds"), b.counter("rounds"));
        // The whole deterministic section — structure and counters — is
        // byte-identical across thread counts.
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        // `plans_attempted` is the documented exception: speculation may
        // attempt extra plans past the committed hit, so it lives in the
        // non-deterministic section and is only bounded below.
        assert!(b.nd_counters["plans_attempted"] >= a.nd_counters["plans_attempted"]);
    }

    #[test]
    fn run_with_records_every_phase_exactly_once() {
        let n = mixed_circuit();
        let full = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new())
            .expect("flow succeeds")
            .metrics;
        assert_eq!(full.span_names(), crate::phases::full_scan());
        let tp = PartialScanFlow::new(PartialScanMethod::TpTime)
            .run_with(&n, &FlowOptions::new())
            .expect("flow succeeds")
            .metrics;
        assert_eq!(tp.span_names(), crate::phases::partial_scan());
    }

    #[test]
    fn full_scan_metrics_carry_a_deterministic_analysis_section() {
        let n = mixed_circuit();
        let a = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new())
            .expect("flow succeeds")
            .metrics;
        assert!(a.analysis_value("scoap_cc_max") > 0, "SCOAP ran on the base netlist");
        assert!(a.analysis_value("xreach_sources") > 0, "the circuit has flip-flops");
        assert!(a.deterministic_json().contains(r#""analysis":{"#));
        let b = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new().with_threads(2))
            .expect("flow succeeds")
            .metrics;
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn gain_model_override_reaches_tpgreed_and_stays_deterministic() {
        let n = mixed_circuit();
        let scoap_opts = FlowOptions::new().with_gain_model(GainModel::Scoap);
        let a = FullScanFlow::default().run_with(&n, &scoap_opts).expect("flow succeeds");
        assert!(a.flush.passed());
        let b = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new().with_gain_model(GainModel::Scoap).with_threads(2))
            .expect("flow succeeds");
        assert_eq!(a.row.insertions, b.row.insertions);
        assert_eq!(a.metrics.deterministic_json(), b.metrics.deterministic_json());
    }

    #[test]
    fn run_with_honors_deadlines() {
        let n = mixed_circuit();
        let r = FullScanFlow::default()
            .run_with(&n, &FlowOptions::new().with_deadline(std::time::Duration::ZERO));
        assert!(matches!(r, Err(FlowError::Canceled(CancelKind::DeadlineExceeded))));
    }

    #[test]
    fn combinational_only_design_is_a_typed_error() {
        // No flip-flops means no scan chain to build: the fallible entry
        // reports it instead of panicking in the stitcher (found by the
        // soak fuzzer submitting a pure-combinational BLIF).
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.gate(GateKind::Buf, "y", &["a"]);
        b.output("o", "y");
        let n = b.finish().unwrap();
        let r = FullScanFlow::default().run_with(&n, &FlowOptions::new());
        assert!(matches!(r, Err(FlowError::NoFlipFlops)));
        assert_eq!(
            FlowError::NoFlipFlops.to_string(),
            "netlist has no flip-flops: nothing to thread a scan chain through"
        );
    }

    #[test]
    fn shared_recorder_aggregates_multiple_runs() {
        let n = mixed_circuit();
        let rec = Arc::new(tpi_obs::Recorder::new());
        let opts = FlowOptions::new().with_metrics(Arc::clone(&rec));
        FullScanFlow::default().run_with(&n, &opts).expect("flow succeeds");
        FullScanFlow::default().run_with(&n, &opts).expect("flow succeeds");
        let m = rec.finish();
        assert_eq!(m.span_count(phases::FULL_SCAN), 2, "one root per run");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_forwarders_still_work() {
        let n = mixed_circuit();
        let progress = Arc::new(Progress::new());
        let full = FullScanFlow::default()
            .with_threads(2)
            .run_checked(&n, &progress)
            .expect("forwarder reaches run_with");
        assert!(full.flush.passed());
        let tp = PartialScanFlow::new(PartialScanMethod::TpTime)
            .with_threads(2)
            .run_checked(&n, &Arc::new(Progress::new()))
            .expect("forwarder reaches run_with");
        assert!(tp.acyclic);
    }

    #[test]
    fn acyclic_circuit_needs_no_partial_scan() {
        let mut b = NetlistBuilder::new("pipe");
        b.input("d");
        b.dff("f0", "d");
        b.dff("f1", "f0");
        b.output("o", "f1");
        let n = b.finish().unwrap();
        let r = PartialScanFlow::new(PartialScanMethod::TpTime).run(&n);
        assert!(r.acyclic);
        assert_eq!(r.row.selected_ffs, 0);
        assert!(r.chain.is_none());
        assert!((r.row.delay_pct).abs() < 1e-9);
    }
}
