//! Canonical flow phase names — the single source of truth for the span
//! trees the flows record (DESIGN.md §9 documents the same lists).
//!
//! Each checked flow run records exactly one span per phase, in the
//! order listed by [`full_scan`] / [`partial_scan`]; a phase with
//! nothing to do (e.g. stitching when no flip-flop was selected) still
//! opens its span so the tree *structure* is identical on every input
//! and thread count.

/// Root span of a `FullScanFlow` run.
pub const FULL_SCAN: &str = "full_scan";
/// Static dataflow analysis of the base netlist (`tpi-dfa`: SCOAP,
/// dominators, X reach) feeding the metrics' analysis section.
pub const ANALYSIS: &str = "analysis";
/// FF-to-FF candidate path enumeration (§III.A).
pub const ENUMERATE_PATHS: &str = "enumerate_paths";
/// The TPGREED greedy insertion loop (§III.A/C).
pub const TPGREED: &str = "tpgreed";
/// Free primary-input assignment (§III.B).
pub const INPUT_ASSIGN: &str = "input_assign";
/// Physical AND/OR test-point realization.
pub const INSERT_TEST_POINTS: &str = "insert_test_points";
/// Chain link construction and stitching.
pub const STITCH_CHAIN: &str = "stitch_chain";
/// The §V flush test over the stitched chain.
pub const FLUSH_CHECK: &str = "flush_check";
/// Independent `tpi-lint` verification of the flow's claims.
pub const VERIFY: &str = "verify";

/// Root span of a `PartialScanFlow` run.
pub const PARTIAL_SCAN: &str = "partial_scan";
/// Baseline area/delay analysis and s-graph construction.
pub const BASELINE_ANALYSIS: &str = "baseline_analysis";
/// The cycle-breaking selection loop (CB / TD-CB / TPTIME §IV.B).
pub const SELECTION: &str = "selection";
/// Post-transformation area/delay analysis.
pub const FINAL_ANALYSIS: &str = "final_analysis";

/// Every phase of a checked full-scan run, in recording order (the root
/// first; the rest are its children).
pub fn full_scan() -> &'static [&'static str] {
    &[
        FULL_SCAN,
        ANALYSIS,
        ENUMERATE_PATHS,
        TPGREED,
        INPUT_ASSIGN,
        INSERT_TEST_POINTS,
        STITCH_CHAIN,
        FLUSH_CHECK,
        VERIFY,
    ]
}

/// Every phase of a checked partial-scan run, in recording order (the
/// root first; the rest are its children).
pub fn partial_scan() -> &'static [&'static str] {
    &[PARTIAL_SCAN, BASELINE_ANALYSIS, SELECTION, STITCH_CHAIN, FLUSH_CHECK, FINAL_ANALYSIS, VERIFY]
}
