//! Input assignment: realizing test-point constants for free (§III.B).
//!
//! Before physically inserting AND/OR gates, the flow tries to set up as
//! many of the chosen constants as possible by assigning values at the
//! primary inputs (the paper adopts the algorithm of its ref. \[13\],
//! *cost-free scan*; we implement a greedy backward-justification variant
//! with full conflict checking, which reproduces the small `#free` counts
//! the paper reports).

use crate::paths::PathSet;
use crate::tpgreed::TpGreedOutcome;
use std::collections::HashMap;
use tpi_netlist::{GateId, GateKind, Netlist};
use tpi_sim::{Implication, Trit};

/// Result of [`assign_inputs`].
#[derive(Debug, Clone)]
pub struct InputAssignment {
    /// Primary-input values that must be applied in test mode.
    pub pi_values: Vec<(GateId, Trit)>,
    /// Test points (indices into the outcome's `test_points`) whose
    /// values the PI assignment produces for free — these need no
    /// physical gate. The paper's column `C`.
    pub free: Vec<usize>,
    /// The test points that still require a physical AND/OR gate.
    pub physical: Vec<(GateId, Trit)>,
}

impl InputAssignment {
    /// The paper's `B - C`: gates that must actually be inserted.
    pub fn physical_count(&self) -> usize {
        self.physical.len()
    }
}

/// Budgeted backward justification: find primary-input values that make
/// `net` evaluate to `want`, consistent with `fixed` PI values. Returns
/// the additional PI assignments, or `None`.
fn justify(
    n: &Netlist,
    imp: &Implication<'_>,
    net: GateId,
    want: Trit,
    fixed: &HashMap<GateId, Trit>,
    acc: &mut HashMap<GateId, Trit>,
    budget: &mut u32,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    // Already carries the value (from committed test points upstream).
    if imp.value(net) == want {
        return true;
    }
    if imp.value(net).is_known() {
        return false; // pinned to the opposite value
    }
    let kind = n.kind(net);
    match kind {
        GateKind::Input => {
            if let Some(&v) = fixed.get(&net).or_else(|| acc.get(&net)) {
                return v == want;
            }
            acc.insert(net, want);
            true
        }
        GateKind::Dff | GateKind::Output | GateKind::Mux => false,
        GateKind::Const0 => want == Trit::Zero,
        GateKind::Const1 => want == Trit::One,
        GateKind::Inv => justify(n, imp, n.fanin(net)[0], !want, fixed, acc, budget),
        GateKind::Buf => justify(n, imp, n.fanin(net)[0], want, fixed, acc, budget),
        GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
            let controlling = Trit::from(kind.controlling_value().expect("and/or family"));
            let inverted = kind.inverts();
            let out_for_controlling = if inverted { !controlling } else { controlling };
            if want == out_for_controlling {
                // One controlling input suffices: try each, backtracking.
                for &f in n.fanin(net) {
                    let mut trial = acc.clone();
                    let mut b = *budget;
                    if justify(n, imp, f, controlling, fixed, &mut trial, &mut b) {
                        *acc = trial;
                        *budget = b;
                        return true;
                    }
                }
                false
            } else {
                // Every input must be sensitizing.
                let sensitizing = !controlling;
                for &f in n.fanin(net) {
                    if !justify(n, imp, f, sensitizing, fixed, acc, budget) {
                        return false;
                    }
                }
                true
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // want = a ^ b (XOR) or !(a ^ b) (XNOR): try both splits.
            let (a, b) = (n.fanin(net)[0], n.fanin(net)[1]);
            for first in [Trit::Zero, Trit::One] {
                let need_b = match kind {
                    GateKind::Xor => first.xor(want),
                    _ => !first.xor(want),
                };
                let mut trial = acc.clone();
                let mut bu = *budget;
                if justify(n, imp, a, first, fixed, &mut trial, &mut bu)
                    && justify(n, imp, b, need_b, fixed, &mut trial, &mut bu)
                {
                    *acc = trial;
                    *budget = bu;
                    return true;
                }
            }
            false
        }
    }
}

/// Attempts to realize the outcome's test-point values via primary-input
/// assignments instead of physical gates.
///
/// Greedy, in test-point order: each point is replaced by a PI cube when
/// (a) a consistent justification exists and (b) applying the cube (with
/// the point's own force removed) preserves every other desired constant
/// and keeps every established scan path sensitized and non-constant.
///
/// # Example
///
/// The paper's Figure 2: a single primary input value (e.g. `a = 0`)
/// produces the desired `0` at `t1` for free. See the `figures` binary.
pub fn assign_inputs(n: &Netlist, paths: &PathSet, outcome: &TpGreedOutcome) -> InputAssignment {
    let mut fixed: HashMap<GateId, Trit> = HashMap::new();
    let mut free: Vec<usize> = Vec::new();
    let mut physical: Vec<(GateId, Trit)> = outcome.test_points.clone();

    // One evolving engine: every still-physical test point forced, plus
    // the accepted PI values. Hypotheses are applied and rolled back
    // incrementally with `unforce` — the propagation fixpoint depends
    // only on the forced set, not on force order, so this matches the
    // from-scratch rebuild exactly. (Rebuilding per hypothesis is
    // O(test_points²) propagation and dominated the flow on 200k-gate
    // designs where TPGREED places thousands of points.)
    let mut imp = Implication::new(n);
    for &(net, v) in &physical {
        imp.force(net, v);
    }

    for (idx, &(net, want)) in outcome.test_points.iter().enumerate() {
        let Some(pos) = physical.iter().position(|&(g, v)| (g, v) == (net, want)) else {
            continue;
        };
        // Hypothesis: drop this physical point, justify through PIs.
        let dropped = physical.remove(pos);
        imp.unforce(net);
        let mut acc = HashMap::new();
        let mut budget = 512;
        let mut applied: Vec<GateId> = Vec::new();
        let mut ok = justify(n, &imp, net, want, &fixed, &mut acc, &mut budget);
        if ok {
            for (&pi, &v) in &acc {
                imp.force(pi, v);
                applied.push(pi);
            }
            // Validate the full consequence set.
            ok = imp.value(net) == want && consistent(n, paths, outcome, &physical, &imp);
        }
        if ok {
            fixed.extend(acc);
            free.push(idx);
        } else {
            for pi in applied {
                imp.unforce(pi);
            }
            imp.force(net, want);
            physical.insert(pos, dropped);
        }
    }

    InputAssignment { pi_values: fixed.into_iter().collect(), free, physical }
}

/// Checks that the trial state still realizes every remaining test point
/// and keeps every established path alive.
fn consistent(
    n: &Netlist,
    paths: &PathSet,
    outcome: &TpGreedOutcome,
    physical: &[(GateId, Trit)],
    trial: &Implication<'_>,
) -> bool {
    for &(net, v) in physical {
        if trial.value(net) != v {
            return false;
        }
    }
    for &id in &outcome.scan_paths {
        let p = paths.path(id);
        if trial.value(p.from).is_known() {
            return false;
        }
        if p.gates.iter().any(|&g| trial.value(g).is_known()) {
            return false;
        }
        for c in &p.side_inputs {
            let sens = n.kind(c.sink).sensitizing_value().map(Trit::from);
            if Some(trial.value(c.source)) != sens {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::enumerate_paths;
    use crate::tpgreed::{TpGreed, TpGreedConfig};
    use tpi_netlist::NetlistBuilder;

    /// Figure-1-like circuit where the single needed constant is directly
    /// a primary input: everything should come out free.
    fn pi_controlled() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.input("x");
        b.input("d1");
        b.dff("f1", "d1");
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "x"]);
        b.dff("f2", "g1");
        b.output("o", "f2");
        b.finish().unwrap()
    }

    #[test]
    fn pi_constant_is_free() {
        let n = pi_controlled();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert_eq!(outcome.test_points.len(), 1);
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let ia = assign_inputs(&n, &paths, &outcome);
        assert_eq!(ia.free.len(), 1, "x = 0 realizes the constant for free");
        assert_eq!(ia.physical_count(), 0);
        let x = n.find("x").unwrap();
        assert!(ia.pi_values.contains(&(x, Trit::Zero)));
    }

    /// Constant needed at a net fed only by a flip-flop: not justifiable.
    #[test]
    fn ff_fed_constant_stays_physical() {
        let mut b = NetlistBuilder::new("t");
        b.input("d1");
        b.input("d3");
        b.dff("f1", "d1");
        b.dff("f3", "d3");
        // side input of the OR is f3's output: no PI can justify it
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "f3"]);
        b.dff("f2", "g1");
        b.output("o", "f2");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        assert!(!outcome.test_points.is_empty());
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let ia = assign_inputs(&n, &paths, &outcome);
        assert_eq!(ia.free.len(), 0);
        assert_eq!(ia.physical_count(), outcome.test_points.len());
    }

    /// The paper's Figure 2 shape: two test points; one can be set up by
    /// a PI, the other not (conflicting requirements on the same input).
    #[test]
    fn conflicting_requirements_leave_one_physical() {
        // t1 wants AND(a, b') = 0 — a = 0 works.
        // t2 wants OR(a', c) = 1 where a' = NOT(a) — a = 0 also works
        //    (a' = 1). Different nets, same PI, compatible: both free.
        let mut b = NetlistBuilder::new("fig2ish");
        b.input("a");
        b.input("d1");
        b.input("d3");
        b.dff("f1", "d1");
        b.dff("f3", "d3");
        b.gate(tpi_netlist::GateKind::Inv, "abar", &["a"]);
        b.gate(tpi_netlist::GateKind::Or, "g1", &["f1", "a"]);
        b.dff("f2", "g1");
        b.gate(tpi_netlist::GateKind::And, "g2", &["f3", "abar"]);
        b.dff("f4", "g2");
        b.output("o1", "f2");
        b.output("o2", "f4");
        let n = b.finish().unwrap();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let ia = assign_inputs(&n, &paths, &outcome);
        // a = 0 gives g1's side 0 (sensitizing for OR) but abar = 1 is
        // CONTROLLING for nothing... for AND side input sensitizing is 1:
        // abar = 1 sensitizes g2. So both constants are realizable from
        // a = 0 and the assignment frees every test point.
        assert_eq!(ia.physical_count() + ia.free.len(), outcome.test_points.len());
        assert!(!ia.free.is_empty());
    }

    #[test]
    fn free_assignment_preserves_established_paths() {
        let n = pi_controlled();
        let outcome = TpGreed::new(&n, TpGreedConfig::default()).run();
        let paths = enumerate_paths(&n, 10, usize::MAX);
        let ia = assign_inputs(&n, &paths, &outcome);
        // Re-verify with PI values + remaining physical points only.
        let mut imp = Implication::new(&n);
        for &(g, v) in &ia.physical {
            imp.force(g, v);
        }
        for &(pi, v) in &ia.pi_values {
            imp.force(pi, v);
        }
        for &id in &outcome.scan_paths {
            let p = paths.path(id);
            for c in &p.side_inputs {
                let sens = n.kind(c.sink).sensitizing_value().map(Trit::from).unwrap();
                assert_eq!(imp.value(c.source), sens);
            }
        }
    }
}
