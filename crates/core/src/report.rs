//! Result rows shaped like the paper's tables.

use std::fmt;

/// One row of the paper's Table I (full-scan test point insertion).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: String,
    /// `A`: number of flip-flops.
    pub ff_count: usize,
    /// `B`: number of test points inserted.
    pub insertions: usize,
    /// `C`: test points realized for free by primary inputs.
    pub free: usize,
    /// `D`: scan paths established through functional logic.
    pub scan_paths: usize,
    /// Wall-clock seconds (the paper reports SPARC-5 CPU seconds; only
    /// relative ordering is comparable).
    pub cpu_seconds: f64,
}

impl Table1Row {
    /// The paper's area-overhead reduction:
    /// `1 - (2(A - D) + (B - C)) / 2A`, with MUX cost 2 and test-point
    /// cost 1.
    ///
    /// ```
    /// use tpi_core::report::Table1Row;
    /// // The paper's s15850 row: A=540, B=137, C=2, D=244 -> 32.7%.
    /// let r = Table1Row { circuit: "s15850".into(), ff_count: 540,
    ///     insertions: 137, free: 2, scan_paths: 244, cpu_seconds: 0.0 };
    /// assert!((r.reduction() - 0.327).abs() < 5e-4);
    /// ```
    pub fn reduction(&self) -> f64 {
        let a = self.ff_count as f64;
        let b = self.insertions as f64;
        let c = self.free as f64;
        let d = self.scan_paths as f64;
        1.0 - (2.0 * (a - d) + (b - c)) / (2.0 * a)
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>6} {:>6} {:>5} {:>7} {:>9.1}% {:>9.1}s",
            self.circuit,
            self.ff_count,
            self.insertions,
            self.free,
            self.scan_paths,
            self.reduction() * 100.0,
            self.cpu_seconds
        )
    }
}

/// One row of the paper's Table II (circuit statistics after delay
/// optimization).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub circuit: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// Cell area (library units).
    pub area: f64,
    /// Longest-path delay (library time units).
    pub delay: f64,
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>5} {:>5} {:>6} {:>10.1} {:>8.1}",
            self.circuit, self.inputs, self.outputs, self.ffs, self.area, self.delay
        )
    }
}

/// One method's entry in the paper's Table III (timing-driven partial
/// scan: CB, TD-CB, TPTIME).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Circuit name.
    pub circuit: String,
    /// Method label ("CB", "TD-CB", "TPTIME").
    pub method: String,
    /// Flip-flops selected for scan.
    pub selected_ffs: usize,
    /// Final cell area.
    pub area: f64,
    /// Area overhead relative to the unscanned circuit, in percent.
    pub area_pct: f64,
    /// Final longest-path delay.
    pub delay: f64,
    /// Delay degradation relative to the unscanned circuit, in percent.
    pub delay_pct: f64,
    /// Wall-clock seconds.
    pub cpu_seconds: f64,
}

impl Table3Row {
    /// Computes the derived percentage fields from baselines.
    pub fn with_baselines(mut self, base_area: f64, base_delay: f64) -> Self {
        self.area_pct =
            if base_area > 0.0 { (self.area - base_area) / base_area * 100.0 } else { 0.0 };
        self.delay_pct =
            if base_delay > 0.0 { (self.delay - base_delay) / base_delay * 100.0 } else { 0.0 };
        self
    }
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<7} {:>5} {:>10.1} {:>6.1}% {:>8.1} {:>6.1}% {:>9.1}s",
            self.circuit,
            self.method,
            self.selected_ffs,
            self.area,
            self.area_pct,
            self.delay,
            self.delay_pct,
            self.cpu_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(a: usize, b: usize, c: usize, d: usize) -> Table1Row {
        Table1Row {
            circuit: "x".into(),
            ff_count: a,
            insertions: b,
            free: c,
            scan_paths: d,
            cpu_seconds: 0.0,
        }
    }

    /// Every Table I row of the paper, recomputed from its raw counts.
    #[test]
    fn paper_table1_reductions_reproduce() {
        let cases = [
            ("s5378", 152, 28, 3, 62, 0.326),
            ("s9234", 135, 35, 1, 57, 0.296),
            ("s13207", 453, 120, 2, 196, 0.302),
            ("s15850", 540, 137, 2, 244, 0.327),
            ("s35932", 1728, 3, 3, 1440, 0.833),
            ("s38417", 1636, 169, 8, 448, 0.225),
            ("s38584", 1294, 164, 1, 1133, 0.813),
            ("bigkey", 224, 115, 3, 112, 0.250),
            ("dsip", 224, 4, 3, 168, 0.748),
            ("mult32a", 32, 31, 1, 31, 0.500),
            ("mult32b", 61, 31, 1, 31, 0.262),
        ];
        for (name, a, b, c, d, expected) in cases {
            let r = row(a, b, c, d).reduction();
            assert!(
                (r - expected).abs() < 6e-3,
                "{name}: computed {r:.3}, paper says {expected:.3}"
            );
        }
    }

    #[test]
    fn zero_paths_zero_free_means_conventional_overhead_plus_points() {
        // With D = 0 and C = 0, reduction is negative when B > 0.
        let r = row(10, 5, 0, 0);
        assert!(r.reduction() < 0.0);
        // And exactly 0 with no insertions at all.
        assert!((row(10, 0, 0, 0).reduction()).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_with_free_points_reaches_one() {
        let r = row(10, 4, 4, 10);
        assert!((r.reduction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table3_percentages() {
        let r = Table3Row {
            circuit: "x".into(),
            method: "CB".into(),
            selected_ffs: 1,
            area: 110.0,
            area_pct: 0.0,
            delay: 21.0,
            delay_pct: 0.0,
            cpu_seconds: 0.0,
        }
        .with_baselines(100.0, 20.0);
        assert!((r.area_pct - 10.0).abs() < 1e-9);
        assert!((r.delay_pct - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rows_render_single_line() {
        let s = row(10, 2, 1, 5).to_string();
        assert_eq!(s.lines().count(), 1);
    }
}
