//! The paper's contribution: **test point insertion that establishes scan
//! paths through combinational logic** (Lin, Marek-Sadowska, Cheng, Lee —
//! DAC 1996).
//!
//! Instead of paying one multiplexer per scanned flip-flop, the technique
//! re-uses existing combinational paths between flip-flops as shift
//! paths. A path is usable once all of its *side inputs* carry
//! sensitizing values in test mode; those values are produced by 2-input
//! AND test points (force 0, gated by the test input `T`), 2-input OR
//! test points (force 1, gated by `T'`), or free primary-input
//! assignments.
//!
//! Crate layout, following the paper's sections:
//!
//! * [`paths`] — FF-to-FF combinational path enumeration bounded by
//!   `K_bound` side inputs, and the sparse path matrix `A` (§III.A);
//! * [`tpgreed`] — the greedy full-scan insertion algorithm with the gain
//!   function of Equation 1 (§III.A), in both full-recompute and
//!   incremental-gain variants (§III.C);
//! * [`input_assign`] — realizing test-point constants for free via
//!   primary-input values (§III.B, in the spirit of ref. \[13\]);
//! * [`region`] — the *non-reconvergent fanin region* (§IV.A, Def. 1);
//! * [`tptime`] — the timing-driven recursive cost functions of
//!   Equations 2–4 with desired/side-effect constant tracking (§IV.A);
//! * [`flow`] — end-to-end flows: [`flow::FullScanFlow`] (Table I) and
//!   [`flow::PartialScanFlow`] running CB / TD-CB / TPTIME (Table III),
//!   both driven through the shared [`FlowOptions`] builder;
//! * [`options`] — [`FlowOptions`]: threads, progress, deadline and
//!   metrics in one place, shared by flows and the job service;
//! * [`phases`] — the canonical span names the flows record into
//!   `tpi-obs` (one span per phase per run);
//! * [`progress`] — the cooperative [`Progress`] hook the flows
//!   checkpoint at iteration boundaries: cancellation, deadlines, and
//!   deterministic per-phase counters;
//! * [`report`] — result rows shaped like the paper's tables.

mod arena;
pub mod flow;
pub mod input_assign;
pub mod options;
pub mod paths;
pub mod phases;
pub mod progress;
/// Non-reconvergent fanin regions, re-exported from `tpi-netlist` (the
/// module moved there so `tpi-lint` can verify placements without a
/// dependency cycle).
pub use tpi_netlist::region;
pub mod report;
pub mod tpgreed;
pub mod tptime;

pub use flow::{FlowError, FlushFailure, FullScanFlow, PartialScanFlow, PartialScanMethod};
pub use input_assign::assign_inputs;
pub use options::FlowOptions;
pub use paths::{
    enumerate_paths, enumerate_paths_with, PathId, PathSet, ScanPathCandidate, Threads,
};
pub use progress::{CancelKind, Canceled, CounterSnapshot, Progress};
pub use report::{Table1Row, Table3Row};
pub use tpgreed::{GainModel, GainUpdate, SweepEngine, TpGreed, TpGreedConfig, TpGreedOutcome};
pub use tpi_netlist::Region;
pub use tpi_obs::{FlowMetrics, Recorder};
pub use tptime::{PlanAction, ScanPlan, ScanPlanner};
