//! Equivalence suite for the word-parallel lane engine (PR6).
//!
//! Three layers of evidence that the 64-lane bit-plane engine is an
//! exact drop-in for 64 scalar `preview_force` round trips:
//!
//! 1. a property test comparing a full 64-lane batch against 64 scalar
//!    previews net-for-net — changes, `frontier()`, per-net values, and
//!    the post-undo state — on randomly generated circuits;
//! 2. a midsize debug-build check that TPGREED selections are identical
//!    across gain-update modes (Full/Incremental), sweep engines
//!    (scalar/lanes) and thread counts;
//! 3. an `#[ignore]`d ≥10k-gate version of (2) that CI runs in release
//!    (see `ci.sh`).

use proptest::prelude::*;
use tpi_core::{GainUpdate, SweepEngine, TpGreed, TpGreedConfig};
use tpi_netlist::{GateId, Netlist};
use tpi_sim::{Implication, LaneEngine, Trit, LANES};
use tpi_workloads::{generate, CircuitSpec, StructureClass};

/// A generated mixed-structure circuit for the property test.
fn prop_circuit(gates: usize, seed: u64) -> Netlist {
    generate(&CircuitSpec {
        name: "lane-equiv".into(),
        inputs: 8,
        outputs: 6,
        ffs: 24,
        target_gates: gates,
        structure: StructureClass::mixed(0.5, 4, 6, 2),
        seed,
    })
}

/// Up to [`LANES`] preview roots: X-valued combinational nets spread
/// across the circuit with an rng-chosen offset, values alternating.
fn pick_roots(n: &Netlist, imp: &Implication<'_>, offset: usize) -> Vec<(GateId, Trit)> {
    let cands: Vec<GateId> =
        n.gate_ids().filter(|&g| n.kind(g).is_combinational() && imp.value(g) == Trit::X).collect();
    if cands.is_empty() {
        return Vec::new();
    }
    let stride = (cands.len() / LANES).max(1);
    (0..LANES.min(cands.len()))
        .map(|lane| {
            let g = cands[(offset + lane * stride) % cands.len()];
            (g, if lane % 2 == 0 { Trit::Zero } else { Trit::One })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One 64-lane batch must match 64 independent scalar previews:
    /// same change set, same values net for net, same `frontier()`,
    /// and an undo that restores the exact committed mirror.
    #[test]
    fn lane_batch_matches_64_scalar_previews(
        gates in 150usize..600,
        seed in 0u64..500,
        offset in 0usize..4096,
    ) {
        let n = prop_circuit(gates, seed);
        let mut imp = Implication::new(&n);
        let roots = pick_roots(&n, &imp, offset);
        prop_assert!(!roots.is_empty());

        let mut lanes = LaneEngine::mirror(&imp);
        lanes.preview_batch(&roots);

        for (lane, &(net, value)) in roots.iter().enumerate() {
            let pv = imp.preview_force(net, value);

            // Net-for-net: every scalar change is visible in the lane's
            // planes with the same value.
            for a in pv.changes() {
                prop_assert_eq!(
                    lanes.lane_value(lane, a.net), a.value,
                    "lane {} net {:?}", lane, a.net
                );
            }
            let mut got = lanes.lane_changes(lane);
            got.sort_unstable_by_key(|a| a.net.index());
            let mut want = pv.changes().to_vec();
            want.sort_unstable_by_key(|a| a.net.index());
            prop_assert_eq!(got, want, "lane {} change set", lane);

            let mut got_f: Vec<usize> =
                lanes.lane_frontier(lane).iter().map(|g| g.index()).collect();
            got_f.sort_unstable();
            let mut want_f: Vec<usize> = pv.frontier().iter().map(|g| g.index()).collect();
            want_f.sort_unstable();
            prop_assert_eq!(got_f, want_f, "lane {} frontier", lane);

            imp.undo_preview(pv);
        }

        // Undo restores the committed mirror on every net and lane.
        lanes.undo_batch();
        for g in n.gate_ids() {
            for lane in [0, 31, 63] {
                prop_assert_eq!(lanes.lane_value(lane, g), imp.value(g));
            }
        }
    }
}

/// Deterministic selection fingerprint of one TPGREED run: test points
/// in insertion order, scan-path endpoints in establishment order, and
/// the iteration count.
type Fingerprint = (Vec<(GateId, Trit)>, Vec<(GateId, GateId)>, usize);

/// Runs TPGREED on `n` under the given mode/engine/threads and returns
/// the deterministic selection fingerprint.
fn selections(
    n: &Netlist,
    gain_update: GainUpdate,
    engine: SweepEngine,
    threads: usize,
) -> Fingerprint {
    let cfg =
        TpGreedConfig { gain_update, sweep_engine: engine, threads, ..TpGreedConfig::default() };
    let (outcome, paths) = TpGreed::new(n, cfg).run_with_paths();
    (outcome.test_points.clone(), outcome.scan_path_endpoints(&paths), outcome.iterations)
}

/// Every (mode, engine, threads) combination must select byte-identical
/// test points and scan paths in the same order.
fn assert_all_agree(n: &Netlist) {
    let reference = selections(n, GainUpdate::Full, SweepEngine::Scalar, 1);
    let variants = [
        (GainUpdate::Incremental, SweepEngine::Scalar, 1),
        (GainUpdate::Full, SweepEngine::Lanes, 1),
        (GainUpdate::Incremental, SweepEngine::Lanes, 1),
        (GainUpdate::Incremental, SweepEngine::Lanes, 2),
        (GainUpdate::Incremental, SweepEngine::Lanes, 0),
        (GainUpdate::Incremental, SweepEngine::Auto, 0),
    ];
    for (mode, engine, threads) in variants {
        assert_eq!(
            selections(n, mode, engine, threads),
            reference,
            "{mode:?}/{engine:?}/threads={threads} diverged from Full/Scalar/1"
        );
    }
}

#[test]
fn engines_and_modes_select_identically_midsize() {
    let n = generate(&CircuitSpec {
        name: "midsize".into(),
        inputs: 12,
        outputs: 10,
        ffs: 120,
        target_gates: 2_000,
        structure: StructureClass::mixed(0.55, 4, 12, 4),
        seed: 17,
    });
    assert_all_agree(&n);
}

/// Release-build version of the equivalence check on a ≥10k-gate
/// deep-cone circuit (the lane engine's target regime). Too slow for
/// the debug tier — `ci.sh` runs it with `--release -- --include-ignored`.
#[test]
#[ignore = "release-only: run via ci.sh or --include-ignored"]
fn engines_and_modes_select_identically_10k() {
    let n = generate(&CircuitSpec {
        name: "deep10k".into(),
        inputs: 40,
        outputs: 40,
        ffs: 250,
        target_gates: 8_000,
        structure: StructureClass::deep_logic(0.5, 4, 25, 6, 24, 0.55),
        seed: 606,
    });
    assert!(n.gate_count() >= 10_000, "workload shrank below 10k gates: {}", n.gate_count());
    assert_all_agree(&n);
}
