//! `tpi-soak` — soak and fuzz the netd cluster under a mixed workload.
//!
//! ```text
//! tpi-soak [--smoke | --seconds N | --minutes N]
//!          [--backends N | --direct | --addr HOST:PORT]
//!          [--gates N] [--seed S] [--workers N] [--threads N]
//!          [--rss-cap MIB] [--no-fuzz] [--bench-dir DIR]
//! ```
//!
//! Modes:
//! * `--smoke` — the CI gate: a fixed-seed ~30 second pass split across
//!   a direct cluster and a 2-backend gateway, small headline design,
//!   fuzz lane on. Exits 1 on any violation.
//! * `--seconds N` / `--minutes N` — one soak of that duration against
//!   the configured cluster (default: 3-backend gateway, 250k-gate
//!   headline design).
//! * `--addr` — attach to an already-running `tpi-netd`/gateway
//!   instead of standing one up (RSS bounding then covers only this
//!   process).
//!
//! Every run prints one `tpi-soak/v1` summary line (per phase for
//! `--smoke`) and any violations to stderr.

use std::process::exit;
use std::time::Duration;
use tpi_soak::{run, ClusterSpec, SoakConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tpi-soak [--smoke | --seconds N | --minutes N] \
         [--backends N | --direct | --addr HOST:PORT] [--gates N] [--seed S] \
         [--workers N] [--threads N] [--rss-cap MIB] [--no-fuzz] [--bench-dir DIR]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    match v.and_then(|v| v.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("tpi-soak: {flag} needs a value");
            usage();
        }
    }
}

fn main() {
    let mut smoke = false;
    let mut duration: Option<Duration> = None;
    let mut cluster: Option<ClusterSpec> = None;
    let mut gates: Option<usize> = None;
    let mut seed: u64 = 0xDAC9_6501;
    let mut workers: usize = 4;
    let mut threads: usize = 0;
    let mut rss_cap_mib: u64 = 8192;
    let mut fuzz = true;
    let mut bench_dir = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seconds" => duration = Some(Duration::from_secs(parse("--seconds", args.next()))),
            "--minutes" => {
                duration = Some(Duration::from_secs(60 * parse::<u64>("--minutes", args.next())))
            }
            "--backends" => cluster = Some(ClusterSpec::Gateway(parse("--backends", args.next()))),
            "--direct" => cluster = Some(ClusterSpec::Direct),
            "--addr" => match args.next() {
                Some(a) => cluster = Some(ClusterSpec::Attach(a)),
                None => usage(),
            },
            "--gates" => gates = Some(parse("--gates", args.next())),
            "--seed" => seed = parse("--seed", args.next()),
            "--workers" => workers = parse("--workers", args.next()),
            "--threads" => threads = parse("--threads", args.next()),
            "--rss-cap" => rss_cap_mib = parse("--rss-cap", args.next()),
            "--no-fuzz" => fuzz = false,
            "--bench-dir" => match args.next() {
                Some(d) => bench_dir = Some(std::path::PathBuf::from(d)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tpi-soak: unknown argument {other}");
                usage();
            }
        }
    }

    let phases: Vec<(ClusterSpec, Duration, usize)> = if smoke {
        if duration.is_some() || cluster.is_some() {
            eprintln!("tpi-soak: --smoke fixes the duration and cluster shape");
            usage();
        }
        // The CI gate: ~30 seconds total, both cluster shapes, a small
        // headline design so the cold flow fits the budget.
        vec![
            (ClusterSpec::Direct, Duration::from_secs(12), gates.unwrap_or(20_000)),
            (ClusterSpec::Gateway(2), Duration::from_secs(12), gates.unwrap_or(20_000)),
        ]
    } else {
        let d = duration.unwrap_or_else(|| {
            eprintln!("tpi-soak: pick --smoke, --seconds N or --minutes N");
            usage();
        });
        vec![(cluster.unwrap_or(ClusterSpec::Gateway(3)), d, gates.unwrap_or(250_000))]
    };

    let mut failed = false;
    for (cluster, duration, gates) in phases {
        let config = SoakConfig {
            duration,
            seed,
            cluster: cluster.clone(),
            gates,
            workers,
            threads,
            rss_cap_mib,
            fuzz,
            bench_dir: bench_dir.clone(),
        };
        eprintln!(
            "tpi-soak: {} for {:.0}s, headline {gates} gates, seed {seed:#x}, fuzz {}",
            cluster.label(),
            duration.as_secs_f64(),
            if fuzz { "on" } else { "off" },
        );
        let summary = run(&config);
        println!("{}", summary.json);
        for v in &summary.violations {
            eprintln!("tpi-soak: VIOLATION: {v}");
        }
        failed |= !summary.passed();
    }
    if failed {
        exit(1);
    }
}
