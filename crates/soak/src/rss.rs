//! Self-measured memory bounding via `/proc/self/status`.
//!
//! The soak asserts its peak resident set stays under a configured cap.
//! Everything — driver threads, every in-process backend, the gateway,
//! the caches — lives in this one process, so `VmRSS` is the whole
//! cluster's footprint (attach mode is the exception and says so in the
//! summary). Sampling is a thread on a short period; `VmHWM` at the end
//! catches any spike the sampler slept through.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Extracts a `kB` field like `VmRSS:    123456 kB` from
/// `/proc/self/status` text, returning mebibytes (rounded up).
pub fn parse_status_mib(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb.div_ceil(1024))
}

/// Current resident set in MiB, or `None` off Linux.
pub fn vm_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_mib(&status, "VmRSS:")
}

/// Peak resident set (`VmHWM`, kernel-tracked high-water mark) in MiB.
pub fn vm_hwm_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_mib(&status, "VmHWM:")
}

/// A sampling thread that tracks peak RSS until stopped.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    peak: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RssSampler {
    /// Starts sampling on `period`.
    pub fn start(period: Duration) -> RssSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(vm_rss_mib().unwrap_or(0)));
        let thread = {
            let (stop, peak) = (Arc::clone(&stop), Arc::clone(&peak));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(mib) = vm_rss_mib() {
                        peak.fetch_max(mib, Ordering::Relaxed);
                    }
                    std::thread::sleep(period);
                }
            })
        };
        RssSampler { stop, peak, thread: Some(thread) }
    }

    /// Stops the sampler and returns the peak MiB observed — the larger
    /// of the sampled maximum and the kernel's `VmHWM`.
    pub fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.peak.load(Ordering::Relaxed).max(vm_hwm_mib().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_fields() {
        let status = "Name:\ttpi-soak\nVmHWM:\t  2048 kB\nVmRSS:\t   1537 kB\n";
        assert_eq!(parse_status_mib(status, "VmRSS:"), Some(2), "1537 kB rounds up to 2 MiB");
        assert_eq!(parse_status_mib(status, "VmHWM:"), Some(2));
        assert_eq!(parse_status_mib(status, "VmPeak:"), None);
    }

    #[test]
    fn live_rss_is_positive_on_linux() {
        if let Some(mib) = vm_rss_mib() {
            assert!(mib > 0, "a running process has resident pages");
            assert!(vm_hwm_mib().unwrap_or(0) >= mib.saturating_sub(1));
        }
    }

    #[test]
    fn sampler_tracks_a_peak() {
        let sampler = RssSampler::start(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        let peak = sampler.finish();
        if vm_rss_mib().is_some() {
            assert!(peak > 0);
        }
    }
}
