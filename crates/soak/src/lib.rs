//! # tpi-soak — industrial-scale soak and fuzz harness for the netd cluster
//!
//! Stands up an in-process `tpi-netd` cluster (a single backend, or N
//! backends behind the cache-affinity gateway, or attaches to an
//! already-running server) and drives it for a configured duration at a
//! controlled, seeded request mix:
//!
//! * **cold** — freshly generated industrial designs, every submission a
//!   guaranteed cache miss;
//! * **warm** — repeats from a fixed design pool, asserting every warm
//!   payload is byte-identical to the first cold result;
//! * **pipeline** — v2 `SubmitMany` streaming batches;
//! * **fuzz** — seeded frame mutants from [`fuzz::mutate`] (truncation,
//!   bit flips, splices, length/ID lies) with coverage tracked as
//!   distinct `(mutation, outcome)` classes, and a liveness probe after
//!   every injection;
//! * **deadline** — jobs armed with a deadline far below their runtime,
//!   which must come back `TimedOut`, never wedge a worker;
//! * **disconnect** — submits whose connection dies mid-job (full and
//!   half frames), which the server must absorb silently.
//!
//! The run *asserts*, not just measures: zero panics process-wide (a
//! panic hook counts every unwind, even caught ones), peak RSS under a
//! configured cap (self-measured from `/proc/self/status` — the whole
//! cluster lives in this process), every completed report
//! `verified == true`, and every warm payload byte-identical to its
//! cold original. Any breach lands in the summary's `violations` and
//! fails the process. Scheduling is seeded: worker `w` of a run with
//! seed `S` draws its lane sequence from `StdRng(S ^ h(w))`, so a
//! failure reproduces from the command line in the summary.

pub mod fuzz;
pub mod rss;

use rand::{Rng, SeedableRng, StdRng};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use tpi_gateway::{Gateway, GatewayConfig, GatewayHandler};
use tpi_net::{
    encode_frame_v2, ClientConfig, ClientError, Connection, NetServer, ServerConfig, ServerHandle,
    SubmitMany, Verb, WireReport, WireRequest,
};
use tpi_serve::{JobService, JobStatus, ServiceConfig};
use tpi_workloads::industrial::{generate_industrial, IndustrialSpec};

/// Frame cap for the whole soak: a 1M-gate BLIF is ~36 MiB, so the
/// default 16 MiB would reject the headline design at the door.
pub const SOAK_MAX_FRAME: u32 = 64 << 20;

/// Which cluster the soak drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterSpec {
    /// One in-process `tpi-netd` over one `JobService`.
    Direct,
    /// N in-process backends behind an in-process gateway.
    Gateway(usize),
    /// An already-running server at this address (not shut down, and
    /// its RSS is not ours to measure).
    Attach(String),
}

impl ClusterSpec {
    /// Stable label for the summary.
    pub fn label(&self) -> String {
        match self {
            ClusterSpec::Direct => "direct".to_string(),
            ClusterSpec::Gateway(n) => format!("gateway-{n}"),
            ClusterSpec::Attach(addr) => format!("attach:{addr}"),
        }
    }
}

/// Everything a soak run needs; [`SoakConfig::smoke`] and the CLI build
/// these.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// How long the mixed-traffic phase runs.
    pub duration: Duration,
    /// Master seed; every worker's schedule derives from it.
    pub seed: u64,
    /// The cluster to stand up (or attach to).
    pub cluster: ClusterSpec,
    /// Headline industrial design size (gates); submitted cold before
    /// the mix starts and warm after it ends, byte-compared.
    pub gates: usize,
    /// Driver threads running the lane mix.
    pub workers: usize,
    /// Worker threads per backend `JobService` (0 = all cores).
    pub threads: usize,
    /// Peak-RSS ceiling in MiB; breaching it is a violation.
    pub rss_cap_mib: u64,
    /// Run the fuzz lane (malformed frames) as part of the mix.
    pub fuzz: bool,
    /// Extra `.bench` circuits folded into the warm pool.
    pub bench_dir: Option<PathBuf>,
}

impl SoakConfig {
    /// The CI smoke shape: ~seconds, a small headline design, fixed
    /// seed, fuzz on.
    pub fn smoke(cluster: ClusterSpec, seconds: u64) -> SoakConfig {
        SoakConfig {
            duration: Duration::from_secs(seconds),
            seed: 0xDAC9_6501,
            cluster,
            gates: 20_000,
            workers: 4,
            threads: 0,
            rss_cap_mib: 8192,
            fuzz: true,
            bench_dir: None,
        }
    }
}

/// A started cluster: the address clients hit, plus whatever in-process
/// pieces must be shut down afterwards.
pub struct Cluster {
    addr: String,
    backends: Vec<(Arc<JobService>, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)>,
    gateway: Option<(Arc<Gateway>, ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)>,
}

impl Cluster {
    /// Stands the requested cluster up (no-op for attach).
    pub fn start(spec: &ClusterSpec, threads: usize) -> std::io::Result<Cluster> {
        let server_config =
            || ServerConfig { max_frame: SOAK_MAX_FRAME, ..ServerConfig::default() };
        let service_config = || ServiceConfig {
            threads,
            // The cold lane mints a distinct payload per op; a small LRU
            // would evict the headline design before its warm check.
            cache_capacity: 8192,
            ..ServiceConfig::default()
        };
        match spec {
            ClusterSpec::Attach(addr) => {
                Ok(Cluster { addr: addr.clone(), backends: Vec::new(), gateway: None })
            }
            ClusterSpec::Direct => {
                let service = Arc::new(JobService::new(service_config()));
                let server = NetServer::bind(server_config(), Arc::clone(&service))?;
                let addr = server.local_addr().to_string();
                let (handle, join) = server.spawn();
                Ok(Cluster { addr, backends: vec![(service, handle, join)], gateway: None })
            }
            ClusterSpec::Gateway(n) => {
                let mut backends = Vec::new();
                let mut addrs = Vec::new();
                for _ in 0..(*n).max(1) {
                    let service = Arc::new(JobService::new(service_config()));
                    let server = NetServer::bind(server_config(), Arc::clone(&service))?;
                    addrs.push(server.local_addr().to_string());
                    let (handle, join) = server.spawn();
                    backends.push((service, handle, join));
                }
                let gateway = Arc::new(Gateway::new(GatewayConfig {
                    backends: addrs,
                    ..GatewayConfig::default()
                }));
                let gw_server = NetServer::bind_with(
                    server_config(),
                    GatewayHandler::new(Arc::clone(&gateway)),
                )?;
                let addr = gw_server.local_addr().to_string();
                let (handle, join) = gw_server.spawn();
                Ok(Cluster { addr, backends, gateway: Some((gateway, handle, join)) })
            }
        }
    }

    /// The address the drivers (and the fuzzer) hit.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Shuts the in-process pieces down and aggregates completed-job
    /// counts across backends. Attach mode leaves the server alone.
    pub fn shutdown(self) -> u64 {
        if let Some((_, handle, join)) = self.gateway {
            handle.shutdown();
            let _ = join.join();
        }
        let mut completed = 0;
        for (service, handle, join) in self.backends {
            handle.shutdown();
            let _ = join.join();
            completed += service.metrics().completed;
        }
        completed
    }
}

/// Monotone counters shared by every worker.
#[derive(Debug, Default)]
pub struct SoakStats {
    /// Ops per lane, indexed by [`Lane`] discriminant.
    pub lane_ops: [AtomicU64; 6],
    /// Reports with `status == Completed`.
    pub completed: AtomicU64,
    /// Reports with `status == TimedOut` (the deadline lane's success).
    pub timed_out: AtomicU64,
    /// Reports with `status == Failed` — always a violation in this mix.
    pub failed: AtomicU64,
    /// Client-level errors outside the disconnect lane.
    pub net_errors: AtomicU64,
    /// Warm submissions whose payload was byte-compared.
    pub warm_checks: AtomicU64,
    /// Warm submissions served from a cache (memory or disk).
    pub warm_hits: AtomicU64,
    /// Fuzz frames injected.
    pub fuzz_injections: AtomicU64,
    /// Process-wide panic count (hook-installed; must end at zero).
    pub panics: AtomicU64,
}

/// The six mix lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Fresh design, guaranteed cache miss.
    Cold = 0,
    /// Pool repeat with byte-identity check.
    Warm = 1,
    /// `SubmitMany` streaming batch.
    Pipeline = 2,
    /// Mutated frame injection.
    Fuzz = 3,
    /// Deadline far below runtime.
    Deadline = 4,
    /// Connection dropped mid-job.
    Disconnect = 5,
}

impl Lane {
    /// Mix order and summary order.
    pub const ALL: [Lane; 6] =
        [Lane::Cold, Lane::Warm, Lane::Pipeline, Lane::Fuzz, Lane::Deadline, Lane::Disconnect];

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Cold => "cold",
            Lane::Warm => "warm",
            Lane::Pipeline => "pipeline",
            Lane::Fuzz => "fuzz",
            Lane::Deadline => "deadline",
            Lane::Disconnect => "disconnect",
        }
    }

    /// Per-mille weights of the mix (fuzz redistributed when off).
    fn weights(fuzz: bool) -> [(Lane, u32); 6] {
        if fuzz {
            [
                (Lane::Cold, 250),
                (Lane::Warm, 300),
                (Lane::Pipeline, 150),
                (Lane::Fuzz, 150),
                (Lane::Deadline, 100),
                (Lane::Disconnect, 50),
            ]
        } else {
            [
                (Lane::Cold, 300),
                (Lane::Warm, 350),
                (Lane::Pipeline, 150),
                (Lane::Fuzz, 0),
                (Lane::Deadline, 150),
                (Lane::Disconnect, 50),
            ]
        }
    }

    /// Seeded draw from the mix.
    fn pick(rng: &mut StdRng, fuzz: bool) -> Lane {
        let weights = Lane::weights(fuzz);
        let total: u32 = weights.iter().map(|&(_, w)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for (lane, w) in weights {
            if roll < w {
                return lane;
            }
            roll -= w;
        }
        Lane::Warm
    }
}

/// One warm-pool design: the BLIF and the first payload it produced.
struct WarmEntry {
    name: String,
    blif: String,
    expected: OnceLock<String>,
}

/// State shared across workers.
struct Shared {
    addr: String,
    stop: AtomicBool,
    fuzz: bool,
    stats: SoakStats,
    violations: Mutex<Vec<String>>,
    warm_pool: Vec<WarmEntry>,
    /// Distinct `(mutation, outcome)` classes the fuzzer has seen.
    coverage: Mutex<BTreeSet<String>>,
    /// Unique-name counter for the cold and deadline lanes.
    fresh: AtomicU64,
    seed: u64,
}

impl Shared {
    fn violation(&self, msg: String) {
        self.violations.lock().expect("violations lock never poisoned").push(msg);
    }
}

/// Final result of a run: the summary JSON plus pass/fail.
pub struct Summary {
    /// Stable single-line JSON (`tpi-soak/v1`).
    pub json: String,
    /// Violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl Summary {
    /// Did every assertion hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the client config every driver uses.
fn client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        max_frame: SOAK_MAX_FRAME,
        io_timeout: Duration::from_secs(600),
        seed,
        ..ClientConfig::default()
    }
}

/// An industrial design rendered to BLIF, sized for lane traffic.
fn fresh_blif(name: &str, gates: usize, seed: u64) -> String {
    let spec = IndustrialSpec::sized(name, gates, seed);
    tpi_netlist::write_blif(&generate_industrial(&spec))
}

/// Checks one report against the soak's contract. `context` names the
/// lane and design for the violation message.
fn check_report(shared: &Shared, context: &str, report: &WireReport) {
    match &report.status {
        JobStatus::Completed => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            if !report.verified {
                shared.violation(format!("{context}: completed report not verified"));
            }
            if report.payload.is_none() {
                shared.violation(format!("{context}: completed report carries no payload"));
            }
        }
        JobStatus::TimedOut => {
            shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
        }
        JobStatus::Canceled => {
            shared.violation(format!("{context}: unexpected cancellation"));
        }
        JobStatus::Failed(msg) => {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            shared.violation(format!("{context}: job failed: {msg}"));
        }
    }
}

/// A per-worker session that transparently reconnects.
struct Driver {
    addr: String,
    config: ClientConfig,
    conn: Option<Connection>,
}

impl Driver {
    fn new(addr: &str, config: ClientConfig) -> Driver {
        Driver { addr: addr.to_string(), config, conn: None }
    }

    fn conn(&mut self) -> Result<&Connection, ClientError> {
        if self.conn.as_ref().is_none_or(Connection::is_dead) {
            self.conn = Some(Connection::open_with(&self.addr, self.config.clone())?);
        }
        Ok(self.conn.as_ref().expect("just set"))
    }

    /// Submit one request and wait for its report.
    fn roundtrip(&mut self, req: &WireRequest) -> Result<WireReport, ClientError> {
        let conn = self.conn()?;
        let ticket = conn.submit(req)?;
        conn.wait(ticket)
    }
}

/// The worker loop: seeded lane picks until the stop flag.
fn worker_loop(shared: &Shared, worker: usize) {
    let wseed = shared.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(wseed);
    let mut driver = Driver::new(&shared.addr, client_config(wseed));
    while !shared.stop.load(Ordering::Relaxed) {
        let lane = Lane::pick(&mut rng, shared.fuzz);
        shared.stats.lane_ops[lane as usize].fetch_add(1, Ordering::Relaxed);
        match lane {
            Lane::Cold => run_cold(shared, &mut driver, &mut rng),
            Lane::Warm => run_warm(shared, &mut driver, &mut rng),
            Lane::Pipeline => run_pipeline(shared, &mut driver, &mut rng),
            Lane::Fuzz => run_fuzz(shared, &mut driver, &mut rng),
            Lane::Deadline => run_deadline(shared, &mut driver, &mut rng),
            Lane::Disconnect => run_disconnect(shared, &mut rng),
        }
    }
}

fn net_error(shared: &Shared, context: &str, e: &ClientError) {
    shared.stats.net_errors.fetch_add(1, Ordering::Relaxed);
    shared.violation(format!("{context}: client error: {e}"));
}

fn run_cold(shared: &Shared, driver: &mut Driver, rng: &mut StdRng) {
    let n = shared.fresh.fetch_add(1, Ordering::Relaxed);
    let gates = 1_200 + rng.gen_range(0..4u64) as usize * 400;
    let blif = fresh_blif(&format!("cold-{n}"), gates, shared.seed.wrapping_add(n));
    match driver.roundtrip(&WireRequest::full_scan(blif)) {
        Ok(report) => {
            check_report(shared, &format!("cold-{n}"), &report);
            if report.status == JobStatus::Completed && report.cache.label() != "cold" {
                shared.violation(format!("cold-{n}: fresh design served from cache"));
            }
        }
        Err(e) => net_error(shared, &format!("cold-{n}"), &e),
    }
}

fn run_warm(shared: &Shared, driver: &mut Driver, rng: &mut StdRng) {
    let entry = &shared.warm_pool[rng.gen_range(0..shared.warm_pool.len())];
    match driver.roundtrip(&WireRequest::full_scan(entry.blif.clone())) {
        Ok(report) => {
            check_report(shared, &entry.name, &report);
            if report.status != JobStatus::Completed {
                return;
            }
            if report.cache.label() != "cold" {
                shared.stats.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            let payload = report.payload.unwrap_or_default();
            match entry.expected.get() {
                None => {
                    // First completion wins; a racing second set is a
                    // byte-identical no-op or a caught divergence below.
                    let _ = entry.expected.set(payload.clone());
                }
                Some(first) => {
                    shared.stats.warm_checks.fetch_add(1, Ordering::Relaxed);
                    if *first != payload {
                        shared.violation(format!(
                            "{}: warm payload diverged from first result ({} vs {} bytes)",
                            entry.name,
                            first.len(),
                            payload.len()
                        ));
                    }
                }
            }
        }
        Err(e) => net_error(shared, &entry.name, &e),
    }
}

fn run_pipeline(shared: &Shared, driver: &mut Driver, rng: &mut StdRng) {
    let count = rng.gen_range(2..=4u32) as usize;
    let reqs: Vec<WireRequest> = (0..count)
        .map(|_| {
            let entry = &shared.warm_pool[rng.gen_range(0..shared.warm_pool.len())];
            WireRequest::full_scan(entry.blif.clone())
        })
        .collect();
    let conn = match driver.conn() {
        Ok(c) => c,
        Err(e) => return net_error(shared, "pipeline", &e),
    };
    match conn.submit_many(&reqs).and_then(|batch| conn.wait_batch(batch)) {
        Ok(reports) => {
            if reports.len() != count {
                shared.violation(format!(
                    "pipeline: batch of {count} answered with {} reports",
                    reports.len()
                ));
            }
            for r in &reports {
                check_report(shared, "pipeline", r);
            }
        }
        Err(e) => net_error(shared, "pipeline", &e),
    }
}

fn run_fuzz(shared: &Shared, driver: &mut Driver, rng: &mut StdRng) {
    // Corpus: valid frames of different shapes, so mutants explore
    // different decode paths.
    let small = encode_frame_v2(Verb::Ping, rng.gen(), b"");
    let submit = encode_frame_v2(
        Verb::Submit,
        rng.gen(),
        &WireRequest::full_scan(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")
            .encode(),
    );
    let many = encode_frame_v2(
        Verb::SubmitMany,
        rng.gen(),
        &SubmitMany { requests: vec![WireRequest::full_scan("bogus")] }.encode(),
    );
    let corpus = [small, submit, many];
    let base = &corpus[rng.gen_range(0..corpus.len())];
    let other = &corpus[rng.gen_range(0..corpus.len())];
    let (mutation, mutant) = fuzz::mutate(rng, base, other);
    let outcome = fuzz::inject(&shared.addr, &mutant, Duration::from_millis(300));
    shared.stats.fuzz_injections.fetch_add(1, Ordering::Relaxed);
    shared
        .coverage
        .lock()
        .expect("coverage lock never poisoned")
        .insert(format!("{mutation:?}/{outcome}"));
    // Liveness: the server must still answer a clean session after
    // swallowing the mutant.
    let alive = driver.conn().and_then(|c| c.ping());
    if let Err(e) = alive {
        // One reconnect attempt — the shared session may itself have
        // been the casualty of a concurrent disconnect test.
        driver.conn = None;
        if let Err(e2) = driver.conn().and_then(|c| c.ping()) {
            shared.violation(format!(
                "fuzz: server unresponsive after {mutation:?} mutant ({e}; retry: {e2})"
            ));
        }
    }
}

fn run_deadline(shared: &Shared, driver: &mut Driver, rng: &mut StdRng) {
    let n = shared.fresh.fetch_add(1, Ordering::Relaxed);
    let gates = 6_000 + rng.gen_range(0..3u64) as usize * 1_000;
    let blif = fresh_blif(&format!("deadline-{n}"), gates, shared.seed.wrapping_add(n));
    let req = WireRequest::full_scan(blif).with_deadline(Duration::from_millis(1));
    match driver.roundtrip(&req) {
        Ok(report) => match report.status {
            JobStatus::TimedOut => {
                shared.stats.timed_out.fetch_add(1, Ordering::Relaxed);
            }
            // A cache-warm or absurdly fast machine may legitimately
            // beat 1 ms; anything else is a contract breach.
            JobStatus::Completed => check_report(shared, &format!("deadline-{n}"), &report),
            _ => check_report(shared, &format!("deadline-{n}"), &report),
        },
        Err(e) => net_error(shared, &format!("deadline-{n}"), &e),
    }
}

fn run_disconnect(shared: &Shared, rng: &mut StdRng) {
    let n = shared.fresh.fetch_add(1, Ordering::Relaxed);
    let blif = fresh_blif(&format!("drop-{n}"), 1_200, shared.seed.wrapping_add(n));
    let frame = encode_frame_v2(Verb::Submit, 1, &WireRequest::full_scan(blif).encode());
    let Ok(mut stream) = std::net::TcpStream::connect(&shared.addr) else {
        // Accept pressure; nothing to assert.
        return;
    };
    let _ = stream.set_nodelay(true);
    // Half the drops cut mid-frame (a torn header/payload), half right
    // after a complete submit (the job runs; its report write fails).
    let cut = if rng.gen_bool(0.5) { rng.gen_range(1..frame.len()) } else { frame.len() };
    let _ = stream.write_all(&frame[..cut]);
    drop(stream);
}

/// Runs the whole soak: cluster up, headline cold, mixed traffic for
/// the duration, headline warm byte-check, assertions, summary.
pub fn run(config: &SoakConfig) -> Summary {
    install_panic_counter();
    let panics_before = panic_count();
    let sampler = rss::RssSampler::start(Duration::from_millis(200));
    let t0 = Instant::now();

    let cluster = match Cluster::start(&config.cluster, config.threads) {
        Ok(c) => c,
        Err(e) => {
            return Summary {
                json: String::new(),
                violations: vec![format!("cluster failed to start: {e}")],
            }
        }
    };

    let mut warm_pool: Vec<WarmEntry> = (0..4)
        .map(|i| WarmEntry {
            name: format!("pool-{i}"),
            blif: fresh_blif(&format!("pool-{i}"), 2_000 + i * 500, config.seed ^ (i as u64 + 1)),
            expected: OnceLock::new(),
        })
        .collect();
    if let Some(dir) = &config.bench_dir {
        match tpi_workloads::iscas::load_bench_dir(dir) {
            Ok(extra) => warm_pool.extend(extra.into_iter().map(|n| WarmEntry {
                name: format!("bench-{}", n.name()),
                blif: tpi_netlist::write_blif(&n),
                expected: OnceLock::new(),
            })),
            Err(e) => {
                return Summary {
                    json: String::new(),
                    violations: vec![format!("--bench-dir: {e}")],
                }
            }
        }
    }

    let shared = Arc::new(Shared {
        addr: cluster.addr().to_string(),
        stop: AtomicBool::new(false),
        fuzz: config.fuzz,
        stats: SoakStats::default(),
        violations: Mutex::new(Vec::new()),
        warm_pool,
        coverage: Mutex::new(BTreeSet::new()),
        fresh: AtomicU64::new(0),
        seed: config.seed,
    });

    // Headline design: cold before the mix, warm after it — the
    // acceptance pair the whole soak brackets.
    let headline = fresh_blif("headline", config.gates, config.seed);
    let mut headline_driver = Driver::new(cluster.addr(), client_config(config.seed));
    let headline_cold = match headline_driver.roundtrip(&WireRequest::full_scan(headline.clone())) {
        Ok(report) => {
            check_report(&shared, "headline-cold", &report);
            report.payload.unwrap_or_default()
        }
        Err(e) => {
            shared.violation(format!("headline-cold: client error: {e}"));
            String::new()
        }
    };
    let headline_cold_secs = t0.elapsed().as_secs_f64();

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|w| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared, w))
        })
        .collect();
    std::thread::sleep(config.duration);
    shared.stop.store(true, Ordering::Relaxed);
    for (w, worker) in workers.into_iter().enumerate() {
        if worker.join().is_err() {
            shared.violation(format!("worker {w} panicked"));
        }
    }

    // Warm headline: must be byte-identical and, with our cache sizing,
    // served from cache.
    match headline_driver.roundtrip(&WireRequest::full_scan(headline)) {
        Ok(report) => {
            check_report(&shared, "headline-warm", &report);
            if report.status == JobStatus::Completed {
                if report.cache.label() == "cold"
                    && !matches!(config.cluster, ClusterSpec::Attach(_))
                {
                    shared.violation("headline-warm: not served from cache".to_string());
                }
                if report.payload.unwrap_or_default() != headline_cold {
                    shared.violation("headline-warm: payload differs from cold run".to_string());
                }
            }
        }
        Err(e) => shared.violation(format!("headline-warm: client error: {e}")),
    }

    let elapsed = t0.elapsed();
    cluster.shutdown();

    let peak_rss = sampler.finish();
    if peak_rss > config.rss_cap_mib {
        shared.violation(format!(
            "peak RSS {peak_rss} MiB exceeds the {} MiB cap",
            config.rss_cap_mib
        ));
    }
    let panics = panic_count() - panics_before;
    shared.stats.panics.store(panics, Ordering::Relaxed);
    if panics > 0 {
        shared.violation(format!("{panics} panic(s) observed process-wide"));
    }

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!("workers joined"));
    let violations = shared.violations.into_inner().expect("violations lock never poisoned");
    let json = render_summary(
        config,
        &shared.stats,
        &shared.coverage.into_inner().expect("coverage lock never poisoned"),
        elapsed,
        headline_cold_secs,
        peak_rss,
        &violations,
    );
    Summary { json, violations }
}

/// Byte-stable single-line summary (`tpi-soak/v1`).
#[allow(clippy::too_many_arguments)]
fn render_summary(
    config: &SoakConfig,
    stats: &SoakStats,
    coverage: &BTreeSet<String>,
    elapsed: Duration,
    headline_cold_secs: f64,
    peak_rss: u64,
    violations: &[String],
) -> String {
    let mut s = String::new();
    s.push_str("{\"schema\":\"tpi-soak/v1\"");
    s.push_str(&format!(",\"mode\":\"{}\"", config.cluster.label()));
    s.push_str(&format!(",\"seed\":{}", config.seed));
    s.push_str(&format!(",\"gates\":{}", config.gates));
    s.push_str(&format!(",\"seconds\":{:.1}", elapsed.as_secs_f64()));
    s.push_str(&format!(",\"headline_cold_secs\":{headline_cold_secs:.2}"));
    s.push_str(",\"lanes\":{");
    for (i, lane) in Lane::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\"{}\":{}",
            lane.label(),
            stats.lane_ops[*lane as usize].load(Ordering::Relaxed)
        ));
    }
    s.push('}');
    let completed = stats.completed.load(Ordering::Relaxed);
    s.push_str(&format!(
        ",\"jobs\":{{\"completed\":{},\"timed_out\":{},\"failed\":{},\"net_errors\":{}}}",
        completed,
        stats.timed_out.load(Ordering::Relaxed),
        stats.failed.load(Ordering::Relaxed),
        stats.net_errors.load(Ordering::Relaxed),
    ));
    s.push_str(&format!(
        ",\"req_per_sec\":{:.1}",
        completed as f64 / elapsed.as_secs_f64().max(1e-9)
    ));
    let checks = stats.warm_checks.load(Ordering::Relaxed);
    let hits = stats.warm_hits.load(Ordering::Relaxed);
    s.push_str(&format!(",\"warm\":{{\"checks\":{checks},\"hits\":{hits}}}"));
    s.push_str(&format!(
        ",\"fuzz\":{{\"injections\":{},\"coverage_classes\":{}}}",
        stats.fuzz_injections.load(Ordering::Relaxed),
        coverage.len()
    ));
    s.push_str(&format!(",\"rss\":{{\"peak_mib\":{peak_rss},\"cap_mib\":{}}}", config.rss_cap_mib));
    s.push_str(&format!(",\"panics\":{}", stats.panics.load(Ordering::Relaxed)));
    s.push_str(&format!(",\"violations\":{}", violations.len()));
    s.push('}');
    s
}

static PANICS: AtomicU64 = AtomicU64::new(0);
static HOOK: OnceLock<()> = OnceLock::new();

/// Counts every unwind process-wide (including ones later caught by a
/// `catch_unwind`), chaining to the default hook so backtraces still
/// print.
fn install_panic_counter() {
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            PANICS.fetch_add(1, Ordering::Relaxed);
            previous(info);
        }));
    });
}

fn panic_count() -> u64 {
    PANICS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mix_is_seeded_and_weighted() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..1000).map(|_| Lane::pick(&mut rng, true)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5), "same seed, same schedule");
        let counts = |lanes: &[Lane]| {
            let mut c = [0usize; 6];
            for &l in lanes {
                c[l as usize] += 1;
            }
            c
        };
        let c = counts(&draw(5));
        assert!(c[Lane::Warm as usize] > c[Lane::Disconnect as usize], "weights respected: {c:?}");
        // Fuzz off redistributes, never draws the fuzz lane.
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0..1000).all(|_| Lane::pick(&mut rng, false) != Lane::Fuzz));
    }

    #[test]
    fn cluster_specs_label_stably() {
        assert_eq!(ClusterSpec::Direct.label(), "direct");
        assert_eq!(ClusterSpec::Gateway(3).label(), "gateway-3");
        assert_eq!(ClusterSpec::Attach("h:1".into()).label(), "attach:h:1");
    }

    #[test]
    fn summary_json_shape() {
        let config = SoakConfig::smoke(ClusterSpec::Direct, 1);
        let stats = SoakStats::default();
        stats.completed.store(10, Ordering::Relaxed);
        let mut cov = BTreeSet::new();
        cov.insert("BitFlip/closed".to_string());
        let json = render_summary(&config, &stats, &cov, Duration::from_secs(2), 0.5, 512, &[]);
        assert!(json.starts_with("{\"schema\":\"tpi-soak/v1\""), "{json}");
        assert!(json.contains("\"mode\":\"direct\""));
        assert!(json.contains("\"req_per_sec\":5.0"));
        assert!(json.contains("\"coverage_classes\":1"));
        assert!(json.contains("\"violations\":0"));
        assert!(json.ends_with('}'));
    }

    /// End-to-end micro-soak: 1 second against a direct in-process
    /// cluster, fuzz on — the real lanes, tiny dose.
    #[test]
    fn one_second_direct_soak_passes() {
        let mut config = SoakConfig::smoke(ClusterSpec::Direct, 1);
        config.gates = 2_000;
        config.workers = 2;
        let summary = run(&config);
        assert!(summary.passed(), "violations: {:?}", summary.violations);
        assert!(summary.json.contains("\"panics\":0"));
    }
}
