//! Coverage-tracked wire-protocol fuzzing.
//!
//! The fuzz lane takes *valid* `tpi-net/v1`/`v2` frames (the corpus) and
//! applies one seeded mutation per injection — truncation, bit flips,
//! splices of two frames, and deliberate lies in the length and
//! request-ID header fields. The mutant goes to the server over a raw
//! TCP connection, and whatever comes back is classified into an
//! outcome class. Coverage is the set of distinct
//! `(mutation, outcome)` pairs: a soak that only ever sees
//! `BitFlip/closed` is not exercising the decode paths, and the summary
//! makes that visible.
//!
//! The server contract under fire: every mutant is answered with a
//! typed error frame, a `Busy`, a valid response (some mutants are
//! still well-formed), or a clean close — never a hang past the read
//! deadline *with* a dead server, and never a panic. Liveness is
//! asserted out-of-band by the lane (a fresh-connection ping after the
//! injection).

use rand::{Rng, StdRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use tpi_net::{read_frame, read_frame_v2, ErrorInfo, Verb, DEFAULT_MAX_FRAME};

/// One grammar production of the mutator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mutation {
    /// Cut the frame off at a random byte (header or payload).
    Truncate,
    /// Flip one to four random bits anywhere in the frame.
    BitFlip,
    /// Prefix of one valid frame glued to the suffix of another.
    Splice,
    /// Rewrite the v2 length field: huge (oversize), short, or long.
    LengthLie,
    /// Rewrite the v2 request-ID field (a well-formed but lying frame).
    IdLie,
}

impl Mutation {
    /// All productions, in mix order.
    pub const ALL: [Mutation; 5] = [
        Mutation::Truncate,
        Mutation::BitFlip,
        Mutation::Splice,
        Mutation::LengthLie,
        Mutation::IdLie,
    ];
}

/// v2 header offsets (magic 0..4, version 4, verb 5, req-id 6..10,
/// length 10..14).
const V2_ID_OFFSET: usize = 6;
const V2_LEN_OFFSET: usize = 10;

/// Applies one seeded mutation, picking the production from `rng`.
/// `base` and `other` must be valid encoded frames (`other` feeds the
/// splice). Returns the production and the mutant bytes.
pub fn mutate(rng: &mut StdRng, base: &[u8], other: &[u8]) -> (Mutation, Vec<u8>) {
    let m = Mutation::ALL[rng.gen_range(0..Mutation::ALL.len())];
    let mut bytes = base.to_vec();
    match m {
        Mutation::Truncate => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        Mutation::BitFlip => {
            for _ in 0..rng.gen_range(1..=4u32) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        Mutation::Splice => {
            let cut_a = rng.gen_range(0..=bytes.len());
            let cut_b = rng.gen_range(0..=other.len());
            bytes.truncate(cut_a);
            bytes.extend_from_slice(&other[cut_b..]);
        }
        Mutation::LengthLie => {
            if bytes.len() >= V2_LEN_OFFSET + 4 {
                let lie: u32 = match rng.gen_range(0..3u32) {
                    0 => rng.gen_range((64u32 << 20)..u32::MAX), // oversize
                    1 => rng.gen_range(0..16u32),                // too short
                    _ => rng.gen_range(16u32..65536),            // too long
                };
                bytes[V2_LEN_OFFSET..V2_LEN_OFFSET + 4].copy_from_slice(&lie.to_le_bytes());
            }
        }
        Mutation::IdLie => {
            if bytes.len() >= V2_ID_OFFSET + 4 {
                let lie: u32 = rng.gen();
                bytes[V2_ID_OFFSET..V2_ID_OFFSET + 4].copy_from_slice(&lie.to_le_bytes());
            }
        }
    }
    (m, bytes)
}

/// What the server did with a mutant, as a stable coverage label.
pub fn classify_response(buf: &[u8], closed: bool) -> String {
    if buf.is_empty() {
        return if closed { "closed".to_string() } else { "silent".to_string() };
    }
    // The server answers on the protocol the *connection* sniffed from
    // our first bytes, so try v2 then v1.
    let parsed = read_frame_v2(&mut &buf[..], DEFAULT_MAX_FRAME)
        .map(|(verb, _, payload)| (verb, payload))
        .or_else(|_| read_frame(&mut &buf[..], DEFAULT_MAX_FRAME));
    match parsed {
        Ok((Verb::Error, payload)) => match ErrorInfo::decode(&payload) {
            Ok(info) => format!("error:{:?}", info.code),
            Err(_) => "error:undecodable".to_string(),
        },
        Ok((verb, _)) => format!("resp:{verb:?}"),
        Err(_) => "garbage".to_string(),
    }
}

/// Sends `mutant` to `addr` on a fresh connection and classifies the
/// reply. Returns the outcome label, or the connection-level failure as
/// its own class (a server at its accept cap refusing us is coverage
/// too, not an error).
pub fn inject(addr: &str, mutant: &[u8], read_timeout: Duration) -> String {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return "connect-refused".to_string(),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(read_timeout));
    if stream.write_all(mutant).is_err() {
        // The server can legitimately slam the door mid-write (it saw
        // enough bytes to reject the stream).
        return "write-reset".to_string();
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut closed = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    classify_response(&buf, closed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tpi_net::{encode_frame_v2, ErrorCode};

    fn corpus() -> (Vec<u8>, Vec<u8>) {
        (encode_frame_v2(Verb::Ping, 7, b""), encode_frame_v2(Verb::Submit, 9, b"not blif"))
    }

    #[test]
    fn mutator_is_seed_deterministic() {
        let (base, other) = corpus();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| mutate(&mut rng, &base, &other)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore differently");
    }

    #[test]
    fn mutator_hits_every_production() {
        let (base, other) = corpus();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            seen.insert(mutate(&mut rng, &base, &other).0);
        }
        assert_eq!(seen.len(), Mutation::ALL.len(), "all productions drawn: {seen:?}");
    }

    #[test]
    fn truncation_never_grows_and_splice_mixes() {
        let (base, other) = corpus();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..256 {
            let (m, bytes) = mutate(&mut rng, &base, &other);
            match m {
                Mutation::Truncate => assert!(bytes.len() < base.len()),
                Mutation::Splice => assert!(bytes.len() <= base.len() + other.len()),
                Mutation::BitFlip | Mutation::LengthLie | Mutation::IdLie => {
                    assert_eq!(bytes.len(), base.len())
                }
            }
        }
    }

    #[test]
    fn classification_labels_are_stable() {
        assert_eq!(classify_response(b"", true), "closed");
        assert_eq!(classify_response(b"", false), "silent");
        assert_eq!(classify_response(b"\x00\x01garbage", true), "garbage");
        let err = ErrorInfo::new(ErrorCode::MalformedFrame, "bad magic");
        let frame = encode_frame_v2(Verb::Error, 3, &err.encode());
        assert_eq!(classify_response(&frame, true), "error:MalformedFrame");
        let pong = encode_frame_v2(Verb::Pong, 3, b"");
        assert_eq!(classify_response(&pong, false), "resp:Pong");
    }
}
