//! `tpi-dfa`: netlist dataflow analyses over the shared [`NetView`]
//! structure-of-arrays snapshot.
//!
//! Three production analyses on one tiny framework:
//!
//! - [`Scoap`] — CC0/CC1/CO testability (forward + backward monotone
//!   fixpoints, saturating arithmetic).
//! - [`DomTree`] — structural observation dominators (single-point
//!   observation bottlenecks, coverage proofs).
//! - [`XReach`] — word-parallel X-propagation reach from uninitialized
//!   flip-flops.
//!
//! The framework contract, shared by all three: every analysis is a
//! pure function of the snapshot, sweeps run in the view's
//! deterministic topo order (forward or reversed), transfer functions
//! are monotone on their lattice (saturating `u32` min-cost for SCOAP,
//! the dominator semilattice under [`DomTree`]'s intersection, bitwise
//! OR for X planes), and sequential loops are closed by
//! [`fixpoint`]-style iterate-to-convergence with an asserted pass
//! bound. Nothing here depends on thread count, hash order, or
//! allocation addresses, so results are byte-identical across
//! `--threads 1/2/0` by construction — the same determinism contract
//! the rest of the workspace gates in CI.
//!
//! Consumers: `tpi-lint` surfaces the results as TPI200-series
//! diagnostics and the `--analysis` table; `tpi-core` ranks TPGREED
//! candidates with `GainModel::Scoap` weights and reports an analysis
//! section in `FlowMetrics`.

// The whole crate builds clean under `clippy::pedantic` modulo the
// narrow allowlist below, and the workspace `-D warnings` CI step
// enforces it. Index↔`u32` casts are the crate's bread and butter
// (`NetView` stores gate indices as `u32`, analyses use `usize`), and
// `#[must_use]` on pure accessors is noise — everything else pedantic
// flags is a hard error here.
#![warn(clippy::pedantic)]
#![allow(clippy::cast_possible_truncation, clippy::must_use_candidate)]
// Test fixtures name gates a..e after the paper's figures.
#![cfg_attr(test, allow(clippy::many_single_char_names))]

mod dominators;
mod scoap;
mod xprop;

pub use dominators::{DomTree, UNREACHABLE};
pub use scoap::{Scoap, SAT};
pub use xprop::XReach;

use tpi_sim::NetView;

/// Runs `pass` — one monotone sweep returning whether anything changed
/// — until the fixpoint, asserting it lands within `bound` sweeps.
/// Returns the number of sweeps run (including the final no-change
/// confirmation).
///
/// # Panics
/// Panics if the fixpoint takes more than `bound` sweeps, which for a
/// monotone transfer function on a finite lattice indicates a bug.
pub fn fixpoint(name: &str, bound: u32, mut pass: impl FnMut() -> bool) -> u32 {
    let mut sweeps = 0u32;
    loop {
        sweeps += 1;
        assert!(sweeps <= bound, "{name}: fixpoint exceeded {bound} sweeps");
        if !pass() {
            return sweeps;
        }
    }
}

/// All three analyses over one snapshot, plus the deterministic summary
/// the flow reports in `FlowMetrics`.
#[derive(Debug, Clone)]
pub struct NetlistAnalysis {
    /// SCOAP testability vectors.
    pub scoap: Scoap,
    /// Observation dominator tree.
    pub dominators: DomTree,
    /// X reach from uninitialized flip-flops.
    pub xreach: XReach,
}

impl NetlistAnalysis {
    /// Runs SCOAP, dominators and X-prop over `view`.
    pub fn run(view: &NetView) -> NetlistAnalysis {
        NetlistAnalysis {
            scoap: Scoap::analyze(view),
            dominators: DomTree::observation(view),
            xreach: XReach::analyze(view),
        }
    }

    /// Deterministic scalar summary, ordered by key. Saturated ([`SAT`])
    /// measures are excluded from the maxima and counted separately.
    pub fn metrics(&self) -> Vec<(&'static str, u64)> {
        let n = self.scoap.co.len();
        let finite_max =
            |v: &[u32]| u64::from(v.iter().copied().filter(|&x| x != SAT).max().unwrap_or(0));
        let sizes = self.dominators.dominated_sizes();
        let mut bottlenecks = 0u64;
        let mut max_cone = 0u64;
        for (v, &size) in sizes.iter().enumerate().take(n) {
            if self.dominators.has_bottleneck(v) {
                bottlenecks += 1;
            }
            if self.dominators.idom(v).is_some() && u64::from(size) > max_cone {
                max_cone = u64::from(size);
            }
        }
        vec![
            ("dom_bottleneck_nets", bottlenecks),
            ("dom_max_cone", max_cone),
            ("scoap_cc_max", finite_max(&self.scoap.cc0).max(finite_max(&self.scoap.cc1))),
            ("scoap_co_max", finite_max(&self.scoap.co)),
            ("scoap_unobservable_nets", self.scoap.co.iter().filter(|&&c| c == SAT).count() as u64),
            ("xreach_nets", self.xreach.reachable_nets() as u64),
            ("xreach_sources", self.xreach.ff_count as u64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpi_netlist::{GateKind, Netlist};

    #[test]
    fn fixpoint_counts_sweeps() {
        let mut left = 3;
        let sweeps = fixpoint("t", 10, || {
            left -= 1;
            left > 0
        });
        assert_eq!(sweeps, 3);
    }

    #[test]
    #[should_panic(expected = "fixpoint exceeded")]
    fn fixpoint_asserts_the_bound() {
        fixpoint("t", 2, || true);
    }

    #[test]
    fn metrics_are_ordered_and_complete() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let ff = n.add_gate(GateKind::Dff, "ff");
        n.connect(a, ff).unwrap();
        let g = n.add_gate(GateKind::And, "g");
        n.connect(a, g).unwrap();
        n.connect(ff, g).unwrap();
        n.add_output("y", g).unwrap();
        let m = NetlistAnalysis::run(&NetView::new(&n)).metrics();
        let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "metric keys must be pre-sorted");
        let get = |k: &str| m.iter().find(|(mk, _)| *mk == k).unwrap().1;
        assert_eq!(get("xreach_sources"), 1);
        assert!(get("xreach_nets") >= 2); // ff, g, y
        assert_eq!(get("scoap_unobservable_nets"), 0);
    }
}
